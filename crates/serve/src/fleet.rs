//! The fleet coordinator: sharded candidate search that survives dead,
//! slow, and lying shards.
//!
//! A server started with [`FleetConfig`] partitions each eligible
//! `Tune` request's candidate list into contiguous sub-ranges and
//! farms them out to N backend `fm-serve` instances as `TuneShard`
//! requests, then merges the shard winners by `(score, index)`. The
//! contract is exact: **the merged winner is bit-identical to a
//! single-machine [`Tuner::tune`]** over the same list, no matter
//! which shards die, stall, or corrupt frames along the way.
//!
//! Why that holds:
//!
//! * the single-machine winner is the *first* strict minimum of the
//!   score sequence (the tuner's frontier keeps the earliest index on
//!   ties), which equals `min by (score, index)` over all candidates;
//! * a shard reply is merged **only** when it is verified complete —
//!   epoch echo, FNV-1a checksum over the canonical body, and
//!   `evaluated == count` ([`TuneShardReply::verify`]); a reply that
//!   fails any check is discarded and the sub-range is retried,
//!   reassigned, or evaluated locally, so every candidate is always
//!   scored by exactly the same pure function on *some* machine;
//! * merging range winners in ascending range order with a strict `<`
//!   reproduces the first-minimum tie-break of a flat scan;
//! * annealing refinement depends only on the winner and the
//!   configured seeds, so the coordinator applying it to the merged
//!   winner ([`Tuner::refine_winner`]) is bit-equal to a local tune
//!   applying it to the same winner.
//!
//! Robustness plumbing, per sub-range: bounded retries with
//! exponential backoff and deterministic jitter, hedged duplicate
//! requests past a straggler threshold, a per-shard circuit breaker
//! (closed → open on consecutive failures → half-open probe after a
//! cooldown), re-assignment of a failed shard's range to survivors,
//! and — when every shard path is down — local evaluation on the
//! coordinator's own pool. Degradation changes latency, never the
//! answer.
//!
//! The fleet path does not consult the tuning cache (requests with
//! `use_cache` stay local, where the cache lives), and requests with a
//! `convergence_window` stay local too: early-stopping is inherently
//! sequential, so sharding it would change which candidates get
//! evaluated.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use fm_autotune::{Budget, CancelToken, TunedMapping, Tuner};
use fm_core::cost::Evaluator;
use fm_core::search::MappingCandidate;
use fm_workspan::ThreadPool;

use crate::fault::mix64;
use crate::metrics::{breaker_state, FleetMetrics};
use crate::protocol::{
    decode_response, encode_request, Request, Response, ShardReplyFlaw, TuneReply, TuneRequest,
    TuneShardBody, TuneShardRequest, DEFAULT_MAX_FRAME,
};

/// Fleet-coordinator tunables. Defaults are production-ish; tests
/// tighten every timeout.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backend shard addresses (`host:port`), in preference order.
    pub shards: Vec<String>,
    /// TCP connect timeout per attempt (a black-holed shard must fail
    /// fast, not hang the range).
    pub connect_timeout: Duration,
    /// End-to-end cap on one attempt (connect + write + reply).
    pub attempt_timeout: Duration,
    /// Waves of attempts per sub-range before giving up on the network
    /// and evaluating the range locally.
    pub attempts: u32,
    /// First-retry backoff; doubles each wave.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Launch a hedged duplicate to another shard when the primary has
    /// not answered within this long (`None` disables hedging).
    pub hedge_after: Option<Duration>,
    /// Consecutive failures that trip a shard's breaker open.
    pub breaker_threshold: u32,
    /// How long an open breaker quarantines its shard before the
    /// half-open probe.
    pub breaker_cooldown: Duration,
    /// Minimum candidates per sub-range: below `2 ×` this a request is
    /// not worth sharding at all, and the partitioner never cuts a
    /// range smaller than this.
    pub min_shard_candidates: usize,
    /// Seed for deterministic backoff jitter (and nothing else — the
    /// *answer* never depends on it).
    pub jitter_seed: u64,
}

impl FleetConfig {
    /// Default tunables in front of `shards`.
    pub fn new(shards: Vec<String>) -> FleetConfig {
        FleetConfig {
            shards,
            connect_timeout: Duration::from_millis(250),
            attempt_timeout: Duration::from_secs(10),
            attempts: 3,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(500),
            hedge_after: Some(Duration::from_millis(500)),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(2),
            min_shard_candidates: 2,
            jitter_seed: 0x5EED,
        }
    }
}

/// Circuit-breaker state for one shard.
#[derive(Debug, Clone, Copy)]
enum Breaker {
    /// Requests flow; counts consecutive failures.
    Closed { consecutive_failures: u32 },
    /// Quarantined until the cooldown instant.
    Open { until: Instant },
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

struct ShardState {
    breaker: Mutex<Breaker>,
}

/// The coordinator. One per server, shared across worker threads.
pub struct Fleet {
    config: FleetConfig,
    /// Monotone per-tune epoch; stamped into every `TuneShard` request
    /// and echoed (under checksum) by the reply, so a frame answering
    /// an earlier tune can never merge into a later one.
    epoch: AtomicU64,
    shards: Vec<ShardState>,
    metrics: Arc<FleetMetrics>,
}

/// What one sub-range dispatch produced.
struct RangeOutcome {
    /// Candidates scored for this range (by a shard or locally).
    evaluated: u64,
    /// The range's winner as `(absolute index, mapping)`; `None` when
    /// nothing in the range was legal (or the range was cancelled).
    win: Option<(u64, TunedMapping)>,
    /// Whether cancellation cut this range short.
    cancelled: bool,
    /// Whether a shard other than the range's first choice answered.
    reassigned: bool,
    /// Whether the range fell back to local evaluation.
    local: bool,
}

/// How an attempt's watched read ended.
enum WatchRead {
    /// A whole frame arrived.
    Frame(Vec<u8>),
    /// The range resolved elsewhere or the tune was cancelled — exit
    /// without blaming the shard.
    Abandoned,
    /// The attempt deadline passed (the shard is slow: blame it).
    TimedOut,
    /// Transport failure or EOF mid-frame.
    Failed,
}

impl Fleet {
    /// Build a coordinator over `config.shards`.
    pub fn new(config: FleetConfig) -> Arc<Fleet> {
        let metrics = Arc::new(FleetMetrics::new(&config.shards));
        let shards = config
            .shards
            .iter()
            .map(|_| ShardState {
                breaker: Mutex::new(Breaker::Closed {
                    consecutive_failures: 0,
                }),
            })
            .collect();
        Arc::new(Fleet {
            config,
            epoch: AtomicU64::new(1),
            shards,
            metrics,
        })
    }

    /// The coordinator's metrics registry (for the `Stats` endpoint).
    pub fn metrics(&self) -> Arc<FleetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Should this request take the fleet path? Cache users and
    /// convergence-window users stay local (see the module docs); tiny
    /// candidate lists are not worth the network round-trip.
    pub fn eligible(&self, req: &TuneRequest) -> bool {
        !self.shards.is_empty()
            && req.convergence_window.is_none()
            && !req.use_cache
            && req.candidates.len() >= self.config.min_shard_candidates.max(1) * 2
    }

    /// May an attempt go to shard `idx` right now? Closed passes;
    /// open passes only once its cooldown elapsed (becoming the
    /// half-open probe); half-open refuses (a probe is already out).
    fn try_acquire(&self, idx: usize) -> bool {
        let mut b = self.shards[idx].breaker.lock();
        match *b {
            Breaker::Closed { .. } => true,
            Breaker::HalfOpen => false,
            Breaker::Open { until } => {
                if Instant::now() >= until {
                    *b = Breaker::HalfOpen;
                    self.metrics.shards[idx]
                        .state
                        .store(breaker_state::HALF_OPEN, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn report_success(&self, idx: usize) {
        self.metrics.shards[idx]
            .successes
            .fetch_add(1, Ordering::Relaxed);
        let mut b = self.shards[idx].breaker.lock();
        *b = Breaker::Closed {
            consecutive_failures: 0,
        };
        self.metrics.shards[idx]
            .state
            .store(breaker_state::CLOSED, Ordering::Relaxed);
    }

    fn report_failure(&self, idx: usize) {
        self.metrics.shards[idx]
            .failures
            .fetch_add(1, Ordering::Relaxed);
        let mut b = self.shards[idx].breaker.lock();
        let trip = match *b {
            Breaker::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.config.breaker_threshold.max(1) {
                    true
                } else {
                    *b = Breaker::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            Breaker::HalfOpen => true, // failed probe: straight back open
            Breaker::Open { .. } => false,
        };
        if trip {
            *b = Breaker::Open {
                until: Instant::now() + self.config.breaker_cooldown,
            };
            self.metrics.shards[idx]
                .state
                .store(breaker_state::OPEN, Ordering::Relaxed);
            self.metrics.shards[idx]
                .breaker_opens
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Next breaker-available shard scanning from `*rotation`,
    /// skipping `exclude`; advances the rotation past the pick.
    fn next_available(&self, rotation: &mut usize, exclude: Option<usize>) -> Option<usize> {
        let n = self.shards.len();
        for step in 0..n {
            let idx = (*rotation + step) % n;
            if exclude == Some(idx) {
                continue;
            }
            if self.try_acquire(idx) {
                *rotation = idx + 1;
                return Some(idx);
            }
        }
        None
    }

    /// Run one `Tune` request through the fleet. Exact same reply
    /// contract as the local path, minus cache participation.
    pub fn tune(
        self: &Arc<Fleet>,
        req: &TuneRequest,
        cancel: &CancelToken,
        deadline: Option<Instant>,
        pool: &ThreadPool,
    ) -> TuneReply {
        let start = Instant::now();
        self.metrics.fleet_tunes.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);

        let offered = req.candidates.len();
        let cap = req
            .max_candidates
            .map_or(offered, |n| (n as usize).min(offered));
        let evaluator = Evaluator::new(&req.graph, &req.machine);
        let local_candidates: Vec<MappingCandidate> = req.candidates[..cap]
            .iter()
            .map(|c| MappingCandidate::new(c.label.clone(), c.mapping.clone()))
            .collect();

        let ranges = partition(cap, self.shards.len(), self.config.min_shard_candidates);
        let outcomes: Vec<RangeOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .enumerate()
                .map(|(ri, &(lo, hi))| {
                    let fleet = Arc::clone(self);
                    let req = &*req;
                    let locals = &local_candidates[lo..hi];
                    let evaluator = &evaluator;
                    s.spawn(move || {
                        run_range(
                            &fleet, req, evaluator, locals, lo, hi, ri, epoch, deadline, cancel,
                            pool,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(RangeOutcome {
                        evaluated: 0,
                        win: None,
                        cancelled: true,
                        reassigned: false,
                        local: false,
                    })
                })
                .collect()
        });

        // Merge in ascending range order with a strict `<`: identical
        // tie-breaking to the tuner frontier's flat scan.
        let mut best: Option<(u64, TunedMapping)> = None;
        let mut evaluated = 0u64;
        let mut cancelled = cancel.is_cancelled();
        let mut all_local = !outcomes.is_empty();
        for o in outcomes {
            evaluated += o.evaluated;
            cancelled |= o.cancelled;
            all_local &= o.local;
            if o.reassigned {
                self.metrics.reassignments.fetch_add(1, Ordering::Relaxed);
            }
            if let Some((idx, win)) = o.win {
                let better = match &best {
                    Some((_, b)) => win.score < b.score,
                    None => true,
                };
                if better {
                    best = Some((idx, win));
                }
            }
        }
        if all_local {
            self.metrics.degraded_tunes.fetch_add(1, Ordering::Relaxed);
        }

        // Nothing legal anywhere: the same default-mapper fallback a
        // single-machine tune produces.
        let mut fell_back = false;
        let mut best_mapping = match best {
            Some((_, b)) => Some(b),
            None => {
                let report = Tuner::new(&evaluator, &req.graph, &req.machine, req.fom).tune(&[]);
                fell_back = report.fell_back;
                report.best
            }
        };

        // Refinement runs on the coordinator, exactly as the local path
        // applies it to its own winner (and never on cancelled runs).
        if let Some(b) = best_mapping.as_mut() {
            if !cancelled {
                if let Some(r) = req.refinement {
                    Tuner::new(&evaluator, &req.graph, &req.machine, req.fom)
                        .with_pool(pool)
                        .with_refinement(r)
                        .refine_winner(b);
                }
            }
        }

        TuneReply {
            best: best_mapping,
            offered: offered as u64,
            evaluated,
            pruned: (offered as u64).saturating_sub(evaluated),
            cache: "disabled".to_string(),
            fell_back,
            cancelled,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// Split `[0, cap)` into at most `nshards` contiguous ranges of at
/// least `min_per` candidates each (the last takes the remainder).
fn partition(cap: usize, nshards: usize, min_per: usize) -> Vec<(usize, usize)> {
    if cap == 0 || nshards == 0 {
        return Vec::new();
    }
    let nranges = (cap / min_per.max(1)).clamp(1, nshards);
    let base = cap / nranges;
    let extra = cap % nranges;
    let mut ranges = Vec::with_capacity(nranges);
    let mut lo = 0;
    for i in 0..nranges {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// Deterministic backoff for wave `wave` of range `range`: exponential
/// in the wave, plus splitmix64 jitter in `[0, half the backoff)`.
fn backoff_with_jitter(config: &FleetConfig, epoch: u64, range: usize, wave: u32) -> Duration {
    let exp = config
        .backoff_base
        .saturating_mul(1u32 << wave.min(16))
        .min(config.backoff_max);
    let half = exp.as_nanos().max(2) as u64 / 2;
    let jitter =
        mix64(config.jitter_seed ^ epoch.rotate_left(17) ^ (range as u64) << 8 ^ wave as u64)
            % half;
    exp / 2 + Duration::from_nanos(half / 2 + jitter / 2) // in [exp/2, exp]
}

/// Drive one sub-range to a verified result: waves of shard attempts
/// (with hedging inside a wave and backoff between waves), then local
/// evaluation when the network is out of options.
#[allow(clippy::too_many_arguments)]
fn run_range(
    fleet: &Arc<Fleet>,
    req: &TuneRequest,
    evaluator: &Evaluator,
    locals: &[MappingCandidate],
    lo: usize,
    hi: usize,
    range_idx: usize,
    epoch: u64,
    deadline: Option<Instant>,
    cancel: &CancelToken,
    pool: &ThreadPool,
) -> RangeOutcome {
    let nshards = fleet.shards.len();
    let preferred = range_idx % nshards.max(1);
    let payload = Arc::new(encode_request(&Request::TuneShard(TuneShardRequest {
        graph: req.graph.clone(),
        machine: req.machine.clone(),
        fom: req.fom,
        candidates: req.candidates[lo..hi].to_vec(),
        start_index: lo as u64,
        epoch,
        deadline_ms: deadline
            .map(|d| (d.saturating_duration_since(Instant::now()).as_millis() as u64).max(1)),
    })));
    let done = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<(usize, bool, Result<TuneShardBody, ()>)>();

    let spawn_attempt = |shard: usize, hedge: bool| {
        let fleet = Arc::clone(fleet);
        let payload = Arc::clone(&payload);
        let done = Arc::clone(&done);
        let cancel = cancel.clone();
        let tx = tx.clone();
        std::thread::Builder::new()
            .name("fm-fleet-attempt".to_string())
            .spawn(move || {
                let result = run_attempt(&fleet, shard, &payload, epoch, deadline, &cancel, &done);
                let _ = tx.send((shard, hedge, result));
            })
            .expect("spawn fleet attempt thread");
    };

    let mut rotation = preferred;
    let mut wave = 0u32;
    'waves: while wave < fleet.config.attempts.max(1) {
        if cancel.is_cancelled() {
            break;
        }
        let Some(primary) = fleet.next_available(&mut rotation, None) else {
            break; // every breaker is open: the network has no path
        };
        if wave > 0 {
            fleet.metrics.retries.fetch_add(1, Ordering::Relaxed);
        }
        let wave_start = Instant::now();
        spawn_attempt(primary, false);
        let mut in_flight = 1u32;
        let mut hedged = false;
        while in_flight > 0 {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok((shard, was_hedge, Ok(body))) => {
                    done.store(true, Ordering::Release);
                    if was_hedge {
                        fleet.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return RangeOutcome {
                        evaluated: body.evaluated,
                        win: body.best.map(|b| {
                            (
                                b.index,
                                TunedMapping {
                                    label: b.label,
                                    resolved: b.resolved,
                                    report: b.report,
                                    score: b.score,
                                },
                            )
                        }),
                        cancelled: false,
                        reassigned: shard != preferred,
                        local: false,
                    };
                }
                Ok((_, _, Err(()))) => in_flight -= 1,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if cancel.is_cancelled() {
                        break 'waves;
                    }
                    let overdue = fleet
                        .config
                        .hedge_after
                        .is_some_and(|h| wave_start.elapsed() >= h);
                    if overdue && !hedged {
                        hedged = true; // one hedge per wave, tops
                        if let Some(buddy) = fleet.next_available(&mut rotation, Some(primary)) {
                            fleet.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                            spawn_attempt(buddy, true);
                            in_flight += 1;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break 'waves,
            }
        }
        // The whole wave failed: back off (cancellably), then retry.
        wave += 1;
        if wave < fleet.config.attempts {
            let mut left = backoff_with_jitter(&fleet.config, epoch, range_idx, wave - 1);
            while left > Duration::ZERO && !cancel.is_cancelled() {
                let step = left.min(Duration::from_millis(20));
                std::thread::sleep(step);
                left = left.saturating_sub(step);
            }
        }
    }
    done.store(true, Ordering::Release); // abandon any straggler attempt

    if cancel.is_cancelled() {
        return RangeOutcome {
            evaluated: 0,
            win: None,
            cancelled: true,
            reassigned: false,
            local: false,
        };
    }

    // Graceful degradation: score the range right here. Slower, never
    // wrong — the same pure evaluation the shard would have run.
    fleet
        .metrics
        .local_fallback_ranges
        .fetch_add(1, Ordering::Relaxed);
    let mut budget = Budget::unlimited();
    if let Some(d) = deadline {
        budget.deadline = Some(d.saturating_duration_since(Instant::now()));
    }
    let report = Tuner::new(evaluator, &req.graph, &req.machine, req.fom)
        .with_pool(pool)
        .with_budget(budget)
        .with_cancel(cancel.clone())
        .tune(locals);
    RangeOutcome {
        evaluated: report.evaluated as u64,
        win: report
            .best_index
            .zip(report.best)
            .map(|(i, b)| ((lo + i) as u64, b)),
        cancelled: report.cancelled,
        reassigned: false,
        local: true,
    }
}

/// One wire attempt against one shard: connect (bounded), send the
/// pre-encoded request, read the reply under the attempt deadline,
/// verify it. Reports breaker outcomes and discard metrics itself.
fn run_attempt(
    fleet: &Fleet,
    shard: usize,
    payload: &[u8],
    epoch: u64,
    deadline: Option<Instant>,
    cancel: &CancelToken,
    done: &AtomicBool,
) -> Result<TuneShardBody, ()> {
    let m = &fleet.metrics.shards[shard];
    m.sends.fetch_add(1, Ordering::Relaxed);
    let until = {
        let cap = Instant::now() + fleet.config.attempt_timeout;
        deadline.map_or(cap, |d| cap.min(d))
    };

    let addr: SocketAddr = match fleet.config.shards[shard]
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
    {
        Some(a) => a,
        None => {
            fleet.report_failure(shard);
            return Err(());
        }
    };
    let mut stream = match TcpStream::connect_timeout(&addr, fleet.config.connect_timeout) {
        Ok(s) => s,
        Err(_) => {
            fleet.report_failure(shard);
            return Err(());
        }
    };
    let _ = stream.set_nodelay(true);
    let frame_len = payload.len() as u32;
    if stream
        .write_all(&frame_len.to_be_bytes())
        .and_then(|()| stream.write_all(payload))
        .is_err()
    {
        fleet.report_failure(shard);
        return Err(());
    }

    match watch_read(&mut stream, until, cancel, done) {
        WatchRead::Frame(bytes) => match decode_response(&bytes) {
            Ok(Response::TuneSharded(reply)) => match reply.verify(epoch) {
                Ok(()) => {
                    fleet.report_success(shard);
                    Ok(reply.body)
                }
                Err(flaw) => {
                    let counter = match flaw {
                        ShardReplyFlaw::BadChecksum { .. } => &fleet.metrics.corrupt_discarded,
                        ShardReplyFlaw::StaleEpoch { .. } => &fleet.metrics.stale_discarded,
                        ShardReplyFlaw::Incomplete { .. } => &fleet.metrics.incomplete_discarded,
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    fleet.report_failure(shard);
                    Err(())
                }
            },
            // Busy, ShuttingDown, Failed, or protocol confusion: this
            // path is unusable right now.
            Ok(_) | Err(_) => {
                fleet.report_failure(shard);
                Err(())
            }
        },
        WatchRead::TimedOut | WatchRead::Failed => {
            fleet.report_failure(shard);
            Err(())
        }
        // Abandoned attempts blame nobody: the shard may be healthy,
        // the range just resolved without it. Dropping the socket is
        // what tells the shard to cancel its sub-search.
        WatchRead::Abandoned => Err(()),
    }
}

/// Read one reply frame in short timeout slices, watching the attempt
/// deadline, the tune-wide cancel token, and the range's `done` latch.
fn watch_read(
    stream: &mut TcpStream,
    until: Instant,
    cancel: &CancelToken,
    done: &AtomicBool,
) -> WatchRead {
    use std::io::Read as _;

    use crate::protocol::READ_CHUNK;

    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut header = [0u8; 4];
    let mut have = 0usize;
    // (buffer, bytes filled, total payload length); the buffer grows
    // by READ_CHUNK steps as bytes land, never to the full declared
    // length up front (same discipline as `protocol::read_frame`).
    let mut body: Option<(Vec<u8>, usize, usize)> = None;
    loop {
        if done.load(Ordering::Acquire) || cancel.is_cancelled() {
            return WatchRead::Abandoned;
        }
        if Instant::now() >= until {
            return WatchRead::TimedOut;
        }
        let read = match &mut body {
            None => stream.read(&mut header[have..]),
            Some((buf, filled, len)) => {
                if *filled == buf.len() {
                    let grow = (*len).min(*filled + READ_CHUNK);
                    buf.resize(grow, 0);
                }
                stream.read(&mut buf[*filled..])
            }
        };
        match read {
            Ok(0) => return WatchRead::Failed,
            Ok(n) => match &mut body {
                None => {
                    have += n;
                    if have == 4 {
                        let len = u32::from_be_bytes(header) as usize;
                        if len > DEFAULT_MAX_FRAME {
                            return WatchRead::Failed;
                        }
                        if len == 0 {
                            return WatchRead::Frame(Vec::new());
                        }
                        body = Some((vec![0u8; len.min(READ_CHUNK)], 0, len));
                    }
                }
                Some((buf, filled, len)) => {
                    *filled += n;
                    if *filled == *len {
                        return WatchRead::Frame(std::mem::take(buf));
                    }
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return WatchRead::Failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_and_respects_minimum() {
        for cap in 0..40 {
            for nshards in 1..6 {
                let ranges = partition(cap, nshards, 3);
                // Coverage: contiguous, exact.
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, cap);
                assert!(ranges.len() <= nshards);
                // Minimum size (single-range lists may be smaller).
                if ranges.len() > 1 {
                    for &(lo, hi) in &ranges {
                        assert!(hi - lo >= 3, "range {lo}..{hi} under minimum");
                    }
                }
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let config = FleetConfig::new(vec!["127.0.0.1:1".to_string()]);
        for wave in 0..6 {
            let a = backoff_with_jitter(&config, 7, 2, wave);
            let b = backoff_with_jitter(&config, 7, 2, wave);
            assert_eq!(a, b, "jitter must be reproducible");
            assert!(a <= config.backoff_max);
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let mut config = FleetConfig::new(vec!["127.0.0.1:1".to_string()]);
        config.breaker_threshold = 2;
        config.breaker_cooldown = Duration::from_millis(30);
        let fleet = Fleet::new(config);
        assert!(fleet.try_acquire(0));
        fleet.report_failure(0);
        assert!(fleet.try_acquire(0), "one failure is under the threshold");
        fleet.report_failure(0);
        // Tripped: quarantined until the cooldown.
        assert!(!fleet.try_acquire(0));
        std::thread::sleep(Duration::from_millis(40));
        // Cooldown over: exactly one probe gets through.
        assert!(fleet.try_acquire(0));
        assert!(!fleet.try_acquire(0), "second probe refused in half-open");
        // Failed probe: straight back open.
        fleet.report_failure(0);
        assert!(!fleet.try_acquire(0));
        std::thread::sleep(Duration::from_millis(40));
        assert!(fleet.try_acquire(0));
        fleet.report_success(0);
        // Healed: closed again, acquires freely.
        assert!(fleet.try_acquire(0));
        assert!(fleet.try_acquire(0));
        let snap = fleet.metrics().snapshot();
        assert_eq!(snap.shards[0].breaker_opens, 2);
        assert_eq!(snap.shards[0].breaker, "closed");
    }
}
