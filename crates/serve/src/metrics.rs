//! The in-process metrics registry.
//!
//! Lock-free counters and log₂-bucketed latency histograms, cheap
//! enough to update on every request (a handful of relaxed atomic adds)
//! and snapshotted on demand by the `Stats` endpoint. Quantiles are
//! read from the histogram: bucket *b* covers latencies in
//! `[2^b, 2^(b+1))` nanoseconds, so a reported p99 is exact to within
//! 2× — the right fidelity for tail-latency dashboards, at zero
//! per-request allocation.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fm_core::cost::CostReport;
use fm_costmodel::{CostModelKind, RooflinePoint};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of log₂ latency buckets: covers 1 ns .. ~584 years.
const BUCKETS: usize = 64;

/// A lock-free latency histogram with log₂ buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (63 - ns.max(1).leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The latency at quantile `q` (0 < q ≤ 1), in nanoseconds: the
    /// upper edge of the bucket holding the rank-`⌈q·n⌉` sample,
    /// clamped to the observed maximum. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if b >= 63 { u64::MAX } else { (2u64 << b) - 1 };
                return upper.min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> LatencyStats {
        let count = self.count();
        let to_us = |ns: u64| ns as f64 / 1e3;
        LatencyStats {
            p50_us: to_us(self.quantile_ns(0.50)),
            p95_us: to_us(self.quantile_ns(0.95)),
            p99_us: to_us(self.quantile_ns(0.99)),
            mean_us: if count == 0 {
                0.0
            } else {
                to_us(self.sum_ns.load(Ordering::Relaxed)) / count as f64
            },
            max_us: to_us(self.max_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct Endpoint {
    /// Requests received (including ones later refused or failed).
    pub received: AtomicU64,
    /// Requests answered with the endpoint's success response.
    pub completed: AtomicU64,
    /// Requests answered with `Failed`.
    pub failed: AtomicU64,
    /// Admission-to-reply latency of completed requests.
    pub latency: Histogram,
}

impl Endpoint {
    fn snapshot(&self) -> EndpointStats {
        EndpointStats {
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// The registry: one [`Endpoint`] per request type plus server-wide
/// gauges. Shared by reference across connection and worker threads.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// `Tune` endpoint counters.
    pub tune: Endpoint,
    /// `TuneShard` endpoint counters (sub-range work done for a fleet
    /// coordinator).
    pub tune_shard: Endpoint,
    /// `Evaluate` endpoint counters.
    pub evaluate: Endpoint,
    /// `Simulate` endpoint counters.
    pub simulate: Endpoint,
    /// `SessionOpen` endpoint counters.
    pub session_open: Endpoint,
    /// `SessionEdit` endpoint counters.
    pub session_edit: Endpoint,
    /// `SessionTune` endpoint counters.
    pub session_tune: Endpoint,
    /// `SessionClose` endpoint counters.
    pub session_close: Endpoint,
    /// Session-subsystem counters (live graph mutation + warm
    /// re-tuning).
    pub sessions: SessionCounters,
    /// `Stats` endpoint counters.
    pub stats: Endpoint,
    /// `Ping` endpoint counters.
    pub ping: Endpoint,
    /// Current admission-queue depth.
    pub queue_depth: AtomicUsize,
    /// High-water mark of the admission queue.
    pub queue_peak: AtomicUsize,
    /// Requests refused with `Busy`.
    pub busy_rejections: AtomicU64,
    /// Frames that failed to parse (connection then closed).
    pub protocol_errors: AtomicU64,
    /// Requests whose deadline expired before execution started.
    pub deadline_expired: AtomicU64,
    /// Requests cancelled mid-run (deadline or disconnect).
    pub cancelled: AtomicU64,
    /// Tuning-cache hits observed by `Tune`.
    pub cache_hits: AtomicU64,
    /// Tuning-cache misses observed by `Tune`.
    pub cache_misses: AtomicU64,
    /// Tuning-cache stale entries observed by `Tune`.
    pub cache_stale: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections that negotiated the binary pipelined protocol via
    /// `Hello`/`HelloAck` (the rest stayed on blocking JSON).
    pub binary_connections: AtomicU64,
    /// Request frames decoded from JSON text payloads.
    pub json_requests: AtomicU64,
    /// Request frames decoded from binary envelopes.
    pub binary_requests: AtomicU64,
    /// High-water mark of concurrently in-flight requests on any one
    /// pipelined connection (admitted or executing, not yet replied).
    pub inflight_peak: AtomicU64,
    /// Dedup batches executed: one queued `Tune` ran on behalf of
    /// itself plus at least one fingerprint-identical waiter.
    pub dedup_batches: AtomicU64,
    /// Queued `Tune` requests answered from another request's search
    /// (the waiters; the requests that never ran their own search).
    pub dedup_waiters_served: AtomicU64,
    /// Streamed `TuneShardPart` frames this server emitted while
    /// working sub-ranges for a fleet coordinator.
    pub tune_shard_parts: AtomicU64,
    /// Per-cost-backend observatory: where each backend's winners land
    /// on the machine roofline, and what they cost.
    pub cost_models: CostModelObservatory,
    /// Fleet-coordinator counters, present only when this server runs
    /// with `--fleet` (set once at startup).
    pub fleet: Mutex<Option<Arc<FleetMetrics>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            tune: Endpoint::default(),
            tune_shard: Endpoint::default(),
            evaluate: Endpoint::default(),
            simulate: Endpoint::default(),
            session_open: Endpoint::default(),
            session_edit: Endpoint::default(),
            session_tune: Endpoint::default(),
            session_close: Endpoint::default(),
            sessions: SessionCounters::default(),
            stats: Endpoint::default(),
            ping: Endpoint::default(),
            queue_depth: AtomicUsize::new(0),
            queue_peak: AtomicUsize::new(0),
            busy_rejections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_stale: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            binary_connections: AtomicU64::new(0),
            json_requests: AtomicU64::new(0),
            binary_requests: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            dedup_batches: AtomicU64::new(0),
            dedup_waiters_served: AtomicU64::new(0),
            tune_shard_parts: AtomicU64::new(0),
            cost_models: CostModelObservatory::default(),
            fleet: Mutex::new(None),
        }
    }
}

impl Metrics {
    /// The endpoint record for a request kind (by wire name).
    pub fn endpoint(&self, name: &str) -> &Endpoint {
        match name {
            "tune" => &self.tune,
            "tune_shard" => &self.tune_shard,
            "evaluate" => &self.evaluate,
            "simulate" => &self.simulate,
            "session_open" => &self.session_open,
            "session_edit" => &self.session_edit,
            "session_tune" => &self.session_tune,
            "session_close" => &self.session_close,
            "stats" => &self.stats,
            _ => &self.ping,
        }
    }

    /// Record a queue push, maintaining the depth gauge and peak.
    pub fn queue_pushed(&self, depth_after: usize) {
        self.queue_depth.store(depth_after, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth_after, Ordering::Relaxed);
    }

    /// Record a queue pop.
    pub fn queue_popped(&self, depth_after: usize) {
        self.queue_depth.store(depth_after, Ordering::Relaxed);
    }

    /// Snapshot everything into the `Stats` wire reply.
    pub fn snapshot(&self, queue_capacity: usize) -> StatsReply {
        StatsReply {
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            connections: self.connections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
            queue_peak: self.queue_peak.load(Ordering::Relaxed) as u64,
            queue_capacity: queue_capacity as u64,
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_stale: self.cache_stale.load(Ordering::Relaxed),
            binary_connections: self.binary_connections.load(Ordering::Relaxed),
            json_requests: self.json_requests.load(Ordering::Relaxed),
            binary_requests: self.binary_requests.load(Ordering::Relaxed),
            inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
            dedup_batches: self.dedup_batches.load(Ordering::Relaxed),
            dedup_waiters_served: self.dedup_waiters_served.load(Ordering::Relaxed),
            tune_shard_parts: self.tune_shard_parts.load(Ordering::Relaxed),
            tune: self.tune.snapshot(),
            tune_shard: self.tune_shard.snapshot(),
            evaluate: self.evaluate.snapshot(),
            simulate: self.simulate.snapshot(),
            session_open: self.session_open.snapshot(),
            session_edit: self.session_edit.snapshot(),
            session_tune: self.session_tune.snapshot(),
            session_close: self.session_close.snapshot(),
            sessions: self.sessions.snapshot(),
            stats: self.stats.snapshot(),
            ping: self.ping.snapshot(),
            cost_models: self.cost_models.snapshot(),
            fleet: self.fleet.lock().as_ref().map(|f| f.snapshot()),
        }
    }

    /// Install the fleet-coordinator registry (once, at server start).
    pub fn set_fleet(&self, fleet: Arc<FleetMetrics>) {
        *self.fleet.lock() = Some(fleet);
    }
}

/// Lock-free counters for the session subsystem (live graph mutation
/// plus warm incremental re-tuning; see `crate::session`).
#[derive(Debug, Default)]
pub struct SessionCounters {
    /// Sessions currently held (gauge: opened − closed − evicted).
    pub open: AtomicU64,
    /// Sessions opened over the server's lifetime.
    pub opened: AtomicU64,
    /// Sessions closed by their client.
    pub closed: AtomicU64,
    /// Sessions evicted by the idle-TTL sweeper.
    pub evicted: AtomicU64,
    /// Typed `NoSuchSession` replies sent (requests naming unknown or
    /// evicted sessions).
    pub no_such: AtomicU64,
    /// Individual edits applied across all sessions.
    pub edits_applied: AtomicU64,
    /// Edit batches applied (each bumps one session's epoch).
    pub edit_batches: AtomicU64,
    /// Total dirty-cone size across all applied edits — nodes the
    /// incremental repairer touched. The mean cone
    /// (`dirty_cone_total / edits_applied`) is the session subsystem's
    /// headline: how much smaller than O(V + E) an edit really is.
    pub dirty_cone_total: AtomicU64,
    /// Session tunes that ran fully warm (every candidate repaired,
    /// none rebuilt from scratch).
    pub warm_tunes: AtomicU64,
    /// Session tunes in which at least one candidate fell back to a
    /// cold rebuild.
    pub cold_tunes: AtomicU64,
    /// Individual candidate cold rebuilds across all session tunes.
    pub cold_rebuilds: AtomicU64,
}

impl SessionCounters {
    fn snapshot(&self) -> SessionStatsReply {
        let edits = self.edits_applied.load(Ordering::Relaxed);
        let cone = self.dirty_cone_total.load(Ordering::Relaxed);
        SessionStatsReply {
            open: self.open.load(Ordering::Relaxed),
            opened: self.opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            no_such: self.no_such.load(Ordering::Relaxed),
            edits_applied: edits,
            edit_batches: self.edit_batches.load(Ordering::Relaxed),
            warm_tunes: self.warm_tunes.load(Ordering::Relaxed),
            cold_tunes: self.cold_tunes.load(Ordering::Relaxed),
            cold_rebuilds: self.cold_rebuilds.load(Ordering::Relaxed),
            mean_dirty_cone: if edits == 0 {
                0.0
            } else {
                cone as f64 / edits as f64
            },
        }
    }
}

/// Wire snapshot of the session subsystem's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatsReply {
    /// Sessions currently held.
    pub open: u64,
    /// Sessions opened over the server's lifetime.
    pub opened: u64,
    /// Sessions closed by their client.
    pub closed: u64,
    /// Sessions evicted by the idle-TTL sweeper.
    pub evicted: u64,
    /// Typed `NoSuchSession` replies sent.
    pub no_such: u64,
    /// Individual edits applied.
    pub edits_applied: u64,
    /// Edit batches applied.
    pub edit_batches: u64,
    /// Tunes that ran fully warm.
    pub warm_tunes: u64,
    /// Tunes with at least one cold candidate rebuild.
    pub cold_tunes: u64,
    /// Individual candidate cold rebuilds.
    pub cold_rebuilds: u64,
    /// Mean dirty-cone size per applied edit (0.0 before any edit).
    pub mean_dirty_cone: f64,
}

/// Relaxed atomic add for an `f64` stored as bits. Contended adds
/// retry; no observation is lost, and the value is never torn.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Lock-free counters for one cost backend's winning mappings.
#[derive(Debug, Default)]
pub struct CostModelCounters {
    /// Tunes whose winner was charged under this backend.
    tunes: AtomicU64,
    /// Winners whose binding roof was the compute ceiling.
    compute_bound: AtomicU64,
    /// Winners bound by on-chip (NoC) bandwidth.
    onchip_bound: AtomicU64,
    /// Winners bound by off-chip (memory) bandwidth.
    offchip_bound: AtomicU64,
    /// Σ off-chip operational intensity (ops/bit), as f64 bits.
    intensity_offchip_sum: AtomicU64,
    /// Σ achieved throughput (ops/ps), as f64 bits.
    achieved_sum: AtomicU64,
    /// Σ winner energy (fJ), as f64 bits.
    energy_fj_sum: AtomicU64,
    /// Σ winner schedule time (ps), as f64 bits.
    time_ps_sum: AtomicU64,
}

impl CostModelCounters {
    fn snapshot(&self, model: CostModelKind) -> CostModelStatsReply {
        let tunes = self.tunes.load(Ordering::Relaxed);
        let mean = |bits: &AtomicU64| {
            if tunes == 0 {
                0.0
            } else {
                f64::from_bits(bits.load(Ordering::Relaxed)) / tunes as f64
            }
        };
        CostModelStatsReply {
            model: model.name().to_string(),
            tunes,
            compute_bound: self.compute_bound.load(Ordering::Relaxed),
            onchip_bound: self.onchip_bound.load(Ordering::Relaxed),
            offchip_bound: self.offchip_bound.load(Ordering::Relaxed),
            mean_intensity_offchip: mean(&self.intensity_offchip_sum),
            mean_achieved_ops_per_ps: mean(&self.achieved_sum),
            total_energy_fj: f64::from_bits(self.energy_fj_sum.load(Ordering::Relaxed)),
            total_time_ps: f64::from_bits(self.time_ps_sum.load(Ordering::Relaxed)),
        }
    }
}

/// The roofline observatory: one [`CostModelCounters`] per backend.
///
/// Every completed tune drops its winner's [`RooflinePoint`] and cost
/// report here, keyed by the backend that charged it, so `Stats` can
/// answer "what did each cost model steer searches toward?" — e.g. the
/// roofline backend's winners skewing compute-bound while analytic
/// winners sit against the off-chip roof.
#[derive(Debug, Default)]
pub struct CostModelObservatory {
    analytic: CostModelCounters,
    roofline: CostModelCounters,
    spatial: CostModelCounters,
}

impl CostModelObservatory {
    fn slot(&self, kind: CostModelKind) -> &CostModelCounters {
        match kind {
            CostModelKind::Analytic => &self.analytic,
            CostModelKind::Roofline => &self.roofline,
            CostModelKind::Spatial => &self.spatial,
        }
    }

    /// Record one tune's winning mapping under the backend that scored
    /// it.
    pub fn observe(&self, kind: CostModelKind, point: &RooflinePoint, report: &CostReport) {
        let c = self.slot(kind);
        c.tunes.fetch_add(1, Ordering::Relaxed);
        let tally = match point.bound.as_str() {
            "compute" => &c.compute_bound,
            "onchip-bw" => &c.onchip_bound,
            _ => &c.offchip_bound,
        };
        tally.fetch_add(1, Ordering::Relaxed);
        add_f64(&c.intensity_offchip_sum, point.intensity_offchip);
        add_f64(&c.achieved_sum, point.achieved);
        add_f64(&c.energy_fj_sum, report.energy().raw());
        add_f64(&c.time_ps_sum, report.time_ps.raw());
    }

    /// Snapshot the backends that have observed at least one tune, in
    /// [`CostModelKind::ALL`] order.
    pub fn snapshot(&self) -> Vec<CostModelStatsReply> {
        CostModelKind::ALL
            .iter()
            .map(|&k| self.slot(k).snapshot(k))
            .filter(|s| s.tunes > 0)
            .collect()
    }
}

/// Wire snapshot of one cost backend's observatory counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModelStatsReply {
    /// Backend name (`"analytic"`, `"roofline"`, `"spatial"`).
    pub model: String,
    /// Tunes whose winner was charged under this backend.
    pub tunes: u64,
    /// Winners whose binding roof was the compute ceiling.
    pub compute_bound: u64,
    /// Winners bound by on-chip (NoC) bandwidth.
    pub onchip_bound: u64,
    /// Winners bound by off-chip (memory) bandwidth.
    pub offchip_bound: u64,
    /// Mean off-chip operational intensity of winners (ops/bit).
    pub mean_intensity_offchip: f64,
    /// Mean achieved throughput of winners (ops/ps).
    pub mean_achieved_ops_per_ps: f64,
    /// Total energy across winners (fJ).
    pub total_energy_fj: f64,
    /// Total schedule time across winners (ps).
    pub total_time_ps: f64,
}

/// Breaker-state gauge values (stored in [`ShardMetrics::state`]).
pub mod breaker_state {
    /// Circuit closed: requests flow.
    pub const CLOSED: u8 = 0;
    /// Circuit open: the shard is quarantined until its cooldown ends.
    pub const OPEN: u8 = 1;
    /// Half-open: one probe in flight decides the next state.
    pub const HALF_OPEN: u8 = 2;
}

/// Where a shard's partitioning weight came from (gauge values stored
/// in [`ShardMetrics`]; surfaced as a string in [`ShardStats`]).
pub mod weight_source {
    /// No throughput information at all.
    pub const COLD: u8 = 0;
    /// Seeded from the crash-persistent weight ledger — believed, not
    /// yet re-confirmed by a live sample.
    pub const PERSISTED: u8 = 1;
    /// At least one live throughput sample this process lifetime.
    pub const MEASURED: u8 = 2;
}

/// Lock-free counters for one shard in the fleet pool.
#[derive(Debug)]
pub struct ShardMetrics {
    /// The shard's address, as configured.
    pub addr: String,
    /// Attempts sent to this shard (including hedges and probes).
    pub sends: AtomicU64,
    /// Attempts that returned a verified, complete reply.
    pub successes: AtomicU64,
    /// Attempts that failed (transport, refusal, or discarded reply).
    pub failures: AtomicU64,
    /// Times this shard's breaker transitioned Closed/HalfOpen → Open.
    pub breaker_opens: AtomicU64,
    /// Times the throughput-cliff detector fired a re-dispatch off
    /// this shard; drives cliff quarantine.
    pub cliff_trips: AtomicU64,
    /// Current breaker state gauge (see [`breaker_state`]).
    pub state: AtomicU8,
    /// Streamed parts merged from this shard.
    pub parts: AtomicU64,
    /// Set while the shard is out of the live roster (`ShardLeave`);
    /// in-flight attempts watch it and abandon so the coordinator can
    /// re-dispatch their suffix immediately. Cleared on rejoin.
    pub departed: AtomicBool,
    /// EWMA of this shard's observed throughput in candidates/second,
    /// stored as `f64` bits so frame-arrival observers stay lock-free.
    /// 0.0 means cold (no observation yet) — the weighted partitioner
    /// then substitutes the warm shards' mean, or an equal split when
    /// every shard is cold.
    ewma_rate_bits: AtomicU64,
    /// Trailing peak of the EWMA (`f64` bits, monotone via `fetch_max`
    /// — valid because IEEE ordering equals integer ordering for
    /// positive floats). The cliff detector compares the live EWMA
    /// against a configured fraction of this.
    peak_rate_bits: AtomicU64,
    /// [`weight_source`] gauge for the current EWMA value.
    source: AtomicU8,
    /// Fleet-tune generation of the last *fresh* (live) sample; drives
    /// staleness decay of persisted weights.
    last_sample_gen: AtomicU64,
}

/// EWMA smoothing factor for per-shard throughput: each new
/// observation contributes 30%, so one slow frame dents but does not
/// erase a shard's history, and a genuinely slow shard converges to
/// its true rate within a few frames.
pub const EWMA_ALPHA: f64 = 0.3;

impl ShardMetrics {
    /// Fresh counters for one shard address.
    pub fn new(addr: String) -> ShardMetrics {
        ShardMetrics {
            addr,
            sends: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            cliff_trips: AtomicU64::new(0),
            state: AtomicU8::new(breaker_state::CLOSED),
            parts: AtomicU64::new(0),
            departed: AtomicBool::new(false),
            ewma_rate_bits: AtomicU64::new(0.0f64.to_bits()),
            peak_rate_bits: AtomicU64::new(0.0f64.to_bits()),
            source: AtomicU8::new(weight_source::COLD),
            last_sample_gen: AtomicU64::new(0),
        }
    }

    /// Fold one throughput observation (`candidates` evaluated in
    /// `elapsed` of shard wall time) into the EWMA. Observations of
    /// zero duration or zero candidates carry no rate and are ignored.
    /// Also advances the trailing peak and marks the weight measured.
    pub fn observe_rate(&self, candidates: u64, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        if candidates == 0 || secs <= 0.0 {
            return;
        }
        let rate = candidates as f64 / secs;
        // Lossy read-modify-write: racing observers may each fold
        // against the same prior value and one update wins. That loses
        // an observation, never corrupts the value — fine for a
        // load-balancing hint.
        let prev = f64::from_bits(self.ewma_rate_bits.load(Ordering::Relaxed));
        let next = if prev <= 0.0 {
            rate
        } else {
            EWMA_ALPHA * rate + (1.0 - EWMA_ALPHA) * prev
        };
        self.ewma_rate_bits.store(next.to_bits(), Ordering::Relaxed);
        // Positive f64 bits order like integers, so fetch_max works.
        self.peak_rate_bits
            .fetch_max(next.to_bits(), Ordering::Relaxed);
        self.source
            .store(weight_source::MEASURED, Ordering::Relaxed);
    }

    /// The current EWMA throughput in candidates/second (0.0 = cold).
    pub fn ewma_rate(&self) -> f64 {
        f64::from_bits(self.ewma_rate_bits.load(Ordering::Relaxed))
    }

    /// Trailing peak of the EWMA (candidates/second; 0.0 = cold).
    pub fn peak_rate(&self) -> f64 {
        f64::from_bits(self.peak_rate_bits.load(Ordering::Relaxed))
    }

    /// Has this shard's throughput collapsed below `fraction` of its
    /// trailing peak? False while cold (no peak to collapse from).
    pub fn in_cliff(&self, fraction: f64) -> bool {
        let ewma = self.ewma_rate();
        let peak = self.peak_rate();
        fraction > 0.0 && ewma > 0.0 && peak > 0.0 && ewma < fraction * peak
    }

    /// Seed EWMA + peak from a persisted ledger entry (start-up only;
    /// non-finite or non-positive rates are ignored).
    pub fn seed_persisted(&self, ewma: f64, peak: f64, generation: u64) {
        if !ewma.is_finite() || ewma <= 0.0 {
            return;
        }
        self.ewma_rate_bits.store(ewma.to_bits(), Ordering::Relaxed);
        let peak = if peak.is_finite() {
            peak.max(ewma)
        } else {
            ewma
        };
        self.peak_rate_bits.store(peak.to_bits(), Ordering::Relaxed);
        self.last_sample_gen.store(generation, Ordering::Relaxed);
        self.source
            .store(weight_source::PERSISTED, Ordering::Relaxed);
    }

    /// Record that a fresh (live) sample landed at fleet-tune
    /// generation `generation`.
    pub fn mark_fresh(&self, generation: u64) {
        self.last_sample_gen.store(generation, Ordering::Relaxed);
    }

    /// Fleet-tune generation of the last fresh sample.
    pub fn sample_gen(&self) -> u64 {
        self.last_sample_gen.load(Ordering::Relaxed)
    }

    /// Whether the shard is currently out of the live roster.
    pub fn is_departed(&self) -> bool {
        self.departed.load(Ordering::Acquire)
    }

    /// Flag the shard departed (true) or revived (false).
    pub fn set_departed(&self, departed: bool) {
        self.departed.store(departed, Ordering::Release);
    }

    /// The weight-source gauge as its wire string.
    pub fn source_name(&self) -> &'static str {
        match self.source.load(Ordering::Relaxed) {
            weight_source::PERSISTED => "persisted",
            weight_source::MEASURED => "measured",
            _ => "cold",
        }
    }

    fn snapshot(&self) -> ShardStats {
        ShardStats {
            addr: self.addr.clone(),
            sends: self.sends.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            cliff_trips: self.cliff_trips.load(Ordering::Relaxed),
            breaker: match self.state.load(Ordering::Relaxed) {
                breaker_state::OPEN => "open",
                breaker_state::HALF_OPEN => "half-open",
                _ => "closed",
            }
            .to_string(),
            parts: self.parts.load(Ordering::Relaxed),
            ewma_cands_per_sec: self.ewma_rate(),
            peak_cands_per_sec: self.peak_rate(),
            weight_source: self.source_name().to_string(),
            departed: self.is_departed(),
        }
    }
}

/// The fleet coordinator's registry: per-shard counters plus
/// fleet-wide robustness counters. Shared between the coordinator's
/// dispatch threads and the `Stats` endpoint.
///
/// The shard table is growable: elastic membership registers shards as
/// they join, and a shard that leaves keeps its row (flagged departed)
/// so its learned throughput survives a rejoin and the history stays
/// visible in `Stats`. Rows are keyed by address — rejoining revives
/// the existing row, so churn cannot grow the table without bound.
#[derive(Debug)]
pub struct FleetMetrics {
    /// Per-shard counters, in registration order (live and departed).
    shards: Mutex<Vec<Arc<ShardMetrics>>>,
    /// Live members of the fleet roster (gauge).
    pub members: AtomicU64,
    /// Membership epoch (gauge): bumps on every effective join/leave.
    pub membership_epoch: AtomicU64,
    /// Effective `ShardJoin` admissions (idempotent repeats excluded).
    pub joins: AtomicU64,
    /// Effective `ShardLeave` retirements (idempotent repeats
    /// excluded).
    pub leaves: AtomicU64,
    /// Suffix re-dispatches fired by the throughput-cliff detector
    /// (EWMA collapsed below the configured fraction of the trailing
    /// peak while the range watermark stalled).
    pub cliff_redispatches: AtomicU64,
    /// Shards quarantined (breaker tripped open) for repeatedly
    /// firing the cliff detector.
    pub cliff_quarantines: AtomicU64,
    /// Suffix re-dispatches fired because the attempt's shard left the
    /// roster mid-range.
    pub departed_redispatches: AtomicU64,
    /// Tunes routed through the fleet path.
    pub fleet_tunes: AtomicU64,
    /// Sub-range attempts beyond each range's first (per-range retry
    /// count, summed).
    pub retries: AtomicU64,
    /// Hedged duplicate requests launched for straggler shards.
    pub hedges: AtomicU64,
    /// Hedges whose reply arrived (valid) before the primary's.
    pub hedge_wins: AtomicU64,
    /// Replies discarded for a checksum mismatch (corrupt frames).
    pub corrupt_discarded: AtomicU64,
    /// Replies discarded for an epoch mismatch (stale frames).
    pub stale_discarded: AtomicU64,
    /// Replies discarded as incomplete (shard stopped mid-range).
    pub incomplete_discarded: AtomicU64,
    /// Sub-ranges that ran on a shard other than their first choice.
    pub reassignments: AtomicU64,
    /// Sub-ranges that fell back to local evaluation after every shard
    /// path failed.
    pub local_fallback_ranges: AtomicU64,
    /// Tunes in which *every* sub-range fell back locally (the fleet
    /// was effectively down; the answer is still exact).
    pub degraded_tunes: AtomicU64,
    /// Streamed parts verified and merged into range progress.
    pub parts_merged: AtomicU64,
    /// Streamed parts discarded (bad checksum, stale epoch, or not
    /// contiguous with the range's covered watermark).
    pub parts_discarded: AtomicU64,
    /// Retry/hedge attempts that re-dispatched only a range's
    /// unfinished *suffix* (streamed progress made the prefix safe).
    pub suffix_redispatches: AtomicU64,
    /// Candidates whose evaluation was **not** repeated because a
    /// failed or abandoned attempt had already streamed them back —
    /// the work a blocking protocol would have thrown away.
    pub prefix_candidates_saved: AtomicU64,
}

impl FleetMetrics {
    /// Fresh counters; shards register as membership admits them.
    pub fn new() -> FleetMetrics {
        FleetMetrics {
            shards: Mutex::new(Vec::new()),
            members: AtomicU64::new(0),
            membership_epoch: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
            cliff_redispatches: AtomicU64::new(0),
            cliff_quarantines: AtomicU64::new(0),
            departed_redispatches: AtomicU64::new(0),
            fleet_tunes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            corrupt_discarded: AtomicU64::new(0),
            stale_discarded: AtomicU64::new(0),
            incomplete_discarded: AtomicU64::new(0),
            reassignments: AtomicU64::new(0),
            local_fallback_ranges: AtomicU64::new(0),
            degraded_tunes: AtomicU64::new(0),
            parts_merged: AtomicU64::new(0),
            parts_discarded: AtomicU64::new(0),
            suffix_redispatches: AtomicU64::new(0),
            prefix_candidates_saved: AtomicU64::new(0),
        }
    }

    /// The counter row for `addr`, creating (or reviving) it. The row
    /// is shared: a member built over it sees the history a previous
    /// incarnation of the same address accumulated.
    pub fn register(&self, addr: &str) -> Arc<ShardMetrics> {
        let mut shards = self.shards.lock();
        if let Some(existing) = shards.iter().find(|s| s.addr == addr) {
            return Arc::clone(existing);
        }
        let fresh = Arc::new(ShardMetrics::new(addr.to_string()));
        shards.push(Arc::clone(&fresh));
        fresh
    }

    /// Every registered shard row (live and departed), in registration
    /// order.
    pub fn shard_metrics(&self) -> Vec<Arc<ShardMetrics>> {
        self.shards.lock().clone()
    }

    /// Snapshot into the wire shape.
    pub fn snapshot(&self) -> FleetStatsReply {
        FleetStatsReply {
            shards: self.shards.lock().iter().map(|s| s.snapshot()).collect(),
            members: self.members.load(Ordering::Relaxed),
            membership_epoch: self.membership_epoch.load(Ordering::Relaxed),
            joins: self.joins.load(Ordering::Relaxed),
            leaves: self.leaves.load(Ordering::Relaxed),
            cliff_redispatches: self.cliff_redispatches.load(Ordering::Relaxed),
            cliff_quarantines: self.cliff_quarantines.load(Ordering::Relaxed),
            departed_redispatches: self.departed_redispatches.load(Ordering::Relaxed),
            fleet_tunes: self.fleet_tunes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            corrupt_discarded: self.corrupt_discarded.load(Ordering::Relaxed),
            stale_discarded: self.stale_discarded.load(Ordering::Relaxed),
            incomplete_discarded: self.incomplete_discarded.load(Ordering::Relaxed),
            reassignments: self.reassignments.load(Ordering::Relaxed),
            local_fallback_ranges: self.local_fallback_ranges.load(Ordering::Relaxed),
            degraded_tunes: self.degraded_tunes.load(Ordering::Relaxed),
            parts_merged: self.parts_merged.load(Ordering::Relaxed),
            parts_discarded: self.parts_discarded.load(Ordering::Relaxed),
            suffix_redispatches: self.suffix_redispatches.load(Ordering::Relaxed),
            prefix_candidates_saved: self.prefix_candidates_saved.load(Ordering::Relaxed),
        }
    }
}

impl Default for FleetMetrics {
    fn default() -> Self {
        FleetMetrics::new()
    }
}

/// Wire snapshot of one shard's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// The shard's address, as configured.
    pub addr: String,
    /// Attempts sent (including hedges and breaker probes).
    pub sends: u64,
    /// Verified, complete replies.
    pub successes: u64,
    /// Failed attempts (transport, refusal, discarded reply).
    pub failures: u64,
    /// Closed/HalfOpen → Open breaker transitions.
    pub breaker_opens: u64,
    /// Cliff-detector firings attributed to this shard. Absent on
    /// pre-quarantine servers — decoded as 0.
    #[serde(default)]
    pub cliff_trips: u64,
    /// Breaker state at snapshot time: `"closed"`, `"open"`, or
    /// `"half-open"`.
    pub breaker: String,
    /// Streamed parts merged from this shard.
    pub parts: u64,
    /// EWMA throughput in candidates/second (0.0 = cold).
    pub ewma_cands_per_sec: f64,
    /// Trailing peak of the EWMA (candidates/second). Absent on
    /// pre-elastic servers — decoded as 0.
    #[serde(default)]
    pub peak_cands_per_sec: f64,
    /// Where the current weight came from: `"cold"`, `"persisted"`
    /// (ledger-seeded), or `"measured"`. Absent on pre-elastic servers
    /// — decoded as empty.
    #[serde(default)]
    pub weight_source: String,
    /// Whether the shard is currently out of the live roster. Absent
    /// on pre-elastic servers — decoded as false.
    #[serde(default)]
    pub departed: bool,
}

/// Wire snapshot of the fleet coordinator's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStatsReply {
    /// Per-shard counters, in registration order (live and departed).
    pub shards: Vec<ShardStats>,
    /// Live members of the fleet roster. Absent on pre-elastic servers
    /// — decoded as 0.
    #[serde(default)]
    pub members: u64,
    /// Membership epoch (bumps on every effective join/leave). Absent
    /// on pre-elastic servers — decoded as 0.
    #[serde(default)]
    pub membership_epoch: u64,
    /// Effective `ShardJoin` admissions. Absent on pre-elastic servers
    /// — decoded as 0.
    #[serde(default)]
    pub joins: u64,
    /// Effective `ShardLeave` retirements. Absent on pre-elastic
    /// servers — decoded as 0.
    #[serde(default)]
    pub leaves: u64,
    /// Suffix re-dispatches fired by the throughput-cliff detector.
    /// Absent on pre-elastic servers — decoded as 0.
    #[serde(default)]
    pub cliff_redispatches: u64,
    /// Shards quarantined for repeatedly firing the cliff detector.
    /// Absent on pre-quarantine servers — decoded as 0.
    #[serde(default)]
    pub cliff_quarantines: u64,
    /// Suffix re-dispatches fired by mid-range shard departure. Absent
    /// on pre-elastic servers — decoded as 0.
    #[serde(default)]
    pub departed_redispatches: u64,
    /// Tunes routed through the fleet path.
    pub fleet_tunes: u64,
    /// Per-range retry attempts, summed.
    pub retries: u64,
    /// Hedged duplicate requests launched.
    pub hedges: u64,
    /// Hedges that beat their primary.
    pub hedge_wins: u64,
    /// Replies discarded for checksum mismatch.
    pub corrupt_discarded: u64,
    /// Replies discarded for epoch mismatch.
    pub stale_discarded: u64,
    /// Replies discarded as incomplete.
    pub incomplete_discarded: u64,
    /// Sub-ranges served by a non-first-choice shard.
    pub reassignments: u64,
    /// Sub-ranges evaluated locally after all shard paths failed.
    pub local_fallback_ranges: u64,
    /// Tunes that degraded entirely to local evaluation.
    pub degraded_tunes: u64,
    /// Streamed parts verified and merged.
    pub parts_merged: u64,
    /// Streamed parts discarded (corrupt, stale, or non-contiguous).
    pub parts_discarded: u64,
    /// Retries/hedges that re-dispatched only an unfinished suffix.
    pub suffix_redispatches: u64,
    /// Candidates saved from re-evaluation by streamed prefixes.
    pub prefix_candidates_saved: u64,
}

/// Latency summary for one endpoint, in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Arithmetic mean (exact, from a running sum).
    pub mean_us: f64,
    /// Maximum observed (exact).
    pub max_us: f64,
}

/// Wire snapshot of one endpoint's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Requests received.
    pub received: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests answered with `Failed`.
    pub failed: u64,
    /// Admission-to-reply latency of completed requests.
    pub latency: LatencyStats,
}

/// The `Stats` endpoint's reply: a full registry snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Milliseconds since the server started.
    pub uptime_ms: f64,
    /// Connections accepted.
    pub connections: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Admission-queue high-water mark.
    pub queue_peak: u64,
    /// Configured admission-queue capacity.
    pub queue_capacity: u64,
    /// Requests refused with `Busy`.
    pub busy_rejections: u64,
    /// Unparseable frames received.
    pub protocol_errors: u64,
    /// Requests that expired before execution.
    pub deadline_expired: u64,
    /// Requests cancelled mid-run.
    pub cancelled: u64,
    /// Tuning-cache hits.
    pub cache_hits: u64,
    /// Tuning-cache misses.
    pub cache_misses: u64,
    /// Tuning-cache stale entries.
    pub cache_stale: u64,
    /// Connections that negotiated the binary pipelined protocol.
    pub binary_connections: u64,
    /// Request frames decoded from JSON text payloads.
    pub json_requests: u64,
    /// Request frames decoded from binary envelopes.
    pub binary_requests: u64,
    /// Peak concurrently in-flight requests on one pipelined
    /// connection.
    pub inflight_peak: u64,
    /// Dedup batches executed (one search served 2+ identical tunes).
    pub dedup_batches: u64,
    /// Queued `Tune` requests answered from another request's search.
    pub dedup_waiters_served: u64,
    /// Streamed `TuneShardPart` frames emitted (as a fleet backend).
    pub tune_shard_parts: u64,
    /// `Tune` counters.
    pub tune: EndpointStats,
    /// `TuneShard` counters (work done as a fleet backend).
    pub tune_shard: EndpointStats,
    /// `Evaluate` counters.
    pub evaluate: EndpointStats,
    /// `Simulate` counters.
    pub simulate: EndpointStats,
    /// `SessionOpen` counters.
    pub session_open: EndpointStats,
    /// `SessionEdit` counters.
    pub session_edit: EndpointStats,
    /// `SessionTune` counters.
    pub session_tune: EndpointStats,
    /// `SessionClose` counters.
    pub session_close: EndpointStats,
    /// Session-subsystem counters (open sessions, edits, warm vs cold
    /// tunes, mean dirty cone).
    pub sessions: SessionStatsReply,
    /// `Stats` counters.
    pub stats: EndpointStats,
    /// `Ping` counters.
    pub ping: EndpointStats,
    /// Per-cost-backend observatory rows (only backends that have
    /// scored at least one tune). Absent on pre-observatory servers —
    /// decoded as empty.
    #[serde(default)]
    pub cost_models: Vec<CostModelStatsReply>,
    /// Fleet-coordinator counters (`None` unless serving with
    /// `--fleet`).
    pub fleet: Option<FleetStatsReply>,
}

impl StatsReply {
    /// Total requests received across the work endpoints (tune +
    /// tune_shard + evaluate + simulate).
    pub fn work_received(&self) -> u64 {
        self.tune.received
            + self.tune_shard.received
            + self.evaluate.received
            + self.simulate.received
    }

    /// Cache hit rate over `Tune` requests that consulted the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses + self.cache_stale;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Log2 buckets: answers are within 2× of the true quantile and
        // monotone in q.
        assert!((25_000_000..=128_000_000).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 64_000_000, "p99 = {p99}");
        assert!(p50 <= p99);
        // Max is exact.
        assert_eq!(h.quantile_ns(1.0), 100_000_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        let s = h.snapshot();
        assert_eq!(s.mean_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }

    #[test]
    fn single_sample_all_quantiles_equal_it() {
        let h = Histogram::default();
        h.record(Duration::from_micros(7));
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 7_000);
        }
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let m = Metrics::default();
        m.tune.received.fetch_add(3, Ordering::Relaxed);
        m.tune.completed.fetch_add(2, Ordering::Relaxed);
        m.tune.latency.record(Duration::from_millis(5));
        m.queue_pushed(2);
        m.queue_popped(1);
        let snap = m.snapshot(8);
        assert_eq!(snap.queue_capacity, 8);
        assert_eq!(snap.queue_peak, 2);
        assert_eq!(snap.queue_depth, 1);
        let text = serde_json::to_string(&snap).unwrap();
        let back: StatsReply = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn ewma_rate_warms_up_and_tracks_observations() {
        let s = ShardMetrics::new("127.0.0.1:1".into());
        assert_eq!(s.ewma_rate(), 0.0, "cold shard reports 0");
        // Degenerate observations carry no rate.
        s.observe_rate(0, Duration::from_millis(10));
        s.observe_rate(5, Duration::ZERO);
        assert_eq!(s.ewma_rate(), 0.0);
        // First real observation seeds the EWMA directly.
        s.observe_rate(100, Duration::from_secs(1));
        assert!((s.ewma_rate() - 100.0).abs() < 1e-9);
        // Subsequent observations blend with weight EWMA_ALPHA.
        s.observe_rate(200, Duration::from_secs(1));
        let want = EWMA_ALPHA * 200.0 + (1.0 - EWMA_ALPHA) * 100.0;
        assert!((s.ewma_rate() - want).abs() < 1e-9);
        // Repeated identical observations converge to that rate.
        for _ in 0..64 {
            s.observe_rate(50, Duration::from_secs(1));
        }
        assert!((s.ewma_rate() - 50.0).abs() < 1.0);
    }

    #[test]
    fn peak_is_monotone_and_cliff_detector_fires_on_collapse() {
        let s = ShardMetrics::new("127.0.0.1:1".into());
        assert!(!s.in_cliff(0.5), "cold shard is never in a cliff");
        s.observe_rate(1000, Duration::from_secs(1));
        assert!((s.peak_rate() - 1000.0).abs() < 1e-9);
        assert!(!s.in_cliff(0.5), "at peak is not a cliff");
        // Collapse: repeated slow observations drag the EWMA down; the
        // peak holds, so the detector fires once past the fraction.
        for _ in 0..16 {
            s.observe_rate(10, Duration::from_secs(1));
        }
        assert!((s.peak_rate() - 1000.0).abs() < 1e-9, "peak is monotone");
        assert!(s.ewma_rate() < 100.0);
        assert!(s.in_cliff(0.5));
        assert!(!s.in_cliff(0.0), "fraction 0 disables detection");
    }

    #[test]
    fn fleet_registry_grows_revives_and_strips_for_old_peers() {
        let f = FleetMetrics::new();
        assert!(f.shard_metrics().is_empty());
        let a = f.register("a:1");
        let a2 = f.register("a:1");
        assert!(Arc::ptr_eq(&a, &a2), "same address, same row");
        f.register("b:2");
        assert_eq!(f.shard_metrics().len(), 2);
        a.observe_rate(100, Duration::from_secs(1));
        a.set_departed(true);
        f.members.store(1, Ordering::Relaxed);
        f.membership_epoch.store(3, Ordering::Relaxed);
        f.joins.fetch_add(2, Ordering::Relaxed);
        let snap = f.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert!(snap.shards[0].departed);
        assert_eq!(snap.shards[0].weight_source, "measured");
        assert!(snap.shards[0].peak_cands_per_sec > 0.0);
        assert_eq!(snap.members, 1);
        assert_eq!(snap.membership_epoch, 3);
        assert_eq!(snap.joins, 2);
        // Wire compat: a pre-elastic peer omits every new field; the
        // reply still decodes, with defaults.
        let text = serde_json::to_string(&snap).unwrap();
        let back: FleetStatsReply = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        let mut stripped = text.clone();
        for field in [
            "members",
            "membership_epoch",
            "joins",
            "leaves",
            "cliff_redispatches",
            "departed_redispatches",
        ] {
            let needle = format!(
                "\"{field}\":{},",
                serde_json::to_string(&match field {
                    "members" => snap.members,
                    "membership_epoch" => snap.membership_epoch,
                    "joins" => snap.joins,
                    "leaves" => snap.leaves,
                    "cliff_redispatches" => snap.cliff_redispatches,
                    _ => snap.departed_redispatches,
                })
                .unwrap()
            );
            let next = stripped.replacen(&needle, "", 1);
            assert_ne!(next, stripped, "must strip {field}");
            stripped = next;
        }
        stripped = stripped.replace(",\"departed\":true", "");
        stripped = stripped.replace(",\"departed\":false", "");
        stripped = stripped.replace(",\"weight_source\":\"measured\"", "");
        stripped = stripped.replace(",\"weight_source\":\"cold\"", "");
        let old: FleetStatsReply = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.members, 0);
        assert_eq!(old.membership_epoch, 0);
        assert_eq!(old.joins, 0);
        assert!(!old.shards[0].departed);
        assert_eq!(old.shards[0].weight_source, "");
    }

    #[test]
    fn cost_model_observatory_tallies_winners() {
        use fm_costmodel::{EnergyLedger, Picoseconds};
        let m = Metrics::default();
        assert!(
            m.snapshot(8).cost_models.is_empty(),
            "no rows before any tune"
        );
        let report = CostReport {
            name: "t".into(),
            cycles: 10,
            time_ps: Picoseconds::new(2000.0),
            ledger: EnergyLedger::default(),
            peak_tile_bits: 0,
            pes_used: 1,
            utilization: 1.0,
            elements: 1,
        };
        let point = RooflinePoint {
            intensity_onchip: 1.0,
            intensity_offchip: 2.0,
            compute_ceiling: 4.0,
            attainable_onchip: 4.0,
            attainable_offchip: 4.0,
            achieved: 0.5,
            bound: "offchip-bw".to_string(),
        };
        m.cost_models
            .observe(CostModelKind::Roofline, &point, &report);
        m.cost_models
            .observe(CostModelKind::Roofline, &point, &report);
        let rows = m.snapshot(8).cost_models;
        assert_eq!(rows.len(), 1, "only the observed backend appears");
        assert_eq!(rows[0].model, "roofline");
        assert_eq!(rows[0].tunes, 2);
        assert_eq!(rows[0].offchip_bound, 2);
        assert_eq!(rows[0].compute_bound, 0);
        assert!((rows[0].mean_intensity_offchip - 2.0).abs() < 1e-12);
        assert!((rows[0].total_time_ps - 4000.0).abs() < 1e-9);
        // And the wire snapshot round-trips with the new section.
        let snap = m.snapshot(8);
        let text = serde_json::to_string(&snap).unwrap();
        let back: StatsReply = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        // Old servers omit the section entirely; it decodes as empty.
        let stripped = text.replace(
            &format!(
                "\"cost_models\":{},",
                serde_json::to_string(&snap.cost_models).unwrap()
            ),
            "",
        );
        assert_ne!(stripped, text, "test must actually strip the field");
        let old: StatsReply = serde_json::from_str(&stripped).unwrap();
        assert!(old.cost_models.is_empty());
    }

    #[test]
    fn queue_peak_is_monotone() {
        let m = Metrics::default();
        m.queue_pushed(5);
        m.queue_popped(4);
        m.queue_pushed(5);
        m.queue_popped(0);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 5);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
    }
}
