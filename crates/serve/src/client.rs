//! Blocking client for the `fm-serve` daemon.
//!
//! [`Client::connect`] negotiates the wire protocol on connect: it
//! sends a JSON [`Request::Hello`] and, when the server acknowledges,
//! switches the connection to the compact binary envelope with
//! pipelining. A server that predates negotiation answers the unknown
//! request with a protocol failure (or just closes); the client then
//! transparently reconnects and speaks classic JSON — old servers and
//! new clients interoperate, as do old clients and new servers (an
//! un-negotiated connection is served JSON byte-for-byte as before).
//! [`Client::connect_json`] skips negotiation outright.
//!
//! The typed helpers ([`Client::tune`], [`Client::evaluate`],
//! [`Client::simulate`], …) are one-at-a-time request/reply in either
//! encoding. On a negotiated connection [`Client::send_request`] /
//! [`Client::recv_response`] additionally expose pipelining: queue
//! many requests, then match completions (which arrive in *completion*
//! order) by correlation id. [`ClientError::Busy`] is its own variant
//! so load generators can count and back off.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use fm_core::mutate::GraphEdit;

use crate::metrics::StatsReply;
use crate::protocol::{
    decode_response_any, encode_request_binary, read_frame, read_response, write_frame,
    write_request, BusyReply, EvaluateReply, EvaluateRequest, FailReply, HelloRequest,
    MembershipReply, NoSuchSessionReply, Request, Response, SessionCloseRequest,
    SessionClosedReply, SessionEditRequest, SessionEditedReply, SessionOpenRequest,
    SessionOpenedReply, SessionTuneRequest, SessionTunedReply, ShardJoinRequest, ShardLeaveRequest,
    SimulateReply, SimulateRequest, TuneReply, TuneRequest, TuneShardPart, TuneShardReply,
    TuneShardRequest, WireError, DEFAULT_MAX_FRAME, PROTOCOL_BINARY_VERSION,
};

/// What went wrong with a request, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server refused admission: its queue is full. Back off and
    /// retry.
    Busy(BusyReply),
    /// The server is draining and no longer admits work.
    ShuttingDown,
    /// The server executed the request and reported a failure
    /// (`kind` is one of
    /// `protocol`/`deadline`/`illegal`/`sim`/`session`/`internal`).
    Failed(FailReply),
    /// The session named in a session request does not exist on the
    /// server — never opened, already closed, or evicted idle. Distinct
    /// from [`ClientError::Failed`] so callers can transparently reopen
    /// instead of pattern-matching error strings.
    NoSuchSession(NoSuchSessionReply),
    /// The request named a `cost_model` the server does not implement
    /// (or one that conflicts with the session's). Typed separately
    /// from [`ClientError::Failed`] because the right recovery —
    /// re-send under a supported model — is mechanical, not a retry.
    UnknownCostModel(FailReply),
    /// The server answered with a response variant that does not match
    /// the request (protocol confusion; should not happen).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Busy(b) => write!(
                f,
                "server busy: queue {}/{} full",
                b.queue_depth, b.queue_capacity
            ),
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Failed(e) => write!(f, "request failed ({}): {}", e.kind, e.error),
            ClientError::NoSuchSession(r) => {
                write!(f, "no such session: {} (closed or evicted?)", r.session_id)
            }
            ClientError::UnknownCostModel(e) => write!(f, "cost model refused: {}", e.error),
            ClientError::Unexpected(kind) => write!(f, "unexpected response variant: {kind}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// Is this a transient refusal worth retrying after a pause?
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy(_))
    }

    /// Did the server report the session as gone? The right recovery is
    /// to reopen (the session id is dead for good — ids are never
    /// reused), not to retry.
    pub fn is_no_such_session(&self) -> bool {
        matches!(self, ClientError::NoSuchSession(_))
    }

    /// Did the server refuse the request's `cost_model` name?
    pub fn is_unknown_cost_model(&self) -> bool {
        matches!(self, ClientError::UnknownCostModel(_))
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    /// Resolved addresses kept for the negotiation-fallback reconnect.
    addrs: Vec<SocketAddr>,
    /// Per-address bound used when dialing (`None` = OS default).
    connect_timeout: Option<Duration>,
    /// Negotiated: frames carry the binary envelope.
    binary: bool,
    /// Negotiated: the server completes this connection's requests
    /// out of order, matched by correlation id.
    pipeline: bool,
    next_corr: u64,
}

impl Client {
    /// Connect to a running server and negotiate the wire protocol
    /// (binary + pipelining when the server supports it, transparent
    /// JSON fallback when it predates negotiation).
    ///
    /// Uses the OS-default (blocking, unbounded) connect; callers with
    /// a deadline should use [`Client::connect_timeout`] so a
    /// black-holed address fails fast instead of hanging.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_json(addr)?.negotiate()
    }

    /// Connect with a bounded connect timeout per resolved address —
    /// thread a request deadline here so an unresponsive (SYN-dropping)
    /// server costs at most `timeout` per address instead of the OS
    /// default, which can be minutes. Negotiates like
    /// [`Client::connect`].
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(WireError::Io)?.collect();
        let stream = Client::dial(&addrs, Some(timeout))?;
        Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            addrs,
            connect_timeout: Some(timeout),
            binary: false,
            pipeline: false,
            next_corr: 0,
        }
        .negotiate()
    }

    /// Connect *without* negotiating: the connection speaks classic
    /// length-prefixed JSON, exactly like a client that predates the
    /// binary protocol. (Also what [`Client::connect`] degrades to
    /// against an old server.)
    pub fn connect_json(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(WireError::Io)?.collect();
        let stream = Client::dial(&addrs, None)?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            addrs,
            connect_timeout: None,
            binary: false,
            pipeline: false,
            next_corr: 0,
        })
    }

    fn dial(addrs: &[SocketAddr], timeout: Option<Duration>) -> Result<TcpStream, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for addr in addrs {
            let attempt = match timeout {
                Some(t) => TcpStream::connect_timeout(addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Wire(WireError::Io(last.unwrap_or_else(
            || {
                std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "address resolved to nothing",
                )
            },
        ))))
    }

    /// Offer the highest version we speak, in JSON (the one encoding
    /// every server understands). A modern server acks and the
    /// connection goes binary; an old one answers the unknown request
    /// with a protocol failure — or just hangs up — and we reconnect
    /// to speak JSON, which it does understand. Requests are never
    /// silently lost either way: negotiation happens strictly before
    /// the first real request.
    fn negotiate(mut self) -> Result<Client, ClientError> {
        let hello = Request::Hello(HelloRequest {
            max_version: PROTOCOL_BINARY_VERSION,
            pipeline: true,
        });
        if write_request(&mut self.stream, &hello).is_err() {
            return self.fall_back_to_json();
        }
        match read_response(&mut self.stream, self.max_frame) {
            Ok(Response::HelloAck(ack)) => {
                self.binary = ack.version > 0;
                self.pipeline = ack.pipeline && self.binary;
                Ok(self)
            }
            Ok(_) | Err(_) => self.fall_back_to_json(),
        }
    }

    fn fall_back_to_json(mut self) -> Result<Client, ClientError> {
        self.binary = false;
        self.pipeline = false;
        // The old server closed the connection after the unknown
        // request; a fresh one starts with clean framing state.
        self.stream = Client::dial(&self.addrs, self.connect_timeout)?;
        Ok(self)
    }

    /// Did negotiation land on the binary envelope?
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Did negotiation enable out-of-order pipelining?
    pub fn is_pipelined(&self) -> bool {
        self.pipeline
    }

    /// Cap accepted response frames (mirror of the server-side cap).
    pub fn with_max_frame(mut self, max: usize) -> Client {
        self.max_frame = max;
        self
    }

    /// Queue one request without waiting for its reply. On a binary
    /// connection the returned correlation id names the reply frame
    /// ([`Client::recv_response`] echoes it); on a JSON connection
    /// replies come back strictly in request order and the id is
    /// always 0. Frames queued back-to-back share socket writes — this
    /// is the client half of pipelining.
    pub fn send_request(&mut self, request: &Request) -> Result<u64, ClientError> {
        if self.binary {
            self.next_corr += 1;
            let corr = self.next_corr;
            write_frame(&mut self.stream, &encode_request_binary(corr, request))
                .map_err(WireError::Io)?;
            Ok(corr)
        } else {
            write_request(&mut self.stream, request).map_err(WireError::Io)?;
            Ok(0)
        }
    }

    /// Read one response frame, whichever in-flight request it
    /// answers, with its correlation id (0 on JSON connections).
    pub fn recv_response(&mut self) -> Result<(u64, Response), ClientError> {
        let payload = read_frame(&mut self.stream, self.max_frame)?;
        let (corr, resp, _was_binary) = decode_response_any(&payload)?;
        Ok((corr, resp))
    }

    /// Send one request and read its response, raw.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let corr = self.send_request(request)?;
        loop {
            let (rcorr, resp) = self.recv_response()?;
            // Replies to abandoned correlation ids (a pipelined burst
            // cut short by an error) are drained, not surfaced.
            if !self.binary || rcorr == corr {
                return Ok(resp);
            }
        }
    }

    /// Shared unwrap: split out the refusals every endpoint can get.
    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Busy(b) => Err(ClientError::Busy(b)),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            Response::Failed(e) if e.kind == "cost-model" => Err(ClientError::UnknownCostModel(e)),
            Response::Failed(e) => Err(ClientError::Failed(e)),
            Response::NoSuchSession(r) => Err(ClientError::NoSuchSession(r)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Run a tuning search on the server.
    pub fn tune(&mut self, request: TuneRequest) -> Result<TuneReply, ClientError> {
        match self.checked(&Request::Tune(request))? {
            Response::Tuned(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Run one shard-range sub-search, collecting any streamed
    /// [`TuneShardPart`] frames (in arrival order) until the terminal
    /// [`TuneShardReply`] lands. With `stream_every: None` the parts
    /// vector is simply empty. Frames are returned as received —
    /// verification (epoch echo, checksum, completeness) is the
    /// caller's job, exactly as it is the fleet coordinator's.
    pub fn tune_shard(
        &mut self,
        request: TuneShardRequest,
    ) -> Result<(Vec<TuneShardPart>, TuneShardReply), ClientError> {
        let corr = self.send_request(&Request::TuneShard(request))?;
        let mut parts = Vec::new();
        loop {
            let (rcorr, resp) = self.recv_response()?;
            if self.binary && rcorr != corr {
                continue; // stray reply to an abandoned id
            }
            match resp {
                Response::TuneShardPart(part) => parts.push(part),
                Response::TuneSharded(reply) => return Ok((parts, reply)),
                Response::Busy(b) => return Err(ClientError::Busy(b)),
                Response::ShuttingDown => return Err(ClientError::ShuttingDown),
                Response::Failed(e) if e.kind == "cost-model" => {
                    return Err(ClientError::UnknownCostModel(e))
                }
                Response::Failed(e) => return Err(ClientError::Failed(e)),
                other => return Err(ClientError::Unexpected(other.kind())),
            }
        }
    }

    /// Evaluate one mapping's predicted cost.
    pub fn evaluate(&mut self, request: EvaluateRequest) -> Result<EvaluateReply, ClientError> {
        match self.checked(&Request::Evaluate(request))? {
            Response::Evaluated(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Execute one mapping in the cycle-level simulator.
    pub fn simulate(&mut self, request: SimulateRequest) -> Result<SimulateReply, ClientError> {
        match self.checked(&Request::Simulate(request))? {
            Response::Simulated(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Open a live-mutation session: the server keeps the graph,
    /// machine, candidate set, and warm tuning state resident under the
    /// returned session id.
    pub fn session_open(
        &mut self,
        request: SessionOpenRequest,
    ) -> Result<SessionOpenedReply, ClientError> {
        match self.checked(&Request::SessionOpen(request))? {
            Response::SessionOpened(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Apply a batch of graph edits to a session, sealing it (epoch
    /// stamp + checksum) on the way out. `epoch` must be the session's
    /// current epoch — the value returned by the previous open/edit
    /// reply — or the server refuses the whole batch.
    pub fn session_edit(
        &mut self,
        session_id: u64,
        epoch: u64,
        edits: Vec<GraphEdit>,
    ) -> Result<SessionEditedReply, ClientError> {
        let request = SessionEditRequest::seal(session_id, epoch, edits);
        match self.checked(&Request::SessionEdit(request))? {
            Response::SessionEdited(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Re-tune a session warm: candidate costs are repaired from the
    /// edit stream instead of recomputed, and the winner is
    /// bit-identical to a cold tune of the current graph.
    pub fn session_tune(
        &mut self,
        session_id: u64,
        deadline_ms: Option<u64>,
    ) -> Result<SessionTunedReply, ClientError> {
        let request = SessionTuneRequest {
            session_id,
            deadline_ms,
            cost_model: None,
        };
        match self.checked(&Request::SessionTune(request))? {
            Response::SessionTuned(r) => Ok(*r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Close a session, releasing its resident state.
    pub fn session_close(&mut self, session_id: u64) -> Result<SessionClosedReply, ClientError> {
        match self.checked(&Request::SessionClose(SessionCloseRequest { session_id }))? {
            Response::SessionClosed(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Admit a shard into a coordinator's running fleet roster
    /// (idempotent; answered with the roster after the change).
    pub fn shard_join(&mut self, addr: &str) -> Result<MembershipReply, ClientError> {
        let req = Request::ShardJoin(ShardJoinRequest {
            addr: addr.to_string(),
        });
        match self.checked(&req)? {
            Response::Membership(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Retire a shard from a coordinator's running fleet roster
    /// (idempotent; in-flight suffixes re-dispatch to survivors).
    pub fn shard_leave(&mut self, addr: &str) -> Result<MembershipReply, ClientError> {
        let req = Request::ShardLeave(ShardLeaveRequest {
            addr: addr.to_string(),
        });
        match self.checked(&req)? {
            Response::Membership(r) => Ok(r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Fetch the live metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats(r) => Ok(*r),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(other.kind())),
        }
    }

    /// Set the socket read timeout (useful for probing liveness
    /// without hanging the caller).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Wire(WireError::Io(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn connect_timeout_is_bounded_on_black_holed_address() {
        // 203.0.113.0/24 (TEST-NET-3) is reserved for documentation:
        // nothing should route there, so a plain connect would sit in
        // SYN retry for the OS default (minutes). The bounded variant
        // must return — one way or the other — in ~the requested
        // timeout. (Some sandboxes reject or even intercept the route;
        // the portable property is the bound, not the error.)
        let t0 = Instant::now();
        let _ = Client::connect_timeout("203.0.113.1:9", Duration::from_millis(250));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "bounded connect took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn connect_timeout_fails_fast_on_closed_port() {
        // Bind an ephemeral port, note it, and close it again: nothing
        // listens there, so the bounded connect must fail (refused)
        // well inside the timeout rather than hanging.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let t0 = Instant::now();
        let result = Client::connect_timeout(("127.0.0.1", port), Duration::from_millis(250));
        assert!(result.is_err());
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "refused connect took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn connect_timeout_reports_unresolvable_addresses() {
        let result = Client::connect_timeout(
            "definitely-not-a-real-host.invalid:1",
            Duration::from_millis(100),
        );
        assert!(matches!(result, Err(ClientError::Wire(WireError::Io(_)))));
    }
}
