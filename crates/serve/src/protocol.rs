//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message on the wire is one **frame**: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON. JSON keeps
//! the protocol debuggable (`nc` + eyeballs) and rides on the same
//! vendored serde data model the rest of the workspace already
//! round-trips through; the length prefix makes framing trivial and
//! lets the receiver reject oversized frames *before* buffering them
//! (bounded memory, the same discipline as the admission queue).
//!
//! Malformed input of any kind — truncated frame, oversized length,
//! garbage bytes, JSON of the wrong shape — surfaces as a
//! [`WireError`], never a panic and never a hang: the length prefix
//! bounds every read, and decode errors are ordinary values.

use serde::{Deserialize, Serialize};

use fm_autotune::{Refinement, TunedMapping};
use fm_core::cost::CostReport;
use fm_core::dataflow::DataflowGraph;
use fm_core::machine::MachineConfig;
use fm_core::mapping::{Mapping, ResolvedMapping};
use fm_core::mutate::GraphEdit;
use fm_core::search::FigureOfMerit;
use fm_core::value::Value;

use crate::metrics::StatsReply;

/// Default cap on a single frame's payload. Large enough for a
/// several-thousand-node graph with candidates; small enough that a
/// hostile or buggy length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// A candidate mapping as sent over the wire.
///
/// (`fm_core::search::MappingCandidate` itself does not implement
/// serde; this is its wire twin, converted at the server boundary.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCandidate {
    /// Label reported back for the winner.
    pub label: String,
    /// The mapping to evaluate.
    pub mapping: Mapping,
}

/// `Tune`: search a candidate list for the best mapping of `graph` on
/// `machine` under `fom`, with optional budgets and annealing
/// refinement. Answered with [`Response::Tuned`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRequest {
    /// The elaborated dataflow graph to map.
    pub graph: DataflowGraph,
    /// The machine to map onto.
    pub machine: MachineConfig,
    /// The figure of merit to minimize.
    pub fom: FigureOfMerit,
    /// Candidate mappings to rank.
    pub candidates: Vec<WireCandidate>,
    /// Per-request deadline in milliseconds, measured from admission.
    /// Threaded into the tuner's budget; past it the server cancels the
    /// search and returns the best-so-far partial result.
    pub deadline_ms: Option<u64>,
    /// Evaluate at most this many candidates (deterministic prefix).
    pub max_candidates: Option<u64>,
    /// Early-stop after this many candidates without improvement.
    pub convergence_window: Option<u64>,
    /// Multi-chain annealing refinement of the winner.
    pub refinement: Option<Refinement>,
    /// Participate in the server's persistent tuning cache (replay hits,
    /// store misses). `false` forces a cold search.
    pub use_cache: bool,
}

/// `TuneShard`: evaluate one contiguous **sub-range** of a larger
/// candidate list on behalf of a fleet coordinator (see
/// [`crate::fleet`]). Unlike `Tune`, the reply is only accepted when
/// the *whole* sub-range was evaluated — a partially-evaluated range
/// would make the merged winner depend on where the shard gave up, and
/// the fleet's contract is a winner bit-identical to a single-machine
/// search. Answered with [`Response::TuneSharded`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardRequest {
    /// The elaborated dataflow graph to map.
    pub graph: DataflowGraph,
    /// The machine to map onto.
    pub machine: MachineConfig,
    /// The figure of merit to minimize.
    pub fom: FigureOfMerit,
    /// The sub-range's candidates (already sliced by the coordinator).
    pub candidates: Vec<WireCandidate>,
    /// Absolute index of `candidates[0]` in the coordinator's full
    /// list; reply indices are absolute so the merge can tie-break.
    pub start_index: u64,
    /// The coordinator's epoch for this tune. Echoed in the reply; a
    /// reply carrying any other epoch is stale and discarded unmerged.
    pub epoch: u64,
    /// Per-request deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Stream a checksummed [`TuneShardPart`] frame back every this
    /// many evaluated candidates, so the coordinator can merge a
    /// straggler's finished prefix incrementally instead of forfeiting
    /// it. `None` (or 0) keeps the classic single blocking reply.
    pub stream_every: Option<u64>,
}

/// The winning candidate of one shard's sub-range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardBest {
    /// Absolute candidate index (for deterministic `(score, index)`
    /// merge tie-breaking).
    pub index: u64,
    /// The winning candidate's label.
    pub label: String,
    /// Its score under the requested objective.
    pub score: f64,
    /// The resolved mapping.
    pub resolved: ResolvedMapping,
    /// Its cost report.
    pub report: CostReport,
}

/// The checksummed payload of a [`TuneShardReply`]. Everything the
/// merge consumes lives here, under the checksum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardBody {
    /// Echo of the request's `start_index`.
    pub start_index: u64,
    /// Candidates the request carried.
    pub count: u64,
    /// Candidates actually evaluated. The coordinator only merges
    /// replies with `evaluated == count`.
    pub evaluated: u64,
    /// Whether a deadline/disconnect aborted the shard's search.
    pub cancelled: bool,
    /// The sub-range's winner (`None` when nothing in it was legal —
    /// which is information too: the merge must not fall back just
    /// because one range is empty).
    pub best: Option<ShardBest>,
}

/// The answer to a [`TuneShardRequest`]: an epoch echo, a checksum
/// over the canonical serialization of the body, and the body itself.
///
/// The checksum makes byte corruption in transit *detectable* (a frame
/// that decodes to valid JSON with silently altered numbers would
/// otherwise merge a wrong winner); the epoch makes stale replies
/// *identifiable*. Neither defends against a shard that deliberately
/// computes a valid checksum over wrong content — the fleet's threat
/// model is corruption and staleness, not Byzantine shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardReply {
    /// Echo of the request epoch.
    pub epoch: u64,
    /// FNV-1a 64 over `epoch` (8 bytes, big-endian) followed by the
    /// canonical JSON serialization of `body`.
    pub checksum: u64,
    /// The checksummed payload.
    pub body: TuneShardBody,
}

/// FNV-1a 64-bit. Not cryptographic — but a single flipped byte always
/// changes it (each step `h = (h ^ b) * PRIME` is bijective in `h` for
/// a fixed byte, so differing prefixes never re-converge).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl TuneShardReply {
    /// The checksum a well-formed reply carries for `(epoch, body)`.
    pub fn checksum_of(epoch: u64, body: &TuneShardBody) -> u64 {
        let canon = serde_json::to_string(body).expect("shard body serializes");
        let mut bytes = Vec::with_capacity(8 + canon.len());
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        fnv1a64(&bytes)
    }

    /// Build a reply with the checksum sealed in.
    pub fn seal(epoch: u64, body: TuneShardBody) -> TuneShardReply {
        TuneShardReply {
            epoch,
            checksum: Self::checksum_of(epoch, &body),
            body,
        }
    }

    /// Validate a received reply against the epoch the coordinator
    /// sent. `Err` names the first flaw found.
    pub fn verify(&self, expected_epoch: u64) -> Result<(), ShardReplyFlaw> {
        if self.epoch != expected_epoch {
            return Err(ShardReplyFlaw::StaleEpoch {
                got: self.epoch,
                expected: expected_epoch,
            });
        }
        let want = Self::checksum_of(self.epoch, &self.body);
        if self.checksum != want {
            return Err(ShardReplyFlaw::BadChecksum {
                got: self.checksum,
                expected: want,
            });
        }
        if self.body.cancelled || self.body.evaluated != self.body.count {
            return Err(ShardReplyFlaw::Incomplete {
                evaluated: self.body.evaluated,
                count: self.body.count,
            });
        }
        Ok(())
    }
}

/// Why a shard reply was discarded instead of merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardReplyFlaw {
    /// The reply echoes an epoch the coordinator did not send for this
    /// tune: it answers some earlier request.
    StaleEpoch {
        /// Epoch the reply carried.
        got: u64,
        /// Epoch the coordinator expected.
        expected: u64,
    },
    /// The embedded checksum does not match the body: bytes were
    /// corrupted in transit (or the frame was tampered with).
    BadChecksum {
        /// Checksum the reply carried.
        got: u64,
        /// Checksum recomputed from the received body.
        expected: u64,
    },
    /// The shard did not evaluate its whole sub-range (deadline or
    /// cancellation); merging it would make the winner depend on where
    /// it stopped.
    Incomplete {
        /// Candidates the shard evaluated.
        evaluated: u64,
        /// Candidates the sub-range holds.
        count: u64,
    },
}

impl std::fmt::Display for ShardReplyFlaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardReplyFlaw::StaleEpoch { got, expected } => {
                write!(f, "stale epoch {got} (expected {expected})")
            }
            ShardReplyFlaw::BadChecksum { got, expected } => {
                write!(f, "checksum mismatch {got:#x} (recomputed {expected:#x})")
            }
            ShardReplyFlaw::Incomplete { evaluated, count } => {
                write!(f, "incomplete range: {evaluated} of {count} evaluated")
            }
        }
    }
}

/// The checksummed payload of a [`TuneShardPart`]: one finished chunk
/// of a streaming shard search. `start_index`/`count` delimit the
/// chunk; `best` is the first-minimum over *this chunk only* (the
/// coordinator folds chunks in ascending order with a strict `<`, so
/// the streamed merge reproduces the flat scan's first minimum
/// exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardPartBody {
    /// Absolute index of the chunk's first candidate.
    pub start_index: u64,
    /// Candidates this chunk covers. A part is only emitted once the
    /// whole chunk was evaluated — there are no partial parts; an
    /// interrupted chunk is simply never announced.
    pub count: u64,
    /// The chunk's winner (`None` when nothing in it was legal).
    pub best: Option<ShardBest>,
}

/// One streamed partial result: an epoch echo, a checksum over the
/// canonical serialization of the body, and the body. Same integrity
/// contract as [`TuneShardReply`] — corruption is detectable, stale
/// parts are identifiable — applied per chunk, so a straggler's
/// finished prefix survives even when the connection later dies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardPart {
    /// Echo of the request epoch.
    pub epoch: u64,
    /// FNV-1a 64 over `epoch` (8 bytes, big-endian) followed by the
    /// canonical JSON serialization of `body`.
    pub checksum: u64,
    /// The checksummed payload.
    pub body: TuneShardPartBody,
}

impl TuneShardPart {
    /// The checksum a well-formed part carries for `(epoch, body)`.
    pub fn checksum_of(epoch: u64, body: &TuneShardPartBody) -> u64 {
        let canon = serde_json::to_string(body).expect("shard part body serializes");
        let mut bytes = Vec::with_capacity(8 + canon.len());
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        fnv1a64(&bytes)
    }

    /// Build a part with the checksum sealed in.
    pub fn seal(epoch: u64, body: TuneShardPartBody) -> TuneShardPart {
        TuneShardPart {
            epoch,
            checksum: Self::checksum_of(epoch, &body),
            body,
        }
    }

    /// Validate a received part against the epoch the coordinator
    /// sent. `Err` names the first flaw found. (Parts are complete by
    /// construction, so [`ShardReplyFlaw::Incomplete`] never arises
    /// here.)
    pub fn verify(&self, expected_epoch: u64) -> Result<(), ShardReplyFlaw> {
        if self.epoch != expected_epoch {
            return Err(ShardReplyFlaw::StaleEpoch {
                got: self.epoch,
                expected: expected_epoch,
            });
        }
        let want = Self::checksum_of(self.epoch, &self.body);
        if self.checksum != want {
            return Err(ShardReplyFlaw::BadChecksum {
                got: self.checksum,
                expected: want,
            });
        }
        Ok(())
    }
}

/// `SessionOpen`: start a live-mutation session. The server takes
/// ownership of a (graph, machine, objective, candidate list) tuple,
/// cold-derives per-candidate warm state
/// ([`fm_autotune::WarmCache`]), and answers with
/// [`Response::SessionOpened`] carrying the session id and the initial
/// epoch. Subsequent [`SessionEditRequest`] batches mutate the held
/// graph in place; [`SessionTuneRequest`] re-tunes it warm, seeded
/// from the repaired state rather than evaluated from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOpenRequest {
    /// The graph the session will mutate.
    pub graph: DataflowGraph,
    /// The machine it targets (its `tile_bits` is live-resizable).
    pub machine: MachineConfig,
    /// The figure of merit every tune in this session minimizes.
    pub fom: FigureOfMerit,
    /// Candidate mappings ranked by every tune in this session.
    pub candidates: Vec<WireCandidate>,
    /// Evaluate at most this many candidates per tune (deterministic
    /// prefix), for the session's whole life.
    pub max_candidates: Option<u64>,
    /// Early-stop each tune after this many candidates without
    /// improvement.
    pub convergence_window: Option<u64>,
}

/// The answer to a [`SessionOpenRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOpenedReply {
    /// Handle for all later requests about this session.
    pub session_id: u64,
    /// The session's initial epoch. Every applied edit batch bumps it
    /// by one; edit requests must quote the current value.
    pub epoch: u64,
    /// Candidates the session holds warm state for.
    pub candidates: u64,
}

/// `SessionEdit`: apply one batch of structural edits to a session's
/// graph/machine, atomically — either every edit in the batch applies
/// (and the epoch bumps by one) or none do. The batch is epoch-stamped
/// and checksummed exactly like [`TuneShardPart`]: the epoch pins the
/// graph state the client thinks it is editing, the checksum makes
/// in-transit corruption of the edit list detectable before any edit
/// is applied. Answered with [`Response::SessionEdited`], or
/// [`Response::NoSuchSession`] when the id is unknown or evicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEditRequest {
    /// Which session to edit.
    pub session_id: u64,
    /// The epoch the client believes the session is at. A mismatch
    /// means concurrent edits or a lost reply: the batch is refused
    /// (kind `"session"`) and nothing is applied.
    pub epoch: u64,
    /// FNV-1a 64 over `epoch` (8 bytes, big-endian) followed by the
    /// canonical JSON serialization of `edits`.
    pub checksum: u64,
    /// The edits, applied in order.
    pub edits: Vec<GraphEdit>,
}

impl SessionEditRequest {
    /// The checksum a well-formed edit batch carries for
    /// `(epoch, edits)`.
    pub fn checksum_of(epoch: u64, edits: &[GraphEdit]) -> u64 {
        let canon = serde_json::to_string(edits).expect("graph edits serialize");
        let mut bytes = Vec::with_capacity(8 + canon.len());
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        fnv1a64(&bytes)
    }

    /// Build a batch with the checksum sealed in.
    pub fn seal(session_id: u64, epoch: u64, edits: Vec<GraphEdit>) -> SessionEditRequest {
        SessionEditRequest {
            session_id,
            epoch,
            checksum: Self::checksum_of(epoch, &edits),
            edits,
        }
    }

    /// Does the embedded checksum match the embedded `(epoch, edits)`?
    /// The server refuses the whole batch when it does not — a flipped
    /// byte in an edit list must never half-apply.
    pub fn verify(&self) -> Result<(), u64> {
        let want = Self::checksum_of(self.epoch, &self.edits);
        if self.checksum != want {
            return Err(want);
        }
        Ok(())
    }
}

/// The answer to a [`SessionEditRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEditedReply {
    /// Echo of the session id.
    pub session_id: u64,
    /// The epoch *after* the batch (request epoch + 1).
    pub epoch: u64,
    /// Edits applied (== the batch length; batches are atomic).
    pub applied: u64,
    /// Total dirty-cone size across the batch: nodes the incremental
    /// repairer actually touched, the session's unit of edit work.
    pub cone: u64,
}

/// `SessionTune`: re-tune a session's current graph, seeded from the
/// warm per-candidate state repaired across all edits so far.
/// Answered with [`Response::SessionTuned`], or
/// [`Response::NoSuchSession`] when the id is unknown or evicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTuneRequest {
    /// Which session to tune.
    pub session_id: u64,
    /// Per-request deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
}

/// The answer to a [`SessionTuneRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionTunedReply {
    /// Echo of the session id.
    pub session_id: u64,
    /// The epoch the tuned graph is at.
    pub epoch: u64,
    /// Whether the tune ran fully warm: no candidate fell back to a
    /// cold from-scratch rebuild during it.
    pub warm: bool,
    /// Candidates cold-rebuilt during this tune (0 when `warm`).
    pub rebuilds: u64,
    /// The winner and tuner counters, exactly as a cold `Tune` of the
    /// session's current graph would report them.
    pub reply: TuneReply,
}

/// `SessionClose`: retire a session and free its warm state.
/// Answered with [`Response::SessionClosed`], or
/// [`Response::NoSuchSession`] when the id is unknown or evicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCloseRequest {
    /// Which session to close.
    pub session_id: u64,
}

/// The answer to a [`SessionCloseRequest`]: the session's lifetime
/// counters, for clients that account their own edit streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionClosedReply {
    /// Echo of the session id.
    pub session_id: u64,
    /// The final epoch (== edit batches applied).
    pub epoch: u64,
    /// Individual edits applied over the session's life.
    pub edits_applied: u64,
    /// Tunes served over the session's life.
    pub tunes: u64,
}

/// Typed refusal for session requests naming an id the server does not
/// hold — never issued, already closed, or evicted by the idle-TTL
/// sweeper. Distinct from [`FailReply`] so clients can transparently
/// reopen instead of treating it as a generic failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoSuchSessionReply {
    /// The id the request named.
    pub session_id: u64,
}

/// `Evaluate`: legality-check and analytically cost one resolved
/// mapping. Answered with [`Response::Evaluated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateRequest {
    /// The graph the mapping is for.
    pub graph: DataflowGraph,
    /// The machine it runs on.
    pub machine: MachineConfig,
    /// The mapping to cost.
    pub mapping: ResolvedMapping,
    /// Per-request deadline in milliseconds (admission-relative).
    pub deadline_ms: Option<u64>,
}

/// `Simulate`: execute one resolved mapping on the cycle-driven grid
/// simulator and report predicted-vs-simulated slowdown. Answered with
/// [`Response::Simulated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateRequest {
    /// The graph to execute.
    pub graph: DataflowGraph,
    /// The machine to simulate.
    pub machine: MachineConfig,
    /// The mapping to execute.
    pub mapping: ResolvedMapping,
    /// Input tensors, one per graph input (empty for closed graphs).
    pub inputs: Vec<Vec<Value>>,
    /// Model link contention (wormhole occupancy).
    pub contention: bool,
    /// Per-request deadline in milliseconds (admission-relative).
    pub deadline_ms: Option<u64>,
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Mapping search (see [`TuneRequest`]).
    Tune(TuneRequest),
    /// Sub-range search on behalf of a fleet coordinator (see
    /// [`TuneShardRequest`]).
    TuneShard(TuneShardRequest),
    /// Analytic cost of one mapping (see [`EvaluateRequest`]).
    Evaluate(EvaluateRequest),
    /// Cycle-driven simulation of one mapping (see [`SimulateRequest`]).
    Simulate(SimulateRequest),
    /// Open a live-mutation session (see [`SessionOpenRequest`]).
    SessionOpen(SessionOpenRequest),
    /// Apply an edit batch to a session (see [`SessionEditRequest`]).
    SessionEdit(SessionEditRequest),
    /// Warm re-tune of a session's graph (see [`SessionTuneRequest`]).
    SessionTune(SessionTuneRequest),
    /// Retire a session (see [`SessionCloseRequest`]).
    SessionClose(SessionCloseRequest),
    /// Metrics snapshot; answered with [`Response::Stats`]. Never
    /// queued, never `Busy` — stats must be readable under saturation.
    Stats,
    /// Begin graceful drain-then-exit; answered with
    /// [`Response::ShuttingDown`].
    Shutdown,
}

impl Request {
    /// Wire-level name, as used in metrics and logs.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Tune(_) => "tune",
            Request::TuneShard(_) => "tune_shard",
            Request::Evaluate(_) => "evaluate",
            Request::Simulate(_) => "simulate",
            Request::SessionOpen(_) => "session_open",
            Request::SessionEdit(_) => "session_edit",
            Request::SessionTune(_) => "session_tune",
            Request::SessionClose(_) => "session_close",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// The answer to a [`TuneRequest`]: the winner (if any mapping was
/// legal) plus the tuner's counters, mirroring
/// [`fm_autotune::TuneReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReply {
    /// The winning mapping (label, resolved mapping, report, score), or
    /// `None` when even the default-mapper fallback was unavailable
    /// (empty graph).
    pub best: Option<TunedMapping>,
    /// Candidates offered.
    pub offered: u64,
    /// Candidates evaluated.
    pub evaluated: u64,
    /// Candidates pruned by budgets or cancellation.
    pub pruned: u64,
    /// Cache participation: `"disabled"`, `"miss"`, `"hit"`, `"stale"`.
    pub cache: String,
    /// Whether the winner is the default-mapper fallback.
    pub fell_back: bool,
    /// Whether the deadline/disconnect cancelled the search (the reply
    /// then covers the evaluated prefix).
    pub cancelled: bool,
    /// Server-side wall time of the tune call, in milliseconds.
    pub wall_ms: f64,
}

/// The answer to an [`EvaluateRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluateReply {
    /// Whether the mapping passed the static legality check.
    pub legal: bool,
    /// Total legality violations (0 when legal).
    pub violations: u64,
    /// The analytic cost report (`None` for illegal mappings — their
    /// cost is not defined).
    pub report: Option<CostReport>,
}

/// The answer to a [`SimulateRequest`]: the analytic prediction next to
/// what the cycle-driven simulator actually measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulateReply {
    /// The mapping's promised makespan (analytic model).
    pub cycles_scheduled: i64,
    /// Cycles the simulator actually took (≥ scheduled).
    pub cycles_actual: i64,
    /// `cycles_actual / cycles_scheduled` — 1.0 means the model's
    /// promise held exactly.
    pub slowdown: f64,
    /// Elements that executed later than scheduled.
    pub stalled_elements: u64,
    /// Total lateness across all elements, in cycles.
    pub total_stall_cycles: u64,
    /// Messages delivered over the NoC.
    pub messages_delivered: u64,
    /// Cycles messages spent blocked on busy links.
    pub link_wait_cycles: u64,
    /// Analytically predicted total energy (fJ).
    pub predicted_energy_fj: f64,
    /// Simulated total energy (fJ) — matches the prediction for legal
    /// mappings by the sim-agreement invariant.
    pub simulated_energy_fj: f64,
}

/// Why a request was refused or failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailReply {
    /// Machine-readable category: `"protocol"`, `"deadline"`,
    /// `"illegal"`, `"sim"`, `"session"`, or `"internal"`.
    pub kind: String,
    /// Human-readable detail.
    pub error: String,
}

/// Explicit backpressure: the admission queue is full. The client
/// should back off and retry; the server has *not* buffered the
/// request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusyReply {
    /// Queue depth at refusal (== capacity).
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_capacity: u64,
}

/// A server response frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Tune`].
    Tuned(TuneReply),
    /// Answer to [`Request::TuneShard`].
    TuneSharded(TuneShardReply),
    /// Streamed partial result of a [`Request::TuneShard`] with
    /// `stream_every` set: zero or more of these precede the terminal
    /// [`Response::TuneSharded`] on the same connection.
    TuneShardPart(TuneShardPart),
    /// Answer to [`Request::Evaluate`].
    Evaluated(EvaluateReply),
    /// Answer to [`Request::Simulate`].
    Simulated(SimulateReply),
    /// Answer to [`Request::SessionOpen`].
    SessionOpened(SessionOpenedReply),
    /// Answer to [`Request::SessionEdit`].
    SessionEdited(SessionEditedReply),
    /// Answer to [`Request::SessionTune`].
    SessionTuned(Box<SessionTunedReply>),
    /// Answer to [`Request::SessionClose`].
    SessionClosed(SessionClosedReply),
    /// A session request named an id this server does not hold (never
    /// issued, closed, or evicted by the idle-TTL sweeper). Typed so
    /// clients can transparently reopen.
    NoSuchSession(NoSuchSessionReply),
    /// Answer to [`Request::Stats`]. Boxed: the snapshot (per-endpoint
    /// histograms plus optional per-shard fleet counters) dwarfs the
    /// other variants.
    Stats(Box<StatsReply>),
    /// The admission queue is full; retry later.
    Busy(BusyReply),
    /// The server is draining: acknowledges [`Request::Shutdown`], and
    /// refuses work requests that arrive during the drain.
    ShuttingDown,
    /// The request was admitted but could not be served.
    Failed(FailReply),
}

impl Response {
    /// Wire-level name (for logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Tuned(_) => "tuned",
            Response::TuneSharded(_) => "tune-sharded",
            Response::TuneShardPart(_) => "tune-shard-part",
            Response::Evaluated(_) => "evaluated",
            Response::Simulated(_) => "simulated",
            Response::SessionOpened(_) => "session-opened",
            Response::SessionEdited(_) => "session-edited",
            Response::SessionTuned(_) => "session-tuned",
            Response::SessionClosed(_) => "session-closed",
            Response::NoSuchSession(_) => "no-such-session",
            Response::Stats(_) => "stats",
            Response::Busy(_) => "busy",
            Response::ShuttingDown => "shutting-down",
            Response::Failed(_) => "failed",
        }
    }
}

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// I/O failure mid-frame.
    Io(std::io::Error),
    /// EOF arrived inside a frame (`got` of `expected` payload bytes).
    Truncated {
        /// Bytes the length prefix promised.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The length prefix exceeds the configured maximum; the payload
    /// was *not* read.
    Oversized {
        /// Length the prefix claimed.
        len: usize,
        /// Maximum this endpoint accepts.
        max: usize,
    },
    /// The payload was not valid JSON of the expected shape.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Largest single allocation step while reading a frame payload.
/// Memory committed to a frame grows with bytes actually received (in
/// steps of this size), never with the length the prefix *claims* — a
/// peer that declares a large-but-legal length and then stalls or
/// disconnects holds at most one chunk beyond what it really sent.
pub const READ_CHUNK: usize = 64 << 10;

/// Read one frame's payload, enforcing `max`. Clean EOF before the
/// first header byte is [`WireError::Closed`]; EOF anywhere later is
/// [`WireError::Truncated`]. A length prefix over `max` is rejected
/// before any payload byte is read or buffered, and payload memory is
/// reserved incrementally ([`READ_CHUNK`]) as bytes arrive — never all
/// up front on the strength of the prefix alone.
pub fn read_frame(r: &mut impl std::io::Read, max: usize) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match r.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: 4,
                    got: have,
                })
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len.min(READ_CHUNK)];
    let mut got = 0;
    while got < len {
        if got == payload.len() {
            payload.resize(len.min(got + READ_CHUNK), 0);
        }
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(WireError::Truncated { expected: len, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(payload)
}

/// Serialize a request to frame-payload bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req)
        .expect("requests always serialize")
        .into_bytes()
}

/// Serialize a response to frame-payload bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("responses always serialize")
        .into_bytes()
}

/// Decode a request from frame-payload bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decode a response from frame-payload bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Write `req` as one frame.
pub fn write_request(w: &mut impl std::io::Write, req: &Request) -> std::io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Write `resp` as one frame.
pub fn write_response(w: &mut impl std::io::Write, resp: &Response) -> std::io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Read one request frame.
pub fn read_request(r: &mut impl std::io::Read, max: usize) -> Result<Request, WireError> {
    decode_request(&read_frame(r, max)?)
}

/// Read one response frame.
pub fn read_response(r: &mut impl std::io::Read, max: usize) -> Result<Response, WireError> {
    decode_response(&read_frame(r, max)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &5u32.to_be_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
        // Second read: clean EOF at a boundary.
        assert!(matches!(read_frame(&mut r, 1024), Err(WireError::Closed)));
    }

    #[test]
    fn oversized_frame_rejected_before_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 30).to_be_bytes());
        // No payload bytes at all — the cap must fire on the header.
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, 4096) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, 1 << 30);
                assert_eq!(max, 4096);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_rejected() {
        let mut r = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Truncated { expected: 4, .. })
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let mut r = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Truncated {
                expected: 100,
                got: 5
            })
        ));
    }

    #[test]
    fn garbage_payload_is_a_malformed_error() {
        assert!(matches!(
            decode_request(b"]]nonsense[["),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[0xFF, 0xFE, 0x00]),
            Err(WireError::Malformed(_))
        ));
        // Valid JSON, wrong shape.
        assert!(matches!(
            decode_response(b"{\"NoSuchVariant\": 3}"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn large_frame_reads_back_whole_across_chunk_boundaries() {
        // A payload larger than READ_CHUNK must survive the
        // incremental-allocation path byte-for-byte.
        let payload: Vec<u8> = (0..READ_CHUNK + READ_CHUNK / 2 + 7)
            .map(|i| (i % 251) as u8)
            .collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), payload);
    }

    #[test]
    fn lying_length_prefix_holds_one_chunk_not_the_claimed_size() {
        // Prefix claims 8 MiB (legal under the cap) but only 3 bytes
        // follow. The reader must fail with Truncated having grown its
        // buffer by at most one chunk — the `got` in the error proves
        // how little actually arrived.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(8u32 << 20).to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(WireError::Truncated { expected, got }) => {
                assert_eq!(expected, 8 << 20);
                assert_eq!(got, 3);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn shard_reply_seal_verifies_and_flaws_are_detected() {
        let body = TuneShardBody {
            start_index: 40,
            count: 20,
            evaluated: 20,
            cancelled: false,
            best: None,
        };
        let reply = TuneShardReply::seal(9, body.clone());
        assert!(reply.verify(9).is_ok());
        // Wrong epoch: stale.
        assert!(matches!(
            reply.verify(10),
            Err(ShardReplyFlaw::StaleEpoch {
                got: 9,
                expected: 10
            })
        ));
        // Altered body under the same checksum: corrupt.
        let mut tampered = reply.clone();
        tampered.body.start_index = 3;
        assert!(matches!(
            tampered.verify(9),
            Err(ShardReplyFlaw::BadChecksum { .. })
        ));
        // Incomplete range: refused even with a valid checksum.
        let partial = TuneShardReply::seal(
            9,
            TuneShardBody {
                evaluated: 19,
                ..body
            },
        );
        assert!(matches!(
            partial.verify(9),
            Err(ShardReplyFlaw::Incomplete {
                evaluated: 19,
                count: 20
            })
        ));
    }

    #[test]
    fn single_digit_flip_in_serialized_reply_fails_verification() {
        // The corruption the fault proxy injects: one JSON digit
        // flipped, frame and JSON still valid. Every such flip must be
        // caught — by the checksum if the body changed, or by the
        // checksum *comparison* if the stored checksum itself changed.
        let reply = TuneShardReply::seal(
            7,
            TuneShardBody {
                start_index: 10,
                count: 5,
                evaluated: 5,
                cancelled: false,
                best: None,
            },
        );
        let bytes = encode_response(&Response::TuneSharded(reply));
        let mut flipped_any = false;
        for i in 0..bytes.len() {
            if !bytes[i].is_ascii_digit() {
                continue;
            }
            let mut forged = bytes.clone();
            forged[i] = if forged[i] == b'9' {
                b'1'
            } else {
                forged[i] + 1
            };
            // Flips that break JSON shape are caught even earlier.
            if let Ok(Response::TuneSharded(r)) = decode_response(&forged) {
                assert!(r.verify(7).is_err(), "undetected flip at byte {i}");
                flipped_any = true;
            }
        }
        assert!(flipped_any, "at least one flip must decode and be caught");
    }

    #[test]
    fn shard_part_seal_verifies_and_flaws_are_detected() {
        let body = TuneShardPartBody {
            start_index: 16,
            count: 8,
            best: None,
        };
        let part = TuneShardPart::seal(3, body.clone());
        assert!(part.verify(3).is_ok());
        assert!(matches!(
            part.verify(4),
            Err(ShardReplyFlaw::StaleEpoch {
                got: 3,
                expected: 4
            })
        ));
        let mut tampered = part.clone();
        tampered.body.count = 9;
        assert!(matches!(
            tampered.verify(3),
            Err(ShardReplyFlaw::BadChecksum { .. })
        ));
        // Parts round-trip through the response enum.
        let bytes = encode_response(&Response::TuneShardPart(part.clone()));
        match decode_response(&bytes).unwrap() {
            Response::TuneShardPart(p) => assert_eq!(p, part),
            other => panic!("expected TuneShardPart, got {}", other.kind()),
        }
    }

    #[test]
    fn single_digit_flip_in_serialized_part_fails_verification() {
        let part = TuneShardPart::seal(
            11,
            TuneShardPartBody {
                start_index: 24,
                count: 8,
                best: None,
            },
        );
        let bytes = encode_response(&Response::TuneShardPart(part));
        let mut flipped_any = false;
        for i in 0..bytes.len() {
            if !bytes[i].is_ascii_digit() {
                continue;
            }
            let mut forged = bytes.clone();
            forged[i] = if forged[i] == b'9' {
                b'1'
            } else {
                forged[i] + 1
            };
            if let Ok(Response::TuneShardPart(p)) = decode_response(&forged) {
                assert!(p.verify(11).is_err(), "undetected flip at byte {i}");
                flipped_any = true;
            }
        }
        assert!(flipped_any, "at least one flip must decode and be caught");
    }

    #[test]
    fn session_edit_seal_verifies_and_corruption_is_detected() {
        let edits = vec![
            GraphEdit::RemoveNode { id: 4 },
            GraphEdit::ResizeTile { tile_bits: 2048 },
        ];
        let req = SessionEditRequest::seal(17, 3, edits.clone());
        assert_eq!(req.checksum, SessionEditRequest::checksum_of(3, &edits));
        assert!(req.verify().is_ok());
        // An altered edit list under the stale checksum: refused.
        let mut tampered = req.clone();
        tampered.edits[0] = GraphEdit::RemoveNode { id: 5 };
        assert!(tampered.verify().is_err());
        // A re-stamped epoch also invalidates the checksum: the seal
        // binds the batch to the graph state it was built against.
        let mut restamped = req.clone();
        restamped.epoch = 4;
        assert!(restamped.verify().is_err());
    }

    #[test]
    fn single_digit_flip_in_serialized_edit_batch_fails_verification() {
        let req = SessionEditRequest::seal(
            9,
            12,
            vec![
                GraphEdit::RetargetEdge {
                    node: 31,
                    slot: 0,
                    new_dep: 17,
                },
                GraphEdit::RemoveNode { id: 40 },
            ],
        );
        let bytes = encode_request(&Request::SessionEdit(req));
        let mut flipped_any = false;
        for i in 0..bytes.len() {
            if !bytes[i].is_ascii_digit() {
                continue;
            }
            let mut forged = bytes.clone();
            forged[i] = if forged[i] == b'9' {
                b'1'
            } else {
                forged[i] + 1
            };
            if let Ok(Request::SessionEdit(r)) = decode_request(&forged) {
                // A flip inside `session_id` leaves the sealed
                // (epoch, edits) intact — routing, not content.
                if r.session_id != 9 {
                    continue;
                }
                assert!(r.verify().is_err(), "undetected flip at byte {i}");
                flipped_any = true;
            }
        }
        assert!(flipped_any, "at least one flip must decode and be caught");
    }

    #[test]
    fn session_requests_and_replies_round_trip() {
        let open = Request::SessionOpen(SessionOpenRequest {
            graph: DataflowGraph::new("g", 32),
            machine: MachineConfig::n5(2, 2),
            fom: FigureOfMerit::Edp,
            candidates: vec![],
            max_candidates: Some(8),
            convergence_window: None,
        });
        assert_eq!(open.endpoint(), "session_open");
        match decode_request(&encode_request(&open)).unwrap() {
            Request::SessionOpen(r) => assert_eq!(r.max_candidates, Some(8)),
            other => panic!("expected SessionOpen, got {}", other.endpoint()),
        }

        let tune = Request::SessionTune(SessionTuneRequest {
            session_id: 5,
            deadline_ms: Some(250),
        });
        assert_eq!(tune.endpoint(), "session_tune");
        let close = Request::SessionClose(SessionCloseRequest { session_id: 5 });
        assert_eq!(close.endpoint(), "session_close");

        let missing = Response::NoSuchSession(NoSuchSessionReply { session_id: 99 });
        assert_eq!(missing.kind(), "no-such-session");
        match decode_response(&encode_response(&missing)).unwrap() {
            Response::NoSuchSession(r) => assert_eq!(r.session_id, 99),
            other => panic!("expected NoSuchSession, got {}", other.kind()),
        }

        let edited = Response::SessionEdited(SessionEditedReply {
            session_id: 5,
            epoch: 7,
            applied: 3,
            cone: 11,
        });
        assert_eq!(edited.kind(), "session-edited");
        match decode_response(&encode_response(&edited)).unwrap() {
            Response::SessionEdited(r) => {
                assert_eq!((r.epoch, r.applied, r.cone), (7, 3, 11));
            }
            other => panic!("expected SessionEdited, got {}", other.kind()),
        }
    }

    #[test]
    fn ping_round_trips_through_frames() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            read_request(&mut r, DEFAULT_MAX_FRAME).unwrap(),
            Request::Ping
        );
    }
}
