//! The wire protocol: length-prefixed frames, JSON or binary payload.
//!
//! Every message on the wire is one **frame**: a 4-byte big-endian
//! payload length followed by the payload. The payload comes in two
//! interchangeable encodings of the *same* serde value tree:
//!
//! * **JSON text** — the bring-up encoding; debuggable (`nc` +
//!   eyeballs) and what every client generation speaks.
//! * **Binary envelope** — a [`BINARY_MAGIC`] byte, a version byte, an
//!   8-byte correlation id, then a compact tag-prefixed encoding of
//!   the value tree (varint integers, raw IEEE-754 floats,
//!   length-prefixed strings). Negotiated with [`Request::Hello`] /
//!   [`Response::HelloAck`]; the correlation id lets many requests
//!   ride one connection concurrently and complete out of order.
//!
//! The magic byte is a UTF-8 continuation byte, so no JSON payload can
//! start with it: a receiver sniffs the first byte and accepts either
//! encoding on any frame, which is what keeps old JSON clients working
//! byte-for-byte against new servers.
//!
//! The length prefix makes framing trivial and lets the receiver
//! reject oversized frames *before* buffering them (bounded memory,
//! the same discipline as the admission queue). Malformed input of any
//! kind — truncated frame, oversized length, garbage bytes, a payload
//! of the wrong shape in either encoding — surfaces as a
//! [`WireError`], never a panic and never a hang: the length prefix
//! bounds every read, and decode errors are ordinary values.

use serde::{Deserialize, Serialize};

use fm_autotune::{Refinement, TunedMapping};
use fm_core::cost::CostReport;
use fm_core::dataflow::DataflowGraph;
use fm_core::machine::MachineConfig;
use fm_core::mapping::{Mapping, ResolvedMapping};
use fm_core::mutate::GraphEdit;
use fm_core::search::FigureOfMerit;
use fm_core::value::Value;

use crate::metrics::StatsReply;

/// Default cap on a single frame's payload. Large enough for a
/// several-thousand-node graph with candidates; small enough that a
/// hostile or buggy length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// A candidate mapping as sent over the wire.
///
/// (`fm_core::search::MappingCandidate` itself does not implement
/// serde; this is its wire twin, converted at the server boundary.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCandidate {
    /// Label reported back for the winner.
    pub label: String,
    /// The mapping to evaluate.
    pub mapping: Mapping,
}

/// `Tune`: search a candidate list for the best mapping of `graph` on
/// `machine` under `fom`, with optional budgets and annealing
/// refinement. Answered with [`Response::Tuned`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRequest {
    /// The elaborated dataflow graph to map.
    pub graph: DataflowGraph,
    /// The machine to map onto.
    pub machine: MachineConfig,
    /// The figure of merit to minimize.
    pub fom: FigureOfMerit,
    /// Candidate mappings to rank.
    pub candidates: Vec<WireCandidate>,
    /// Per-request deadline in milliseconds, measured from admission.
    /// Threaded into the tuner's budget; past it the server cancels the
    /// search and returns the best-so-far partial result.
    pub deadline_ms: Option<u64>,
    /// Evaluate at most this many candidates (deterministic prefix).
    pub max_candidates: Option<u64>,
    /// Early-stop after this many candidates without improvement.
    pub convergence_window: Option<u64>,
    /// Multi-chain annealing refinement of the winner.
    pub refinement: Option<Refinement>,
    /// Participate in the server's persistent tuning cache (replay hits,
    /// store misses). `false` forces a cold search.
    pub use_cache: bool,
    /// Cost backend to charge and rank under: `"analytic"` (the
    /// default, also used when absent), `"roofline"`, or `"spatial"`.
    /// An unknown name is refused with a typed `Failed` reply (kind
    /// `"cost-model"`) — never silently defaulted. Old servers ignore
    /// this field; old clients simply never send it.
    #[serde(default)]
    pub cost_model: Option<String>,
}

/// `TuneShard`: evaluate one contiguous **sub-range** of a larger
/// candidate list on behalf of a fleet coordinator (see
/// [`crate::fleet`]). Unlike `Tune`, the reply is only accepted when
/// the *whole* sub-range was evaluated — a partially-evaluated range
/// would make the merged winner depend on where the shard gave up, and
/// the fleet's contract is a winner bit-identical to a single-machine
/// search. Answered with [`Response::TuneSharded`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardRequest {
    /// The elaborated dataflow graph to map.
    pub graph: DataflowGraph,
    /// The machine to map onto.
    pub machine: MachineConfig,
    /// The figure of merit to minimize.
    pub fom: FigureOfMerit,
    /// The sub-range's candidates (already sliced by the coordinator).
    pub candidates: Vec<WireCandidate>,
    /// Absolute index of `candidates[0]` in the coordinator's full
    /// list; reply indices are absolute so the merge can tie-break.
    pub start_index: u64,
    /// The coordinator's epoch for this tune. Echoed in the reply; a
    /// reply carrying any other epoch is stale and discarded unmerged.
    pub epoch: u64,
    /// Per-request deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Stream a checksummed [`TuneShardPart`] frame back every this
    /// many evaluated candidates, so the coordinator can merge a
    /// straggler's finished prefix incrementally instead of forfeiting
    /// it. `None` (or 0) keeps the classic single blocking reply.
    pub stream_every: Option<u64>,
    /// Cost backend the coordinator's client asked for; shards must
    /// score under the same model or the merged winner would be
    /// meaningless. Unknown names are refused (kind `"cost-model"`).
    #[serde(default)]
    pub cost_model: Option<String>,
}

/// The winning candidate of one shard's sub-range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardBest {
    /// Absolute candidate index (for deterministic `(score, index)`
    /// merge tie-breaking).
    pub index: u64,
    /// The winning candidate's label.
    pub label: String,
    /// Its score under the requested objective.
    pub score: f64,
    /// The resolved mapping.
    pub resolved: ResolvedMapping,
    /// Its cost report.
    pub report: CostReport,
}

/// The checksummed payload of a [`TuneShardReply`]. Everything the
/// merge consumes lives here, under the checksum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardBody {
    /// Echo of the request's `start_index`.
    pub start_index: u64,
    /// Candidates the request carried.
    pub count: u64,
    /// Candidates actually evaluated. The coordinator only merges
    /// replies with `evaluated == count`.
    pub evaluated: u64,
    /// Whether a deadline/disconnect aborted the shard's search.
    pub cancelled: bool,
    /// The sub-range's winner (`None` when nothing in it was legal —
    /// which is information too: the merge must not fall back just
    /// because one range is empty).
    pub best: Option<ShardBest>,
}

/// The answer to a [`TuneShardRequest`]: an epoch echo, a checksum
/// over the canonical serialization of the body, and the body itself.
///
/// The checksum makes byte corruption in transit *detectable* (a frame
/// that decodes to valid JSON with silently altered numbers would
/// otherwise merge a wrong winner); the epoch makes stale replies
/// *identifiable*. Neither defends against a shard that deliberately
/// computes a valid checksum over wrong content — the fleet's threat
/// model is corruption and staleness, not Byzantine shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardReply {
    /// Echo of the request epoch.
    pub epoch: u64,
    /// FNV-1a 64 over `epoch` (8 bytes, big-endian) followed by the
    /// canonical JSON serialization of `body`.
    pub checksum: u64,
    /// The checksummed payload.
    pub body: TuneShardBody,
}

/// FNV-1a 64-bit. Not cryptographic — but a single flipped byte always
/// changes it (each step `h = (h ^ b) * PRIME` is bijective in `h` for
/// a fixed byte, so differing prefixes never re-converge). The one
/// shared workspace implementation lives next to the tuning-cache
/// fingerprints; this is a re-export so existing
/// `crate::protocol::fnv1a64` callers keep working.
pub use fm_autotune::fnv1a64;

impl TuneShardReply {
    /// The checksum a well-formed reply carries for `(epoch, body)`.
    pub fn checksum_of(epoch: u64, body: &TuneShardBody) -> u64 {
        let canon = serde_json::to_string(body).expect("shard body serializes");
        let mut bytes = Vec::with_capacity(8 + canon.len());
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        fnv1a64(&bytes)
    }

    /// Build a reply with the checksum sealed in.
    pub fn seal(epoch: u64, body: TuneShardBody) -> TuneShardReply {
        TuneShardReply {
            epoch,
            checksum: Self::checksum_of(epoch, &body),
            body,
        }
    }

    /// Validate a received reply against the epoch the coordinator
    /// sent. `Err` names the first flaw found.
    pub fn verify(&self, expected_epoch: u64) -> Result<(), ShardReplyFlaw> {
        if self.epoch != expected_epoch {
            return Err(ShardReplyFlaw::StaleEpoch {
                got: self.epoch,
                expected: expected_epoch,
            });
        }
        let want = Self::checksum_of(self.epoch, &self.body);
        if self.checksum != want {
            return Err(ShardReplyFlaw::BadChecksum {
                got: self.checksum,
                expected: want,
            });
        }
        if self.body.cancelled || self.body.evaluated != self.body.count {
            return Err(ShardReplyFlaw::Incomplete {
                evaluated: self.body.evaluated,
                count: self.body.count,
            });
        }
        Ok(())
    }
}

/// Why a shard reply was discarded instead of merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardReplyFlaw {
    /// The reply echoes an epoch the coordinator did not send for this
    /// tune: it answers some earlier request.
    StaleEpoch {
        /// Epoch the reply carried.
        got: u64,
        /// Epoch the coordinator expected.
        expected: u64,
    },
    /// The embedded checksum does not match the body: bytes were
    /// corrupted in transit (or the frame was tampered with).
    BadChecksum {
        /// Checksum the reply carried.
        got: u64,
        /// Checksum recomputed from the received body.
        expected: u64,
    },
    /// The shard did not evaluate its whole sub-range (deadline or
    /// cancellation); merging it would make the winner depend on where
    /// it stopped.
    Incomplete {
        /// Candidates the shard evaluated.
        evaluated: u64,
        /// Candidates the sub-range holds.
        count: u64,
    },
}

impl std::fmt::Display for ShardReplyFlaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardReplyFlaw::StaleEpoch { got, expected } => {
                write!(f, "stale epoch {got} (expected {expected})")
            }
            ShardReplyFlaw::BadChecksum { got, expected } => {
                write!(f, "checksum mismatch {got:#x} (recomputed {expected:#x})")
            }
            ShardReplyFlaw::Incomplete { evaluated, count } => {
                write!(f, "incomplete range: {evaluated} of {count} evaluated")
            }
        }
    }
}

/// The checksummed payload of a [`TuneShardPart`]: one finished chunk
/// of a streaming shard search. `start_index`/`count` delimit the
/// chunk; `best` is the first-minimum over *this chunk only* (the
/// coordinator folds chunks in ascending order with a strict `<`, so
/// the streamed merge reproduces the flat scan's first minimum
/// exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardPartBody {
    /// Absolute index of the chunk's first candidate.
    pub start_index: u64,
    /// Candidates this chunk covers. A part is only emitted once the
    /// whole chunk was evaluated — there are no partial parts; an
    /// interrupted chunk is simply never announced.
    pub count: u64,
    /// The chunk's winner (`None` when nothing in it was legal).
    pub best: Option<ShardBest>,
}

/// One streamed partial result: an epoch echo, a checksum over the
/// canonical serialization of the body, and the body. Same integrity
/// contract as [`TuneShardReply`] — corruption is detectable, stale
/// parts are identifiable — applied per chunk, so a straggler's
/// finished prefix survives even when the connection later dies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneShardPart {
    /// Echo of the request epoch.
    pub epoch: u64,
    /// FNV-1a 64 over `epoch` (8 bytes, big-endian) followed by the
    /// canonical JSON serialization of `body`.
    pub checksum: u64,
    /// The checksummed payload.
    pub body: TuneShardPartBody,
}

impl TuneShardPart {
    /// The checksum a well-formed part carries for `(epoch, body)`.
    pub fn checksum_of(epoch: u64, body: &TuneShardPartBody) -> u64 {
        let canon = serde_json::to_string(body).expect("shard part body serializes");
        let mut bytes = Vec::with_capacity(8 + canon.len());
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        fnv1a64(&bytes)
    }

    /// Build a part with the checksum sealed in.
    pub fn seal(epoch: u64, body: TuneShardPartBody) -> TuneShardPart {
        TuneShardPart {
            epoch,
            checksum: Self::checksum_of(epoch, &body),
            body,
        }
    }

    /// Validate a received part against the epoch the coordinator
    /// sent. `Err` names the first flaw found. (Parts are complete by
    /// construction, so [`ShardReplyFlaw::Incomplete`] never arises
    /// here.)
    pub fn verify(&self, expected_epoch: u64) -> Result<(), ShardReplyFlaw> {
        if self.epoch != expected_epoch {
            return Err(ShardReplyFlaw::StaleEpoch {
                got: self.epoch,
                expected: expected_epoch,
            });
        }
        let want = Self::checksum_of(self.epoch, &self.body);
        if self.checksum != want {
            return Err(ShardReplyFlaw::BadChecksum {
                got: self.checksum,
                expected: want,
            });
        }
        Ok(())
    }
}

/// `SessionOpen`: start a live-mutation session. The server takes
/// ownership of a (graph, machine, objective, candidate list) tuple,
/// cold-derives per-candidate warm state
/// ([`fm_autotune::WarmCache`]), and answers with
/// [`Response::SessionOpened`] carrying the session id and the initial
/// epoch. Subsequent [`SessionEditRequest`] batches mutate the held
/// graph in place; [`SessionTuneRequest`] re-tunes it warm, seeded
/// from the repaired state rather than evaluated from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOpenRequest {
    /// The graph the session will mutate.
    pub graph: DataflowGraph,
    /// The machine it targets (its `tile_bits` is live-resizable).
    pub machine: MachineConfig,
    /// The figure of merit every tune in this session minimizes.
    pub fom: FigureOfMerit,
    /// Candidate mappings ranked by every tune in this session.
    pub candidates: Vec<WireCandidate>,
    /// Evaluate at most this many candidates per tune (deterministic
    /// prefix), for the session's whole life.
    pub max_candidates: Option<u64>,
    /// Early-stop each tune after this many candidates without
    /// improvement.
    pub convergence_window: Option<u64>,
    /// Cost backend every tune in this session charges and ranks
    /// under, frozen at open like the candidate set. Unknown names are
    /// refused (kind `"cost-model"`).
    #[serde(default)]
    pub cost_model: Option<String>,
}

/// The answer to a [`SessionOpenRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOpenedReply {
    /// Handle for all later requests about this session.
    pub session_id: u64,
    /// The session's initial epoch. Every applied edit batch bumps it
    /// by one; edit requests must quote the current value.
    pub epoch: u64,
    /// Candidates the session holds warm state for.
    pub candidates: u64,
}

/// `SessionEdit`: apply one batch of structural edits to a session's
/// graph/machine, atomically — either every edit in the batch applies
/// (and the epoch bumps by one) or none do. The batch is epoch-stamped
/// and checksummed exactly like [`TuneShardPart`]: the epoch pins the
/// graph state the client thinks it is editing, the checksum makes
/// in-transit corruption of the edit list detectable before any edit
/// is applied. Answered with [`Response::SessionEdited`], or
/// [`Response::NoSuchSession`] when the id is unknown or evicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEditRequest {
    /// Which session to edit.
    pub session_id: u64,
    /// The epoch the client believes the session is at. A mismatch
    /// means concurrent edits or a lost reply: the batch is refused
    /// (kind `"session"`) and nothing is applied.
    pub epoch: u64,
    /// FNV-1a 64 over `epoch` (8 bytes, big-endian) followed by the
    /// canonical JSON serialization of `edits`.
    pub checksum: u64,
    /// The edits, applied in order.
    pub edits: Vec<GraphEdit>,
}

impl SessionEditRequest {
    /// The checksum a well-formed edit batch carries for
    /// `(epoch, edits)`.
    pub fn checksum_of(epoch: u64, edits: &[GraphEdit]) -> u64 {
        let canon = serde_json::to_string(edits).expect("graph edits serialize");
        let mut bytes = Vec::with_capacity(8 + canon.len());
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(canon.as_bytes());
        fnv1a64(&bytes)
    }

    /// Build a batch with the checksum sealed in.
    pub fn seal(session_id: u64, epoch: u64, edits: Vec<GraphEdit>) -> SessionEditRequest {
        SessionEditRequest {
            session_id,
            epoch,
            checksum: Self::checksum_of(epoch, &edits),
            edits,
        }
    }

    /// Does the embedded checksum match the embedded `(epoch, edits)`?
    /// The server refuses the whole batch when it does not — a flipped
    /// byte in an edit list must never half-apply.
    pub fn verify(&self) -> Result<(), u64> {
        let want = Self::checksum_of(self.epoch, &self.edits);
        if self.checksum != want {
            return Err(want);
        }
        Ok(())
    }
}

/// The answer to a [`SessionEditRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEditedReply {
    /// Echo of the session id.
    pub session_id: u64,
    /// The epoch *after* the batch (request epoch + 1).
    pub epoch: u64,
    /// Edits applied (== the batch length; batches are atomic).
    pub applied: u64,
    /// Total dirty-cone size across the batch: nodes the incremental
    /// repairer actually touched, the session's unit of edit work.
    pub cone: u64,
}

/// `SessionTune`: re-tune a session's current graph, seeded from the
/// warm per-candidate state repaired across all edits so far.
/// Answered with [`Response::SessionTuned`], or
/// [`Response::NoSuchSession`] when the id is unknown or evicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTuneRequest {
    /// Which session to tune.
    pub session_id: u64,
    /// Per-request deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Cost backend to tune under. Sessions bake the backend at open
    /// ([`SessionOpenRequest::cost_model`]): this field must be absent
    /// or name the same backend, anything else is refused (kind
    /// `"cost-model"`) — a mid-session model switch would invalidate
    /// every warm score.
    #[serde(default)]
    pub cost_model: Option<String>,
}

/// The answer to a [`SessionTuneRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionTunedReply {
    /// Echo of the session id.
    pub session_id: u64,
    /// The epoch the tuned graph is at.
    pub epoch: u64,
    /// Whether the tune ran fully warm: no candidate fell back to a
    /// cold from-scratch rebuild during it.
    pub warm: bool,
    /// Candidates cold-rebuilt during this tune (0 when `warm`).
    pub rebuilds: u64,
    /// The winner and tuner counters, exactly as a cold `Tune` of the
    /// session's current graph would report them.
    pub reply: TuneReply,
}

/// `SessionClose`: retire a session and free its warm state.
/// Answered with [`Response::SessionClosed`], or
/// [`Response::NoSuchSession`] when the id is unknown or evicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCloseRequest {
    /// Which session to close.
    pub session_id: u64,
}

/// The answer to a [`SessionCloseRequest`]: the session's lifetime
/// counters, for clients that account their own edit streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionClosedReply {
    /// Echo of the session id.
    pub session_id: u64,
    /// The final epoch (== edit batches applied).
    pub epoch: u64,
    /// Individual edits applied over the session's life.
    pub edits_applied: u64,
    /// Tunes served over the session's life.
    pub tunes: u64,
}

/// Typed refusal for session requests naming an id the server does not
/// hold — never issued, already closed, or evicted by the idle-TTL
/// sweeper. Distinct from [`FailReply`] so clients can transparently
/// reopen instead of treating it as a generic failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoSuchSessionReply {
    /// The id the request named.
    pub session_id: u64,
}

/// `Evaluate`: legality-check and analytically cost one resolved
/// mapping. Answered with [`Response::Evaluated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateRequest {
    /// The graph the mapping is for.
    pub graph: DataflowGraph,
    /// The machine it runs on.
    pub machine: MachineConfig,
    /// The mapping to cost.
    pub mapping: ResolvedMapping,
    /// Per-request deadline in milliseconds (admission-relative).
    pub deadline_ms: Option<u64>,
}

/// `Simulate`: execute one resolved mapping on the cycle-driven grid
/// simulator and report predicted-vs-simulated slowdown. Answered with
/// [`Response::Simulated`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateRequest {
    /// The graph to execute.
    pub graph: DataflowGraph,
    /// The machine to simulate.
    pub machine: MachineConfig,
    /// The mapping to execute.
    pub mapping: ResolvedMapping,
    /// Input tensors, one per graph input (empty for closed graphs).
    pub inputs: Vec<Vec<Value>>,
    /// Model link contention (wormhole occupancy).
    pub contention: bool,
    /// Per-request deadline in milliseconds (admission-relative).
    pub deadline_ms: Option<u64>,
}

/// `Hello`: protocol negotiation, sent as the **first** frame on a
/// connection by clients that speak the binary protocol. Always
/// JSON-encoded (the one encoding every server generation decodes), so
/// detection is self-contained: a server that predates negotiation
/// fails to decode the unknown variant, answers `Failed(protocol)`,
/// and closes — the client then reconnects and stays JSON. A server
/// that understands it answers [`Response::HelloAck`] and switches the
/// connection to binary pipelined framing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloRequest {
    /// Highest binary protocol version the client speaks.
    pub max_version: u8,
    /// Whether the client wants pipelined (correlation-id) dispatch.
    pub pipeline: bool,
}

/// The answer to a [`HelloRequest`]: the negotiated settings. Every
/// frame after this reply (in both directions) uses the binary
/// envelope when `version > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloAckReply {
    /// Binary protocol version the server selected (the minimum of the
    /// two sides' maxima; never above [`PROTOCOL_BINARY_VERSION`]).
    pub version: u8,
    /// Whether pipelined dispatch is active for this connection.
    pub pipeline: bool,
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Protocol negotiation (see [`HelloRequest`]). First frame only.
    Hello(HelloRequest),
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Mapping search (see [`TuneRequest`]).
    Tune(TuneRequest),
    /// Sub-range search on behalf of a fleet coordinator (see
    /// [`TuneShardRequest`]).
    TuneShard(TuneShardRequest),
    /// Analytic cost of one mapping (see [`EvaluateRequest`]).
    Evaluate(EvaluateRequest),
    /// Cycle-driven simulation of one mapping (see [`SimulateRequest`]).
    Simulate(SimulateRequest),
    /// Open a live-mutation session (see [`SessionOpenRequest`]).
    SessionOpen(SessionOpenRequest),
    /// Apply an edit batch to a session (see [`SessionEditRequest`]).
    SessionEdit(SessionEditRequest),
    /// Warm re-tune of a session's graph (see [`SessionTuneRequest`]).
    SessionTune(SessionTuneRequest),
    /// Retire a session (see [`SessionCloseRequest`]).
    SessionClose(SessionCloseRequest),
    /// Admit a shard into the running fleet roster (see
    /// [`ShardJoinRequest`]); answered with [`Response::Membership`].
    /// Never queued — membership changes must land under saturation.
    ShardJoin(ShardJoinRequest),
    /// Retire a shard from the running fleet roster (see
    /// [`ShardLeaveRequest`]); answered with [`Response::Membership`].
    /// Never queued.
    ShardLeave(ShardLeaveRequest),
    /// Metrics snapshot; answered with [`Response::Stats`]. Never
    /// queued, never `Busy` — stats must be readable under saturation.
    Stats,
    /// Begin graceful drain-then-exit; answered with
    /// [`Response::ShuttingDown`].
    Shutdown,
}

impl Request {
    /// Wire-level name, as used in metrics and logs.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Hello(_) => "hello",
            Request::Ping => "ping",
            Request::Tune(_) => "tune",
            Request::TuneShard(_) => "tune_shard",
            Request::Evaluate(_) => "evaluate",
            Request::Simulate(_) => "simulate",
            Request::SessionOpen(_) => "session_open",
            Request::SessionEdit(_) => "session_edit",
            Request::SessionTune(_) => "session_tune",
            Request::SessionClose(_) => "session_close",
            Request::ShardJoin(_) => "shard_join",
            Request::ShardLeave(_) => "shard_leave",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// The answer to a [`TuneRequest`]: the winner (if any mapping was
/// legal) plus the tuner's counters, mirroring
/// [`fm_autotune::TuneReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReply {
    /// The winning mapping (label, resolved mapping, report, score), or
    /// `None` when even the default-mapper fallback was unavailable
    /// (empty graph).
    pub best: Option<TunedMapping>,
    /// Candidates offered.
    pub offered: u64,
    /// Candidates evaluated.
    pub evaluated: u64,
    /// Candidates pruned by budgets or cancellation.
    pub pruned: u64,
    /// Cache participation: `"disabled"`, `"miss"`, `"hit"`, `"stale"`.
    pub cache: String,
    /// Whether the winner is the default-mapper fallback.
    pub fell_back: bool,
    /// Whether the deadline/disconnect cancelled the search (the reply
    /// then covers the evaluated prefix).
    pub cancelled: bool,
    /// Server-side wall time of the tune call, in milliseconds.
    pub wall_ms: f64,
}

/// The answer to an [`EvaluateRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluateReply {
    /// Whether the mapping passed the static legality check.
    pub legal: bool,
    /// Total legality violations (0 when legal).
    pub violations: u64,
    /// The analytic cost report (`None` for illegal mappings — their
    /// cost is not defined).
    pub report: Option<CostReport>,
}

/// The answer to a [`SimulateRequest`]: the analytic prediction next to
/// what the cycle-driven simulator actually measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulateReply {
    /// The mapping's promised makespan (analytic model).
    pub cycles_scheduled: i64,
    /// Cycles the simulator actually took (≥ scheduled).
    pub cycles_actual: i64,
    /// `cycles_actual / cycles_scheduled` — 1.0 means the model's
    /// promise held exactly.
    pub slowdown: f64,
    /// Elements that executed later than scheduled.
    pub stalled_elements: u64,
    /// Total lateness across all elements, in cycles.
    pub total_stall_cycles: u64,
    /// Messages delivered over the NoC.
    pub messages_delivered: u64,
    /// Cycles messages spent blocked on busy links.
    pub link_wait_cycles: u64,
    /// Analytically predicted total energy (fJ).
    pub predicted_energy_fj: f64,
    /// Simulated total energy (fJ) — matches the prediction for legal
    /// mappings by the sim-agreement invariant.
    pub simulated_energy_fj: f64,
}

/// Why a request was refused or failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailReply {
    /// Machine-readable category: `"protocol"`, `"deadline"`,
    /// `"illegal"`, `"sim"`, `"session"`, `"cost-model"` (unknown or
    /// mismatched `cost_model` name), or `"internal"`.
    pub kind: String,
    /// Human-readable detail.
    pub error: String,
}

/// Explicit backpressure: the admission queue is full. The client
/// should back off and retry; the server has *not* buffered the
/// request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusyReply {
    /// Queue depth at refusal (== capacity).
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_capacity: u64,
}

/// `ShardJoin`: admit `addr` into the coordinator's live fleet roster.
/// Idempotent — joining a live member changes nothing. A returning
/// member revives its learned throughput history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardJoinRequest {
    /// The shard's address (`host:port`), as the coordinator should
    /// dial it.
    pub addr: String,
}

/// `ShardLeave`: retire `addr` from the coordinator's live fleet
/// roster. Idempotent. In-flight sub-ranges owned by the departing
/// shard are re-dispatched from their covered watermark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLeaveRequest {
    /// The shard's address, as configured.
    pub addr: String,
}

/// The answer to [`Request::ShardJoin`] / [`Request::ShardLeave`]: the
/// roster after the change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipReply {
    /// Membership epoch after the request (bumped only when `changed`).
    pub epoch: u64,
    /// Live member addresses, in roster order.
    pub members: Vec<String>,
    /// Whether the request actually changed the roster (idempotent
    /// repeats answer `false`).
    pub changed: bool,
}

/// A server response frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Hello`]: negotiation accepted.
    HelloAck(HelloAckReply),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Tune`].
    Tuned(TuneReply),
    /// Answer to [`Request::TuneShard`].
    TuneSharded(TuneShardReply),
    /// Streamed partial result of a [`Request::TuneShard`] with
    /// `stream_every` set: zero or more of these precede the terminal
    /// [`Response::TuneSharded`] on the same connection.
    TuneShardPart(TuneShardPart),
    /// Answer to [`Request::Evaluate`].
    Evaluated(EvaluateReply),
    /// Answer to [`Request::Simulate`].
    Simulated(SimulateReply),
    /// Answer to [`Request::SessionOpen`].
    SessionOpened(SessionOpenedReply),
    /// Answer to [`Request::SessionEdit`].
    SessionEdited(SessionEditedReply),
    /// Answer to [`Request::SessionTune`].
    SessionTuned(Box<SessionTunedReply>),
    /// Answer to [`Request::SessionClose`].
    SessionClosed(SessionClosedReply),
    /// A session request named an id this server does not hold (never
    /// issued, closed, or evicted by the idle-TTL sweeper). Typed so
    /// clients can transparently reopen.
    NoSuchSession(NoSuchSessionReply),
    /// Answer to [`Request::ShardJoin`] and [`Request::ShardLeave`].
    Membership(MembershipReply),
    /// Answer to [`Request::Stats`]. Boxed: the snapshot (per-endpoint
    /// histograms plus optional per-shard fleet counters) dwarfs the
    /// other variants.
    Stats(Box<StatsReply>),
    /// The admission queue is full; retry later.
    Busy(BusyReply),
    /// The server is draining: acknowledges [`Request::Shutdown`], and
    /// refuses work requests that arrive during the drain.
    ShuttingDown,
    /// The request was admitted but could not be served.
    Failed(FailReply),
}

impl Response {
    /// Wire-level name (for logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Response::HelloAck(_) => "hello-ack",
            Response::Pong => "pong",
            Response::Tuned(_) => "tuned",
            Response::TuneSharded(_) => "tune-sharded",
            Response::TuneShardPart(_) => "tune-shard-part",
            Response::Evaluated(_) => "evaluated",
            Response::Simulated(_) => "simulated",
            Response::SessionOpened(_) => "session-opened",
            Response::SessionEdited(_) => "session-edited",
            Response::SessionTuned(_) => "session-tuned",
            Response::SessionClosed(_) => "session-closed",
            Response::NoSuchSession(_) => "no-such-session",
            Response::Membership(_) => "membership",
            Response::Stats(_) => "stats",
            Response::Busy(_) => "busy",
            Response::ShuttingDown => "shutting-down",
            Response::Failed(_) => "failed",
        }
    }
}

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// I/O failure mid-frame.
    Io(std::io::Error),
    /// EOF arrived inside a frame (`got` of `expected` payload bytes).
    Truncated {
        /// Bytes the length prefix promised.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The length prefix exceeds the configured maximum; the payload
    /// was *not* read.
    Oversized {
        /// Length the prefix claimed.
        len: usize,
        /// Maximum this endpoint accepts.
        max: usize,
    },
    /// The payload was not valid JSON of the expected shape.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    queue_frame(w, payload)?;
    w.flush()
}

/// Write one frame without flushing. The pipelined writer stacks
/// several frames into one `BufWriter` and flushes once — one syscall
/// for a whole burst of replies instead of one per frame.
pub fn queue_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Largest single allocation step while reading a frame payload.
/// Memory committed to a frame grows with bytes actually received (in
/// steps of this size), never with the length the prefix *claims* — a
/// peer that declares a large-but-legal length and then stalls or
/// disconnects holds at most one chunk beyond what it really sent.
pub const READ_CHUNK: usize = 64 << 10;

/// Read one frame's payload, enforcing `max`. Clean EOF before the
/// first header byte is [`WireError::Closed`]; EOF anywhere later is
/// [`WireError::Truncated`]. A length prefix over `max` is rejected
/// before any payload byte is read or buffered, and payload memory is
/// reserved incrementally ([`READ_CHUNK`]) as bytes arrive — never all
/// up front on the strength of the prefix alone.
pub fn read_frame(r: &mut impl std::io::Read, max: usize) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match r.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: 4,
                    got: have,
                })
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len.min(READ_CHUNK)];
    let mut got = 0;
    while got < len {
        if got == payload.len() {
            payload.resize(len.min(got + READ_CHUNK), 0);
        }
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(WireError::Truncated { expected: len, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(payload)
}

/// Serialize a request to frame-payload bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req)
        .expect("requests always serialize")
        .into_bytes()
}

/// Serialize a response to frame-payload bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("responses always serialize")
        .into_bytes()
}

/// Decode a request from frame-payload bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decode a response from frame-payload bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Write `req` as one frame.
pub fn write_request(w: &mut impl std::io::Write, req: &Request) -> std::io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Write `resp` as one frame.
pub fn write_response(w: &mut impl std::io::Write, resp: &Response) -> std::io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Read one request frame.
pub fn read_request(r: &mut impl std::io::Read, max: usize) -> Result<Request, WireError> {
    decode_request(&read_frame(r, max)?)
}

/// Read one response frame.
pub fn read_response(r: &mut impl std::io::Read, max: usize) -> Result<Response, WireError> {
    decode_response(&read_frame(r, max)?)
}

// ---- binary framing -------------------------------------------------
//
// The compact encoding serializes the same `serde::Json` value tree
// the JSON text encoding renders, so *every* request and response
// variant — present and future — is covered automatically, and the
// two encodings are interconvertible losslessly (same data model, two
// surfaces). A binary payload is an **envelope**:
//
//   byte 0      BINARY_MAGIC (0xB1)
//   byte 1      binary protocol version
//   bytes 2..10 correlation id, big-endian u64
//   bytes 10..  the value, tag-prefixed:
//
//   0x00 null       0x01 false        0x02 true
//   0x03 i64        zigzag LEB128 varint
//   0x04 u64        LEB128 varint
//   0x05 f64        8 bytes, little-endian IEEE-754 bits
//   0x06 string     varint byte length + UTF-8 bytes
//   0x07 array      varint count + elements
//   0x08 object     varint count + (string key, value) pairs
//
// `0xB1` is a UTF-8 continuation byte: no valid JSON text can start
// with it, so one-byte sniffing distinguishes the encodings per frame
// and both can share a connection.

/// First byte of every binary envelope. Chosen from the UTF-8
/// continuation range so it can never collide with the first byte of
/// a JSON text payload.
pub const BINARY_MAGIC: u8 = 0xB1;

/// The binary protocol version this build speaks (and the highest a
/// [`HelloRequest`] from this build advertises).
pub const PROTOCOL_BINARY_VERSION: u8 = 1;

/// Envelope header length: magic, version, correlation id.
pub const BINARY_HEADER: usize = 10;

/// Deepest value nesting the binary decoder accepts. Generous for
/// real traffic (expression trees nest tens deep, not hundreds) while
/// keeping a hostile `[[[[…` payload from exhausting the stack.
pub const BINARY_MAX_DEPTH: usize = 512;

/// Does this frame payload carry the binary envelope (vs JSON text)?
pub fn is_binary(payload: &[u8]) -> bool {
    payload.first() == Some(&BINARY_MAGIC)
}

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

fn put_value(v: &serde::Json, out: &mut Vec<u8>) {
    use serde::Json;
    match v {
        Json::Null => out.push(0x00),
        Json::Bool(false) => out.push(0x01),
        Json::Bool(true) => out.push(0x02),
        Json::I64(n) => {
            out.push(0x03);
            put_varint(zigzag(*n), out);
        }
        Json::U64(n) => {
            out.push(0x04);
            put_varint(*n, out);
        }
        Json::F64(f) => {
            out.push(0x05);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Json::Str(s) => {
            out.push(0x06);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            out.push(0x07);
            put_varint(items.len() as u64, out);
            for item in items {
                put_value(item, out);
            }
        }
        Json::Obj(fields) => {
            out.push(0x08);
            put_varint(fields.len() as u64, out);
            for (k, val) in fields {
                put_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                put_value(val, out);
            }
        }
    }
}

/// Bounds-checked reader over a binary payload. Every accessor
/// surfaces out-of-bounds input as [`WireError::Malformed`] — the
/// binary decoder never panics and never reads past the frame.
struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| WireError::Malformed("binary payload ends mid-value".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WireError::Malformed("binary payload ends mid-value".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(WireError::Malformed("varint overflows u64".into()));
            }
            n |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
        }
        Err(WireError::Malformed("varint longer than 10 bytes".into()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.varint()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| WireError::Malformed(format!("binary string not UTF-8: {e}")))
    }

    fn value(&mut self, depth: usize) -> Result<serde::Json, WireError> {
        use serde::Json;
        if depth > BINARY_MAX_DEPTH {
            return Err(WireError::Malformed(format!(
                "binary value nests deeper than {BINARY_MAX_DEPTH}"
            )));
        }
        match self.byte()? {
            0x00 => Ok(Json::Null),
            0x01 => Ok(Json::Bool(false)),
            0x02 => Ok(Json::Bool(true)),
            0x03 => Ok(Json::I64(unzigzag(self.varint()?))),
            0x04 => Ok(Json::U64(self.varint()?)),
            0x05 => {
                let raw: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
                Ok(Json::F64(f64::from_bits(u64::from_le_bytes(raw))))
            }
            0x06 => Ok(Json::Str(self.string()?)),
            0x07 => {
                let count = self.varint()? as usize;
                // Each element costs ≥ 1 byte: cap the preallocation by
                // what the frame can actually still hold, so a lying
                // count cannot balloon memory before the decode fails.
                let mut items = Vec::with_capacity(count.min(self.remaining()));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Json::Arr(items))
            }
            0x08 => {
                let count = self.varint()? as usize;
                let mut fields = Vec::with_capacity(count.min(self.remaining() / 2));
                for _ in 0..count {
                    let key = self.string()?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                }
                Ok(Json::Obj(fields))
            }
            tag => Err(WireError::Malformed(format!(
                "unknown binary value tag {tag:#04x}"
            ))),
        }
    }
}

fn encode_envelope(corr: u64, v: &serde::Json) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(BINARY_MAGIC);
    out.push(PROTOCOL_BINARY_VERSION);
    out.extend_from_slice(&corr.to_be_bytes());
    put_value(v, &mut out);
    out
}

/// Decode a binary envelope to its correlation id and value tree.
/// Rejects a wrong magic, an unknown version, truncation anywhere,
/// and trailing garbage after the value — all as typed
/// [`WireError::Malformed`] (never a panic, never over-allocation).
pub fn decode_binary_envelope(payload: &[u8]) -> Result<(u64, serde::Json), WireError> {
    if payload.len() < BINARY_HEADER {
        return Err(WireError::Malformed(format!(
            "binary envelope needs {BINARY_HEADER} header bytes, got {}",
            payload.len()
        )));
    }
    if payload[0] != BINARY_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad binary magic {:#04x}",
            payload[0]
        )));
    }
    if payload[1] == 0 || payload[1] > PROTOCOL_BINARY_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported binary protocol version {}",
            payload[1]
        )));
    }
    let corr = u64::from_be_bytes(payload[2..BINARY_HEADER].try_into().expect("8 bytes"));
    let mut r = BinReader {
        bytes: payload,
        pos: BINARY_HEADER,
    };
    let value = r.value(0)?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after binary value",
            r.remaining()
        )));
    }
    Ok((corr, value))
}

/// Serialize a request to a binary envelope payload.
pub fn encode_request_binary(corr: u64, req: &Request) -> Vec<u8> {
    encode_envelope(corr, &req.to_json())
}

/// Serialize a response to a binary envelope payload.
pub fn encode_response_binary(corr: u64, resp: &Response) -> Vec<u8> {
    encode_envelope(corr, &resp.to_json())
}

/// Decode a request from either encoding, sniffed by the first byte.
/// Returns `(correlation id, request, was_binary)`; JSON payloads get
/// correlation id 0 (the blocking protocol has exactly one in flight).
pub fn decode_request_any(payload: &[u8]) -> Result<(u64, Request, bool), WireError> {
    if is_binary(payload) {
        let (corr, value) = decode_binary_envelope(payload)?;
        let req = Request::from_json(&value).map_err(|e| WireError::Malformed(e.to_string()))?;
        Ok((corr, req, true))
    } else {
        Ok((0, decode_request(payload)?, false))
    }
}

/// Decode a response from either encoding, sniffed by the first byte.
/// Returns `(correlation id, response, was_binary)`.
pub fn decode_response_any(payload: &[u8]) -> Result<(u64, Response, bool), WireError> {
    if is_binary(payload) {
        let (corr, value) = decode_binary_envelope(payload)?;
        let resp = Response::from_json(&value).map_err(|e| WireError::Malformed(e.to_string()))?;
        Ok((corr, resp, true))
    } else {
        Ok((0, decode_response(payload)?, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &5u32.to_be_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
        // Second read: clean EOF at a boundary.
        assert!(matches!(read_frame(&mut r, 1024), Err(WireError::Closed)));
    }

    #[test]
    fn oversized_frame_rejected_before_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u32 << 30).to_be_bytes());
        // No payload bytes at all — the cap must fire on the header.
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, 4096) {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, 1 << 30);
                assert_eq!(max, 4096);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_rejected() {
        let mut r = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Truncated { expected: 4, .. })
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        let mut r = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(WireError::Truncated {
                expected: 100,
                got: 5
            })
        ));
    }

    #[test]
    fn garbage_payload_is_a_malformed_error() {
        assert!(matches!(
            decode_request(b"]]nonsense[["),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[0xFF, 0xFE, 0x00]),
            Err(WireError::Malformed(_))
        ));
        // Valid JSON, wrong shape.
        assert!(matches!(
            decode_response(b"{\"NoSuchVariant\": 3}"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn large_frame_reads_back_whole_across_chunk_boundaries() {
        // A payload larger than READ_CHUNK must survive the
        // incremental-allocation path byte-for-byte.
        let payload: Vec<u8> = (0..READ_CHUNK + READ_CHUNK / 2 + 7)
            .map(|i| (i % 251) as u8)
            .collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), payload);
    }

    #[test]
    fn lying_length_prefix_holds_one_chunk_not_the_claimed_size() {
        // Prefix claims 8 MiB (legal under the cap) but only 3 bytes
        // follow. The reader must fail with Truncated having grown its
        // buffer by at most one chunk — the `got` in the error proves
        // how little actually arrived.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(8u32 << 20).to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(WireError::Truncated { expected, got }) => {
                assert_eq!(expected, 8 << 20);
                assert_eq!(got, 3);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn shard_reply_seal_verifies_and_flaws_are_detected() {
        let body = TuneShardBody {
            start_index: 40,
            count: 20,
            evaluated: 20,
            cancelled: false,
            best: None,
        };
        let reply = TuneShardReply::seal(9, body.clone());
        assert!(reply.verify(9).is_ok());
        // Wrong epoch: stale.
        assert!(matches!(
            reply.verify(10),
            Err(ShardReplyFlaw::StaleEpoch {
                got: 9,
                expected: 10
            })
        ));
        // Altered body under the same checksum: corrupt.
        let mut tampered = reply.clone();
        tampered.body.start_index = 3;
        assert!(matches!(
            tampered.verify(9),
            Err(ShardReplyFlaw::BadChecksum { .. })
        ));
        // Incomplete range: refused even with a valid checksum.
        let partial = TuneShardReply::seal(
            9,
            TuneShardBody {
                evaluated: 19,
                ..body
            },
        );
        assert!(matches!(
            partial.verify(9),
            Err(ShardReplyFlaw::Incomplete {
                evaluated: 19,
                count: 20
            })
        ));
    }

    #[test]
    fn single_digit_flip_in_serialized_reply_fails_verification() {
        // The corruption the fault proxy injects: one JSON digit
        // flipped, frame and JSON still valid. Every such flip must be
        // caught — by the checksum if the body changed, or by the
        // checksum *comparison* if the stored checksum itself changed.
        let reply = TuneShardReply::seal(
            7,
            TuneShardBody {
                start_index: 10,
                count: 5,
                evaluated: 5,
                cancelled: false,
                best: None,
            },
        );
        let bytes = encode_response(&Response::TuneSharded(reply));
        let mut flipped_any = false;
        for i in 0..bytes.len() {
            if !bytes[i].is_ascii_digit() {
                continue;
            }
            let mut forged = bytes.clone();
            forged[i] = if forged[i] == b'9' {
                b'1'
            } else {
                forged[i] + 1
            };
            // Flips that break JSON shape are caught even earlier.
            if let Ok(Response::TuneSharded(r)) = decode_response(&forged) {
                assert!(r.verify(7).is_err(), "undetected flip at byte {i}");
                flipped_any = true;
            }
        }
        assert!(flipped_any, "at least one flip must decode and be caught");
    }

    #[test]
    fn shard_part_seal_verifies_and_flaws_are_detected() {
        let body = TuneShardPartBody {
            start_index: 16,
            count: 8,
            best: None,
        };
        let part = TuneShardPart::seal(3, body.clone());
        assert!(part.verify(3).is_ok());
        assert!(matches!(
            part.verify(4),
            Err(ShardReplyFlaw::StaleEpoch {
                got: 3,
                expected: 4
            })
        ));
        let mut tampered = part.clone();
        tampered.body.count = 9;
        assert!(matches!(
            tampered.verify(3),
            Err(ShardReplyFlaw::BadChecksum { .. })
        ));
        // Parts round-trip through the response enum.
        let bytes = encode_response(&Response::TuneShardPart(part.clone()));
        match decode_response(&bytes).unwrap() {
            Response::TuneShardPart(p) => assert_eq!(p, part),
            other => panic!("expected TuneShardPart, got {}", other.kind()),
        }
    }

    #[test]
    fn single_digit_flip_in_serialized_part_fails_verification() {
        let part = TuneShardPart::seal(
            11,
            TuneShardPartBody {
                start_index: 24,
                count: 8,
                best: None,
            },
        );
        let bytes = encode_response(&Response::TuneShardPart(part));
        let mut flipped_any = false;
        for i in 0..bytes.len() {
            if !bytes[i].is_ascii_digit() {
                continue;
            }
            let mut forged = bytes.clone();
            forged[i] = if forged[i] == b'9' {
                b'1'
            } else {
                forged[i] + 1
            };
            if let Ok(Response::TuneShardPart(p)) = decode_response(&forged) {
                assert!(p.verify(11).is_err(), "undetected flip at byte {i}");
                flipped_any = true;
            }
        }
        assert!(flipped_any, "at least one flip must decode and be caught");
    }

    #[test]
    fn session_edit_seal_verifies_and_corruption_is_detected() {
        let edits = vec![
            GraphEdit::RemoveNode { id: 4 },
            GraphEdit::ResizeTile { tile_bits: 2048 },
        ];
        let req = SessionEditRequest::seal(17, 3, edits.clone());
        assert_eq!(req.checksum, SessionEditRequest::checksum_of(3, &edits));
        assert!(req.verify().is_ok());
        // An altered edit list under the stale checksum: refused.
        let mut tampered = req.clone();
        tampered.edits[0] = GraphEdit::RemoveNode { id: 5 };
        assert!(tampered.verify().is_err());
        // A re-stamped epoch also invalidates the checksum: the seal
        // binds the batch to the graph state it was built against.
        let mut restamped = req.clone();
        restamped.epoch = 4;
        assert!(restamped.verify().is_err());
    }

    #[test]
    fn single_digit_flip_in_serialized_edit_batch_fails_verification() {
        let req = SessionEditRequest::seal(
            9,
            12,
            vec![
                GraphEdit::RetargetEdge {
                    node: 31,
                    slot: 0,
                    new_dep: 17,
                },
                GraphEdit::RemoveNode { id: 40 },
            ],
        );
        let bytes = encode_request(&Request::SessionEdit(req));
        let mut flipped_any = false;
        for i in 0..bytes.len() {
            if !bytes[i].is_ascii_digit() {
                continue;
            }
            let mut forged = bytes.clone();
            forged[i] = if forged[i] == b'9' {
                b'1'
            } else {
                forged[i] + 1
            };
            if let Ok(Request::SessionEdit(r)) = decode_request(&forged) {
                // A flip inside `session_id` leaves the sealed
                // (epoch, edits) intact — routing, not content.
                if r.session_id != 9 {
                    continue;
                }
                assert!(r.verify().is_err(), "undetected flip at byte {i}");
                flipped_any = true;
            }
        }
        assert!(flipped_any, "at least one flip must decode and be caught");
    }

    #[test]
    fn session_requests_and_replies_round_trip() {
        let open = Request::SessionOpen(SessionOpenRequest {
            graph: DataflowGraph::new("g", 32),
            machine: MachineConfig::n5(2, 2),
            fom: FigureOfMerit::Edp,
            candidates: vec![],
            max_candidates: Some(8),
            convergence_window: None,
            cost_model: Some("spatial".to_string()),
        });
        assert_eq!(open.endpoint(), "session_open");
        match decode_request(&encode_request(&open)).unwrap() {
            Request::SessionOpen(r) => {
                assert_eq!(r.max_candidates, Some(8));
                assert_eq!(r.cost_model.as_deref(), Some("spatial"));
            }
            other => panic!("expected SessionOpen, got {}", other.endpoint()),
        }

        let tune = Request::SessionTune(SessionTuneRequest {
            session_id: 5,
            deadline_ms: Some(250),
            cost_model: None,
        });
        assert_eq!(tune.endpoint(), "session_tune");
        let close = Request::SessionClose(SessionCloseRequest { session_id: 5 });
        assert_eq!(close.endpoint(), "session_close");

        let missing = Response::NoSuchSession(NoSuchSessionReply { session_id: 99 });
        assert_eq!(missing.kind(), "no-such-session");
        match decode_response(&encode_response(&missing)).unwrap() {
            Response::NoSuchSession(r) => assert_eq!(r.session_id, 99),
            other => panic!("expected NoSuchSession, got {}", other.kind()),
        }

        let edited = Response::SessionEdited(SessionEditedReply {
            session_id: 5,
            epoch: 7,
            applied: 3,
            cone: 11,
        });
        assert_eq!(edited.kind(), "session-edited");
        match decode_response(&encode_response(&edited)).unwrap() {
            Response::SessionEdited(r) => {
                assert_eq!((r.epoch, r.applied, r.cone), (7, 3, 11));
            }
            other => panic!("expected SessionEdited, got {}", other.kind()),
        }
    }

    #[test]
    fn ping_round_trips_through_frames() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            read_request(&mut r, DEFAULT_MAX_FRAME).unwrap(),
            Request::Ping
        );
    }

    #[test]
    fn binary_envelope_round_trips_requests_with_correlation_ids() {
        let req = Request::Tune(TuneRequest {
            graph: DataflowGraph::new("g", 32),
            machine: MachineConfig::n5(2, 2),
            fom: FigureOfMerit::Edp,
            candidates: vec![],
            deadline_ms: Some(125),
            max_candidates: None,
            convergence_window: Some(4),
            refinement: None,
            use_cache: true,
            cost_model: Some("roofline".to_string()),
        });
        let payload = encode_request_binary(0xDEAD_BEEF_0042, &req);
        assert!(is_binary(&payload));
        assert_eq!(payload[0], BINARY_MAGIC);
        assert_eq!(payload[1], PROTOCOL_BINARY_VERSION);
        let (corr, got, was_binary) = decode_request_any(&payload).unwrap();
        assert_eq!(corr, 0xDEAD_BEEF_0042);
        assert!(was_binary);
        assert_eq!(got, req);
        // The JSON path still decodes with corr 0 and the same value.
        let (corr, got, was_binary) = decode_request_any(&encode_request(&req)).unwrap();
        assert_eq!(corr, 0);
        assert!(!was_binary);
        assert_eq!(got, req);
    }

    #[test]
    fn binary_and_json_encodings_agree_on_every_scalar_shape() {
        // One response exercising null, bool, signed, float, string,
        // array, object — decoded from binary, re-encoded as JSON, it
        // must be byte-identical to the directly-JSON-encoded original.
        let resp = Response::Tuned(TuneReply {
            best: None,
            offered: 17,
            evaluated: 12,
            pruned: 5,
            cache: "miss".into(),
            fell_back: false,
            cancelled: true,
            wall_ms: 1.5,
        });
        let (corr, decoded, _) = decode_response_any(&encode_response_binary(7, &resp)).unwrap();
        assert_eq!(corr, 7);
        assert_eq!(encode_response(&decoded), encode_response(&resp));
    }

    #[test]
    fn binary_compact_encoding_is_smaller_than_json() {
        let resp = Response::Stats(Box::new(crate::metrics::Metrics::default().snapshot(64)));
        let json = encode_response(&resp).len();
        let binary = encode_response_binary(1, &resp).len();
        assert!(
            binary < json,
            "binary ({binary} bytes) should undercut JSON ({json} bytes)"
        );
    }

    #[test]
    fn truncated_and_malformed_binary_envelopes_are_typed_errors() {
        let payload = encode_request_binary(3, &Request::Ping);
        // Every proper prefix must fail Malformed, never panic.
        for cut in 0..payload.len() {
            assert!(
                matches!(
                    decode_request_any(&payload[..cut]),
                    Err(WireError::Malformed(_)) | Err(WireError::Closed)
                ) || cut == 0,
                "prefix of {cut} bytes not rejected"
            );
        }
        // Unknown version byte.
        let mut wrong_version = payload.clone();
        wrong_version[1] = PROTOCOL_BINARY_VERSION + 1;
        assert!(matches!(
            decode_request_any(&wrong_version),
            Err(WireError::Malformed(_))
        ));
        // Unknown value tag.
        let mut bad_tag = payload.clone();
        bad_tag[BINARY_HEADER] = 0x3F;
        assert!(matches!(
            decode_request_any(&bad_tag),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage after a complete value.
        let mut trailing = payload.clone();
        trailing.push(0x00);
        assert!(matches!(
            decode_request_any(&trailing),
            Err(WireError::Malformed(_))
        ));
        // A lying array count larger than the frame could hold.
        let mut lying = Vec::new();
        lying.push(BINARY_MAGIC);
        lying.push(PROTOCOL_BINARY_VERSION);
        lying.extend_from_slice(&0u64.to_be_bytes());
        lying.push(0x07); // array
        put_varint(u32::MAX as u64, &mut lying);
        assert!(matches!(
            decode_binary_envelope(&lying),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn deeply_nested_binary_values_are_rejected_not_overflowed() {
        let mut payload = Vec::new();
        payload.push(BINARY_MAGIC);
        payload.push(PROTOCOL_BINARY_VERSION);
        payload.extend_from_slice(&0u64.to_be_bytes());
        for _ in 0..(BINARY_MAX_DEPTH + 8) {
            payload.push(0x07); // array of 1 element…
            payload.push(0x01);
        }
        payload.push(0x00); // …bottoming out in a null
        assert!(matches!(
            decode_binary_envelope(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn zigzag_and_varint_cover_the_integer_edges() {
        for n in [
            0i64,
            1,
            -1,
            i64::MAX,
            i64::MIN,
            1 << 40,
            -(1 << 40),
            127,
            -128,
        ] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
        for n in [0u64, 1, 127, 128, u64::MAX, 1 << 63] {
            let mut buf = Vec::new();
            put_varint(n, &mut buf);
            let mut r = BinReader {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(r.varint().unwrap(), n);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn hello_negotiation_frames_round_trip_in_both_encodings() {
        let hello = Request::Hello(HelloRequest {
            max_version: PROTOCOL_BINARY_VERSION,
            pipeline: true,
        });
        assert_eq!(hello.endpoint(), "hello");
        // Hello is sent as JSON (the encoding every server decodes)…
        assert_eq!(decode_request(&encode_request(&hello)).unwrap(), hello);
        // …but like everything else it also survives the binary path.
        let (_, got, _) = decode_request_any(&encode_request_binary(0, &hello)).unwrap();
        assert_eq!(got, hello);

        let ack = Response::HelloAck(HelloAckReply {
            version: 1,
            pipeline: true,
        });
        assert_eq!(ack.kind(), "hello-ack");
        match decode_response(&encode_response(&ack)).unwrap() {
            Response::HelloAck(a) => assert_eq!((a.version, a.pipeline), (1, true)),
            other => panic!("expected HelloAck, got {}", other.kind()),
        }
    }

    #[test]
    fn non_finite_floats_survive_binary_exactly() {
        use serde::Json;
        let v = Json::Arr(vec![
            Json::F64(f64::NAN),
            Json::F64(f64::INFINITY),
            Json::F64(-0.0),
        ]);
        let payload = encode_envelope(9, &v);
        let (corr, got) = decode_binary_envelope(&payload).unwrap();
        assert_eq!(corr, 9);
        let items = got.as_arr().unwrap();
        assert!(matches!(items[0], Json::F64(f) if f.is_nan()));
        assert!(matches!(items[1], Json::F64(f) if f.is_infinite() && f > 0.0));
        assert!(matches!(items[2], Json::F64(f) if f == 0.0 && f.is_sign_negative()));
    }
}
