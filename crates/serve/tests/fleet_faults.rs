//! Chaos tests for the sharded-search fleet: real shard servers on
//! ephemeral ports, a real coordinator, and deterministic fault
//! injection in between. The invariant under test is always the same —
//! whatever the fleet survives (dead shards, slow shards, corrupt or
//! stale frames, a full outage), the winning mapping is bit-identical
//! to a single-machine `Tuner::tune` over the same candidates.

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use fm_autotune::{TunedMapping, Tuner};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::fault::{mix64, FaultAction, FaultPlan, FaultProxy};
use fm_serve::fleet::FleetConfig;
use fm_serve::protocol::{
    decode_request_any, read_frame, write_request, write_response, Request, Response, TuneRequest,
    TuneShardBody, TuneShardReply, WireCandidate, DEFAULT_MAX_FRAME,
};
use fm_serve::server::{Server, ServerConfig, ServerHandle};
use fm_serve::Client;
use proptest::prelude::*;

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("fleet-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

fn affine_candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn tune_request(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TuneRequest {
    TuneRequest {
        graph: graph.clone(),
        machine: machine.clone(),
        fom: FigureOfMerit::Time,
        candidates: affine_candidates(ncand, machine.cols),
        deadline_ms: None,
        max_candidates: None,
        convergence_window: None,
        refinement: None,
        use_cache: false,
        cost_model: None,
    }
}

/// The single-machine reference run the fleet must reproduce exactly.
fn direct_winner(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TunedMapping {
    let evaluator = Evaluator::new(graph, machine);
    let candidates: Vec<MappingCandidate> = affine_candidates(ncand, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    Tuner::new(&evaluator, graph, machine, FigureOfMerit::Time)
        .tune(&candidates)
        .best
        .expect("direct tuner found a winner")
}

fn assert_same_winner(served: &TunedMapping, expected: &TunedMapping) {
    assert_eq!(served.label, expected.label);
    assert_eq!(served.score.to_bits(), expected.score.to_bits());
    assert_eq!(served.resolved, expected.resolved);
}

/// Tight timeouts so fault recovery is exercised in test time, not
/// production time. `stream_every` is small enough that every range in
/// these tests produces real part frames.
fn fleet_config(shards: Vec<String>) -> FleetConfig {
    let mut f = FleetConfig::new(shards);
    f.connect_timeout = Duration::from_millis(200);
    f.attempt_timeout = Duration::from_secs(3);
    f.attempts = 3;
    f.backoff_base = Duration::from_millis(5);
    f.backoff_max = Duration::from_millis(40);
    f.hedge_after = None;
    f.breaker_threshold = 2;
    f.breaker_cooldown = Duration::from_millis(300);
    f.stream_every = Some(4);
    f
}

fn start_shards(n: usize) -> Vec<ServerHandle> {
    (0..n)
        .map(|_| Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind shard"))
        .collect()
}

fn start_coordinator(fleet: FleetConfig) -> ServerHandle {
    let config = ServerConfig {
        fleet: Some(fleet),
        ..ServerConfig::default()
    };
    Server::start("127.0.0.1:0", config).expect("bind coordinator")
}

/// An address that is bound, then immediately released: connecting to
/// it is promptly refused, which models a crashed shard.
fn dead_addr() -> String {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    probe.local_addr().unwrap().to_string()
}

/// A unique throwaway ledger path (the file need not exist yet).
fn tmp_ledger(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "fm-fleet-ledger-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn fleet_tune_is_bit_identical_to_direct_tuner() {
    let graph = wide(16);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(3);
    let addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let coord = start_coordinator(fleet_config(addrs));

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 30)).unwrap();
    assert!(!reply.fell_back);
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 30);
    assert_eq!(reply.cache, "disabled");
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 30),
    );

    let fleet = coord
        .stats()
        .fleet
        .expect("coordinator exports fleet stats");
    assert_eq!(fleet.fleet_tunes, 1);
    assert_eq!(fleet.shards.len(), 3);
    let shard_work: u64 = shards.iter().map(|s| s.stats().tune_shard.received).sum();
    assert!(shard_work >= 1, "no shard ever saw a sub-range");
    // Streaming was on (stream_every = 4, ranges of 10): parts flowed,
    // were merged, and fed the per-shard throughput EWMAs the stats
    // endpoint exports.
    assert!(fleet.parts_merged >= 1, "no streamed part was merged");
    assert_eq!(fleet.parts_discarded, 0);
    assert!(fleet.shards.iter().any(|s| s.parts >= 1));
    assert!(fleet.shards.iter().any(|s| s.ewma_cands_per_sec > 0.0));
    let shard_parts: u64 = shards.iter().map(|s| s.stats().tune_shard_parts).sum();
    assert!(shard_parts >= 1, "shards report emitted parts too");

    coord.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn dead_shard_is_reassigned_without_changing_the_winner() {
    let graph = wide(14);
    let machine = MachineConfig::linear(8);
    let mut shards = start_shards(3);
    let mut addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    // Kill shard 0 before the tune: its address now refuses connects.
    let dead = shards.remove(0);
    addrs[0] = dead.local_addr().to_string();
    dead.shutdown_and_join();

    let coord = start_coordinator(fleet_config(addrs));
    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 24)).unwrap();
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 24);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 24),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(fleet.retries >= 1, "dead shard should force a retry wave");
    assert!(
        fleet.reassignments >= 1,
        "the dead shard's range should land elsewhere"
    );
    assert!(fleet.shards[0].failures >= 1);

    coord.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn full_outage_degrades_to_local_search() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let coord = start_coordinator(fleet_config(vec![dead_addr(), dead_addr()]));

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert!(!reply.cancelled);
    assert_eq!(
        reply.evaluated, 20,
        "local fallback still sweeps everything"
    );
    assert_same_winner(
        &reply.best.expect("degraded tune found a winner"),
        &direct_winner(&graph, &machine, 20),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(fleet.local_fallback_ranges >= 1);
    assert_eq!(fleet.degraded_tunes, 1, "the whole tune ran locally");

    coord.shutdown_and_join();
}

#[test]
fn corrupt_reply_is_discarded_and_the_range_retried() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    // First connection through the proxy gets its reply payload
    // corrupted (one flipped digit); later connections pass clean.
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::Corrupt]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    // The corrupting proxy flips an ASCII digit, which assumes JSON
    // reply text; pin the links to JSON so the fault stays meaningful.
    let mut config = fleet_config(addrs);
    config.binary_links = false;
    let coord = start_coordinator(config);

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_eq!(reply.evaluated, 20);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 20),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.corrupt_discarded >= 1,
        "checksum should catch the flipped digit"
    );
    assert!(fleet.retries >= 1);

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn mid_reply_disconnect_is_retried() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::DisconnectMidReply]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    let coord = start_coordinator(fleet_config(addrs));

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_eq!(reply.evaluated, 20);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 20),
    );
    assert!(coord.stats().fleet.unwrap().retries >= 1);

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn slow_shard_is_hedged() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    // Every connection to shard 0 stalls well past the hedge trigger.
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::Delay(1200); 8]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    let mut config = fleet_config(addrs);
    config.hedge_after = Some(Duration::from_millis(50));
    let coord = start_coordinator(config);

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_eq!(reply.evaluated, 20);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 20),
    );
    assert!(
        coord.stats().fleet.unwrap().hedges >= 1,
        "the stalled range should have hedged"
    );

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn stale_epoch_reply_is_discarded() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(1);

    // A "lying" shard: speaks the protocol perfectly — well-formed
    // frame, valid checksum, complete body — but stamps the wrong
    // epoch, as a partitioned or wedged process replaying an old tune
    // would. Only epoch validation can reject it.
    let liar = TcpListener::bind("127.0.0.1:0").unwrap();
    let liar_addr = liar.local_addr().unwrap().to_string();
    thread::spawn(move || {
        for _ in 0..4 {
            let Ok((mut conn, _)) = liar.accept() else {
                return;
            };
            let Ok(payload) = read_frame(&mut conn, DEFAULT_MAX_FRAME) else {
                continue;
            };
            let Ok((_, Request::TuneShard(req), _)) = decode_request_any(&payload) else {
                continue;
            };
            let count = req.candidates.len() as u64;
            let body = TuneShardBody {
                start_index: req.start_index,
                count,
                evaluated: count,
                cancelled: false,
                best: None,
            };
            let reply = TuneShardReply::seal(req.epoch + 777, body);
            let _ = write_response(&mut conn, &Response::TuneSharded(reply));
        }
    });

    let addrs = vec![liar_addr, shards[0].local_addr().to_string()];
    let coord = start_coordinator(fleet_config(addrs));
    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_eq!(reply.evaluated, 20);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 20),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.stale_discarded >= 1,
        "the old-epoch reply should have been rejected"
    );

    coord.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Satellite: a client that walks away mid-tune must not leave shards
/// burning cores. Dropping the coordinator connection cancels the
/// coordinator job, which drops its shard connections, which the
/// shards observe as disconnects and abort their sub-searches.
#[test]
fn client_disconnect_cancels_inflight_shard_searches() {
    let graph = wide(48);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(1);
    let addrs = vec![shards[0].local_addr().to_string()];
    let coord = start_coordinator(fleet_config(addrs));

    // Enough candidates that the shard-side search is comfortably
    // still running when the client vanishes.
    let mut stream = TcpStream::connect(coord.local_addr()).unwrap();
    write_request(
        &mut stream,
        &Request::Tune(tune_request(&graph, &machine, 3000)),
    )
    .unwrap();

    // Wait until the work has actually reached the shard...
    let t0 = Instant::now();
    while shards[0].stats().tune_shard.received == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shard never received the sub-range"
        );
        thread::sleep(Duration::from_millis(5));
    }

    // ...then hang up without reading the reply.
    drop(stream);

    // The cancellation must ripple all the way to the shard's metrics.
    let t0 = Instant::now();
    while shards[0].stats().cancelled == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(15),
            "shard never observed the cancellation"
        );
        thread::sleep(Duration::from_millis(10));
    }

    coord.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: when a shard dies *mid-stream*, the parts it already
/// delivered stay merged — only the unfinished suffix is re-dispatched
/// — and the winner is still bit-identical to the direct tuner.
#[test]
fn mid_stream_death_saves_the_prefix_and_redispatches_the_suffix() {
    let graph = wide(14);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    // Shard 0's first connection delivers its first part frame clean,
    // then truncates the second part mid-frame: progress, then death.
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::TruncateFrame(1)]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    let coord = start_coordinator(fleet_config(addrs));

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 24)).unwrap();
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 24, "every candidate scored exactly once");
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 24),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(fleet.parts_merged >= 1, "the clean first part was merged");
    assert!(
        fleet.prefix_candidates_saved >= 4,
        "the dead attempt's streamed prefix was banked, got {}",
        fleet.prefix_candidates_saved
    );
    assert!(
        fleet.suffix_redispatches >= 1,
        "the retry should start at the covered watermark, not range start"
    );

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: a corrupted *part* (not terminal) is caught by its own
/// checksum, discarded, and never poisons the merge — while parts
/// delivered clean before it stay merged.
#[test]
fn corrupt_mid_stream_part_is_discarded_without_losing_the_winner() {
    let graph = wide(14);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    // Frame 0 (first part) passes clean; frame 1 (second part) gets one
    // digit flipped. Only the part checksum can tell.
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::CorruptFrame(1)]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    // Digit-flip corruption assumes JSON part text; pin the links.
    let mut config = fleet_config(addrs);
    config.binary_links = false;
    let coord = start_coordinator(config);

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 24)).unwrap();
    assert_eq!(reply.evaluated, 24);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 24),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.parts_discarded >= 1,
        "the flipped digit should be caught by the part checksum"
    );
    assert!(
        fleet.corrupt_discarded >= 1,
        "and counted as a corruption discard"
    );
    assert!(fleet.parts_merged >= 1, "clean parts still merged");

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// A shard whose *stream* crawls (a stall before every frame) still
/// completes without tripping the per-frame inactivity timeout, because
/// each delivered part resets the attempt clock.
#[test]
fn slow_stream_survives_on_per_frame_progress() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::StallBetweenFrames(60); 4]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    let mut config = fleet_config(addrs);
    // Tighter than the *sum* of the stalls (4 frames × 60 ms), looser
    // than any single one: only the per-frame deadline reset on each
    // delivered part lets this attempt finish.
    config.attempt_timeout = Duration::from_millis(150);
    let coord = start_coordinator(config);

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 24)).unwrap();
    assert_eq!(reply.evaluated, 24);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 24),
    );
    let fleet = coord.stats().fleet.unwrap();
    assert_eq!(
        fleet.retries, 0,
        "per-frame progress should keep the slow stream alive"
    );
    assert_eq!(fleet.local_fallback_ranges, 0);

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: shards join and leave a *running* fleet over the wire,
/// each effective change bumps the membership epoch, and tunes before,
/// between, and after the churn all match the direct tuner.
#[test]
fn membership_join_and_leave_reshape_the_fleet_between_tunes() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    let first = shards[0].local_addr().to_string();
    let second = shards[1].local_addr().to_string();
    // Coordinator starts knowing only the first shard.
    let coord = start_coordinator(fleet_config(vec![first.clone()]));
    let mut client = Client::connect(coord.local_addr()).unwrap();

    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_same_winner(
        &reply.best.expect("single-member fleet found a winner"),
        &direct_winner(&graph, &machine, 20),
    );

    // Admit the second shard mid-flight: epoch bumps, roster grows.
    let joined = client.shard_join(&second).unwrap();
    assert!(joined.changed);
    assert_eq!(joined.epoch, 2);
    assert_eq!(joined.members.len(), 2);
    // Re-admission is idempotent: same roster, same epoch.
    let again = client.shard_join(&second).unwrap();
    assert!(!again.changed);
    assert_eq!(again.epoch, 2);

    let reply = client.tune(tune_request(&graph, &machine, 24)).unwrap();
    assert_same_winner(
        &reply.best.expect("grown fleet found a winner"),
        &direct_winner(&graph, &machine, 24),
    );
    let both_worked = shards
        .iter()
        .all(|s| s.stats().tune_shard.received + s.stats().tune.received >= 1);
    assert!(both_worked, "the admitted shard never saw a sub-range");

    // Retire the founding member; the survivor carries the next tune.
    let left = client.shard_leave(&first).unwrap();
    assert!(left.changed);
    assert_eq!(left.epoch, 3);
    assert_eq!(left.members, vec![second.clone()]);
    let reply = client.tune(tune_request(&graph, &machine, 16)).unwrap();
    assert_same_winner(
        &reply.best.expect("shrunk fleet found a winner"),
        &direct_winner(&graph, &machine, 16),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert_eq!(fleet.membership_epoch, 3);
    assert_eq!(fleet.members, 1);
    assert_eq!(fleet.joins, 1);
    assert_eq!(fleet.leaves, 1);
    assert!(fleet.shards.iter().any(|s| s.departed));

    // A plain shard is not a coordinator: membership requests are a
    // typed illegal-state failure there, not a silent no-op.
    let mut direct = Client::connect(shards[1].local_addr()).unwrap();
    match direct.shard_join("127.0.0.1:9") {
        Err(fm_serve::ClientError::Failed(f)) => assert_eq!(f.kind, "illegal"),
        other => panic!("expected illegal-state failure, got {other:?}"),
    }

    coord.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: a shard whose throughput collapses mid-stream (healthy
/// connection, crawling watermark) has its unfinished suffix
/// speculatively re-dispatched to a healthy member — and the winner is
/// still bit-identical to the direct tuner.
#[test]
fn throughput_cliff_redispatches_the_suffix_without_changing_the_winner() {
    let graph = wide(14);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    // Shard 0 streams its first part at full speed (establishing a
    // healthy EWMA and trailing peak), then collapses to 100 ms per
    // candidate — no disconnect, no corruption, just a cliff.
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![
            FaultAction::ThroughputCliff {
                after_frame: 1,
                ms_per_candidate: 100,
            };
            4
        ]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    let mut config = fleet_config(addrs);
    config.hedge_after = None; // isolate the cliff detector
    config.cliff_fraction = 0.5;
    config.cliff_stall = Duration::from_millis(100);
    // Generous per-attempt budget: per-frame progress keeps the sick
    // attempt alive, so only the cliff detector can rescue the range.
    config.attempt_timeout = Duration::from_secs(10);
    let coord = start_coordinator(config);

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 32)).unwrap();
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 32, "every candidate scored exactly once");
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 32),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.cliff_redispatches >= 1,
        "the collapsed shard's suffix should have been re-dispatched"
    );
    assert_eq!(fleet.parts_discarded, 0, "no sealed part was thrown away");

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// A shard that repeatedly falls off its throughput cliff is
/// quarantined: the cliff detector feeds the circuit breaker, so the
/// chronically collapsing shard's breaker trips open even though none
/// of its attempts ever *failed* — and the winner is still
/// bit-identical to the direct tuner.
#[test]
fn repeated_cliffs_quarantine_the_shard() {
    let graph = wide(14);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![
            FaultAction::ThroughputCliff {
                after_frame: 1,
                ms_per_candidate: 100,
            };
            4
        ]),
    )
    .unwrap();
    let addrs = vec![
        proxy.local_addr().to_string(),
        shards[1].local_addr().to_string(),
    ];
    let mut config = fleet_config(addrs);
    config.hedge_after = None; // isolate the cliff detector
    config.cliff_fraction = 0.5;
    config.cliff_stall = Duration::from_millis(100);
    config.cliff_quarantine_trips = 1; // first collapse quarantines
    config.attempt_timeout = Duration::from_secs(10);
    let coord = start_coordinator(config);

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 32)).unwrap();
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 32, "every candidate scored exactly once");
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 32),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(fleet.cliff_redispatches >= 1, "the cliff never fired");
    assert!(
        fleet.cliff_quarantines >= 1,
        "the repeat offender was never quarantined"
    );
    let sick = fleet
        .shards
        .iter()
        .find(|s| s.cliff_trips >= 1)
        .expect("the collapsed shard's trip counter should be visible in Stats");
    assert!(
        sick.breaker_opens >= 1,
        "quarantine must trip the breaker open, not just count"
    );

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: retiring a shard *while it owns an in-flight range*
/// abandons the attempt at its covered watermark and re-dispatches only
/// the unfinished suffix to a surviving member.
#[test]
fn departed_shard_mid_tune_redispatches_from_watermark() {
    let graph = wide(14);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    // Shard 0's stream crawls: plenty of wall-clock to retire it while
    // its range is still in flight.
    let proxy = FaultProxy::start(
        shards[0].local_addr(),
        FaultPlan::script(vec![FaultAction::StallBetweenFrames(120); 8]),
    )
    .unwrap();
    let proxy_addr = proxy.local_addr().to_string();
    let addrs = vec![proxy_addr.clone(), shards[1].local_addr().to_string()];
    let mut config = fleet_config(addrs);
    config.attempt_timeout = Duration::from_secs(10);
    let coord = start_coordinator(config);

    let coord_addr = coord.local_addr();
    let tuner_thread = thread::spawn(move || {
        let graph = wide(14);
        let machine = MachineConfig::linear(8);
        let mut client = Client::connect(coord_addr).unwrap();
        client.tune(tune_request(&graph, &machine, 32)).unwrap()
    });

    // Wait until the slow shard actually owns a range...
    let t0 = Instant::now();
    while shards[0].stats().tune_shard.received == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "slow shard never received its sub-range"
        );
        thread::sleep(Duration::from_millis(5));
    }
    // ...then retire it over the wire, mid-tune. Membership requests
    // are never queued, so this lands while the tune still runs.
    let mut admin = Client::connect(coord_addr).unwrap();
    let left = admin.shard_leave(&proxy_addr).unwrap();
    assert!(left.changed);

    let reply = tuner_thread.join().expect("tuner thread panicked");
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 32);
    assert_same_winner(
        &reply.best.expect("fleet found a winner"),
        &direct_winner(&graph, &machine, 32),
    );

    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.departed_redispatches >= 1,
        "the retired shard's range should re-dispatch, got {fleet:?}"
    );

    coord.shutdown_and_join();
    proxy.stop();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: per-shard EWMA weights persist in the ledger across a
/// coordinator restart — the reborn coordinator starts *weighted*, and
/// its stats say so.
#[test]
fn persisted_weights_survive_coordinator_restart() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    let addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let ledger = tmp_ledger("restart");
    let _ = std::fs::remove_file(&ledger);

    let mut config = fleet_config(addrs.clone());
    config.weight_ledger = Some(ledger.clone());
    let coord = start_coordinator(config);
    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 24)).unwrap();
    assert_same_winner(
        &reply.best.expect("first life found a winner"),
        &direct_winner(&graph, &machine, 24),
    );
    let fleet = coord.stats().fleet.unwrap();
    assert!(fleet
        .shards
        .iter()
        .any(|s| s.weight_source == "measured" && s.ewma_cands_per_sec > 0.0));
    coord.shutdown_and_join();

    // Second life, same ledger: weights are warm before any tune.
    let mut config = fleet_config(addrs);
    config.weight_ledger = Some(ledger.clone());
    let coord = start_coordinator(config);
    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet
            .shards
            .iter()
            .all(|s| s.weight_source == "persisted" && s.ewma_cands_per_sec > 0.0),
        "restarted coordinator should start from the ledger, got {fleet:?}"
    );
    // And the warm weights still produce the exact direct-tuner winner.
    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_same_winner(
        &reply.best.expect("second life found a winner"),
        &direct_winner(&graph, &machine, 20),
    );
    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.shards.iter().any(|s| s.weight_source == "measured"),
        "fresh samples should overwrite the persisted tag"
    );
    coord.shutdown_and_join();

    let _ = std::fs::remove_file(&ledger);
    for s in shards {
        s.shutdown_and_join();
    }
}

/// Tentpole: a corrupted (or truncated, or wrong-schema) ledger must
/// never take the coordinator down — it falls back to cold weights,
/// serves correctly, and heals the ledger on its next persist.
#[test]
fn corrupt_ledger_falls_back_to_cold_weights() {
    let graph = wide(12);
    let machine = MachineConfig::linear(8);
    let shards = start_shards(2);
    let addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let ledger = tmp_ledger("corrupt");
    std::fs::write(&ledger, b"{\"schema\": 1, \"entries\": [trailing garbage").unwrap();

    let mut config = fleet_config(addrs.clone());
    config.weight_ledger = Some(ledger.clone());
    let coord = start_coordinator(config);
    let fleet = coord.stats().fleet.unwrap();
    assert!(
        fleet.shards.iter().all(|s| s.weight_source == "cold"),
        "a corrupt ledger must read as no ledger, got {fleet:?}"
    );

    let mut client = Client::connect(coord.local_addr()).unwrap();
    let reply = client.tune(tune_request(&graph, &machine, 20)).unwrap();
    assert_same_winner(
        &reply.best.expect("cold-start fleet found a winner"),
        &direct_winner(&graph, &machine, 20),
    );
    coord.shutdown_and_join();

    // The tune's persist overwrote the garbage: the next life is warm.
    let mut config = fleet_config(addrs);
    config.weight_ledger = Some(ledger.clone());
    let coord = start_coordinator(config);
    assert!(coord
        .stats()
        .fleet
        .unwrap()
        .shards
        .iter()
        .all(|s| s.weight_source == "persisted"));
    coord.shutdown_and_join();

    let _ = std::fs::remove_file(&ledger);
    for s in shards {
        s.shutdown_and_join();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: under any seeded fault plan — drops, delays,
    /// truncations, corruptions, mid-reply disconnects, in any order —
    /// the fleet's winner never changes. Plans are finite (connections
    /// beyond the schedule pass clean), retries are bounded, and every
    /// range has the local fallback, so the merged result is always the
    /// full sweep.
    #[test]
    fn seeded_fault_plans_never_change_the_winner(
        seed in any::<u64>(),
        nodes in 4usize..10,
        ncand in 8usize..24,
    ) {
        let graph = wide(nodes);
        let machine = MachineConfig::linear(8);
        let shards = start_shards(2);
        let proxies: Vec<FaultProxy> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                FaultProxy::start(
                    s.local_addr(),
                    FaultPlan::seeded(seed.wrapping_add(i as u64), 5),
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<String> = proxies.iter().map(|p| p.local_addr().to_string()).collect();
        let coord = start_coordinator(fleet_config(addrs));

        let mut client = Client::connect(coord.local_addr()).unwrap();
        let reply = client.tune(tune_request(&graph, &machine, ncand)).unwrap();
        let expected = direct_winner(&graph, &machine, ncand);
        let served = reply.best.expect("fleet found a winner");

        prop_assert!(!reply.cancelled);
        prop_assert_eq!(reply.evaluated, ncand as u64);
        prop_assert_eq!(&served.label, &expected.label);
        prop_assert_eq!(served.score.to_bits(), expected.score.to_bits());
        prop_assert_eq!(&served.resolved, &expected.resolved);

        coord.shutdown_and_join();
        for p in proxies {
            p.stop();
        }
        for s in shards {
            s.shutdown_and_join();
        }
    }

    /// Satellite: the streamed + weighted merge and the classic
    /// blocking merge agree with each other *and* with the direct
    /// single-machine tuner, under identical seeded fault schedules.
    /// Each coordinator gets its own proxies built from the same seed,
    /// so both protocols face the same misbehavior in the same order.
    #[test]
    fn streamed_and_blocking_merges_agree_with_direct(
        seed in any::<u64>(),
        ncand in 10usize..22,
    ) {
        let graph = wide(8);
        let machine = MachineConfig::linear(8);
        let shards = start_shards(2);
        let expected = direct_winner(&graph, &machine, ncand);

        let mut winners = Vec::new();
        for streaming in [true, false] {
            let proxies: Vec<FaultProxy> = shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    FaultProxy::start(
                        s.local_addr(),
                        FaultPlan::seeded(seed.wrapping_add(i as u64), 4),
                    )
                    .unwrap()
                })
                .collect();
            let addrs: Vec<String> =
                proxies.iter().map(|p| p.local_addr().to_string()).collect();
            let mut config = fleet_config(addrs);
            config.stream_every = streaming.then_some(3);
            config.weighted = streaming;
            let coord = start_coordinator(config);

            let mut client = Client::connect(coord.local_addr()).unwrap();
            let reply = client.tune(tune_request(&graph, &machine, ncand)).unwrap();
            prop_assert!(!reply.cancelled);
            prop_assert_eq!(reply.evaluated, ncand as u64);
            winners.push(reply.best.expect("fleet found a winner"));

            coord.shutdown_and_join();
            for p in proxies {
                p.stop();
            }
        }

        for served in &winners {
            prop_assert_eq!(&served.label, &expected.label);
            prop_assert_eq!(served.score.to_bits(), expected.score.to_bits());
            prop_assert_eq!(&served.resolved, &expected.resolved);
        }
        prop_assert_eq!(&winners[0].label, &winners[1].label);

        for s in shards {
            s.shutdown_and_join();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Tentpole: seeded *churn* — joins, leaves, and throughput cliffs
    /// interleaved with tunes of random sizes — never changes the
    /// winner and never discards a sealed part. Cliffs here slow the
    /// stream without corrupting it, so a detector that fires (or
    /// doesn't — timing is seed-dependent) must make no difference to
    /// the merged result.
    #[test]
    fn seeded_churn_never_changes_the_winner_or_discards_parts(
        seed in any::<u64>(),
        ncands in prop::collection::vec(8usize..28, 3),
    ) {
        let graph = wide(10);
        let machine = MachineConfig::linear(8);
        let shards = start_shards(3);
        // Shards 0 and 1 sit behind churn-flavored proxies: clean
        // passes, delays, stalls, and throughput cliffs — no
        // corruption, so every sealed part must merge.
        let churn_plan = |salt: u64| {
            let actions = (0..6u64)
                .map(|i| {
                    let r = mix64(seed ^ salt ^ mix64(i));
                    match r % 4 {
                        0 => FaultAction::Pass,
                        1 => FaultAction::Delay(5 + (r >> 8) % 20),
                        2 => FaultAction::StallBetweenFrames(5 + (r >> 8) % 20),
                        _ => FaultAction::ThroughputCliff {
                            after_frame: ((r >> 8) % 2) as u32,
                            ms_per_candidate: 1 + (r >> 16) % 3,
                        },
                    }
                })
                .collect();
            FaultPlan::script(actions)
        };
        let proxies: Vec<FaultProxy> = (0..2)
            .map(|i| FaultProxy::start(shards[i].local_addr(), churn_plan(i as u64)).unwrap())
            .collect();
        let third = shards[2].local_addr().to_string();
        let addrs: Vec<String> = proxies.iter().map(|p| p.local_addr().to_string()).collect();
        let mut config = fleet_config(addrs.clone());
        config.cliff_fraction = 0.35;
        config.cliff_stall = Duration::from_millis(60);
        let coord = start_coordinator(config);

        let mut client = Client::connect(coord.local_addr()).unwrap();
        let mut third_in = false;
        for (round, &ncand) in ncands.iter().enumerate() {
            // One seeded membership op between tunes: admit the third
            // shard, retire it, or bounce a proxied founder.
            let r = mix64(seed ^ 0xC0FF_EE00 ^ round as u64);
            match r % 3 {
                0 => {
                    let rep = client.shard_join(&third).unwrap();
                    prop_assert_eq!(rep.changed, !third_in);
                    third_in = true;
                }
                1 => {
                    let rep = client.shard_leave(&third).unwrap();
                    prop_assert_eq!(rep.changed, third_in);
                    third_in = false;
                }
                _ => {
                    let bounced = &addrs[(r >> 8) as usize % 2];
                    prop_assert!(client.shard_leave(bounced).unwrap().changed);
                    prop_assert!(client.shard_join(bounced).unwrap().changed);
                }
            }

            let reply = client.tune(tune_request(&graph, &machine, ncand)).unwrap();
            let expected = direct_winner(&graph, &machine, ncand);
            let served = reply.best.expect("churned fleet found a winner");
            prop_assert!(!reply.cancelled);
            prop_assert_eq!(reply.evaluated, ncand as u64);
            prop_assert_eq!(&served.label, &expected.label);
            prop_assert_eq!(served.score.to_bits(), expected.score.to_bits());
            prop_assert_eq!(&served.resolved, &expected.resolved);

            let fleet = coord.stats().fleet.unwrap();
            prop_assert_eq!(fleet.parts_discarded, 0, "churn must not void sealed parts");
            prop_assert_eq!(fleet.corrupt_discarded, 0);
        }

        let fleet = coord.stats().fleet.unwrap();
        prop_assert!(fleet.membership_epoch >= 2, "every round churned the roster");
        prop_assert_eq!(fleet.joins + fleet.leaves, fleet.membership_epoch - 1);

        coord.shutdown_and_join();
        for p in proxies {
            p.stop();
        }
        for s in shards {
            s.shutdown_and_join();
        }
    }
}
