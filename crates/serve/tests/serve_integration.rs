//! End-to-end tests: a real server on an ephemeral port, real TCP
//! clients, concurrency, backpressure, deadlines, and drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fm_autotune::Tuner;
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::client::{Client, ClientError};
use fm_serve::protocol::{EvaluateRequest, TuneRequest, WireCandidate};
use fm_serve::server::{Server, ServerConfig};

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("serve-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

/// `n` affine candidates folding the iteration space onto `w = 1..cols`
/// processing elements: place `i mod w`, time `i div w`. All legal on a
/// linear machine with `cols` columns, with genuinely different
/// time/energy trade-offs, so tunes have real ranking work to do.
fn affine_candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn tune_request(
    graph: &DataflowGraph,
    machine: &MachineConfig,
    ncand: usize,
    deadline_ms: Option<u64>,
) -> TuneRequest {
    TuneRequest {
        graph: graph.clone(),
        machine: machine.clone(),
        fom: FigureOfMerit::Time,
        candidates: affine_candidates(ncand, machine.cols),
        deadline_ms,
        max_candidates: None,
        convergence_window: None,
        refinement: None,
        use_cache: false,
        cost_model: None,
    }
}

fn start(config: ServerConfig) -> fm_serve::server::ServerHandle {
    Server::start("127.0.0.1:0", config).expect("bind ephemeral port")
}

#[test]
fn tune_through_server_is_bit_identical_to_direct_tuner() {
    let graph = wide(24);
    let machine = MachineConfig::linear(8);
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let reply = client
        .tune(tune_request(&graph, &machine, 40, None))
        .unwrap();
    let served = reply.best.expect("server found a winner");
    assert!(!reply.fell_back);
    assert!(!reply.cancelled);
    assert_eq!(reply.evaluated, 40);

    // The reference run: the serial tuner, no server, same defaults.
    // Ordered reduction makes the parallel server-side search land on
    // the identical winner, score bits included.
    let evaluator = Evaluator::new(&graph, &machine);
    let candidates: Vec<MappingCandidate> = affine_candidates(40, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    let direct = Tuner::new(&evaluator, &graph, &machine, FigureOfMerit::Time).tune(&candidates);
    let expected = direct.best.expect("direct tuner found a winner");

    assert_eq!(served.label, expected.label);
    assert_eq!(served.score.to_bits(), expected.score.to_bits());
    assert_eq!(served.resolved, expected.resolved);

    handle.shutdown_and_join();
}

#[test]
fn concurrent_mixed_workload_reconciles_with_server_stats() {
    const THREADS: usize = 6;
    const TUNES: u64 = 2;
    const EVALS: u64 = 3;

    let graph = wide(16);
    let machine = MachineConfig::linear(8);
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();
    let resolved = Mapping::serial(&graph).resolve(&graph, &machine).unwrap();

    let ok = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let graph = graph.clone();
            let machine = machine.clone();
            let resolved = resolved.clone();
            let ok = Arc::clone(&ok);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..TUNES {
                    let reply = client
                        .tune(tune_request(&graph, &machine, 10, None))
                        .unwrap();
                    assert!(reply.best.is_some());
                }
                for _ in 0..EVALS {
                    let reply = client
                        .evaluate(EvaluateRequest {
                            graph: graph.clone(),
                            machine: machine.clone(),
                            mapping: resolved.clone(),
                            deadline_ms: None,
                        })
                        .unwrap();
                    assert!(reply.legal);
                    assert!(reply.report.is_some());
                }
                // Stats answers even while work is in flight.
                let stats = client.stats().unwrap();
                assert!(stats.queue_depth <= stats.queue_capacity);
                ok.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(ok.load(Ordering::Relaxed), THREADS as u64);

    // Server-side counters must reconcile exactly with what the
    // clients sent: nothing lost, nothing double-counted.
    let stats = handle.stats();
    assert_eq!(stats.tune.received, THREADS as u64 * TUNES);
    assert_eq!(stats.tune.completed, THREADS as u64 * TUNES);
    assert_eq!(stats.evaluate.received, THREADS as u64 * EVALS);
    assert_eq!(stats.evaluate.completed, THREADS as u64 * EVALS);
    assert_eq!(stats.stats.received, THREADS as u64);
    assert_eq!(stats.busy_rejections, 0);
    assert_eq!(stats.tune.failed + stats.evaluate.failed, 0);
    assert!(stats.tune.latency.p50_us > 0.0);
    assert!(stats.tune.latency.p99_us >= stats.tune.latency.p50_us);

    // Drain must leave nothing behind.
    let last = handle.shutdown_and_join();
    assert_eq!(last.queue_depth, 0);
    assert_eq!(last.tune.completed, THREADS as u64 * TUNES);
}

#[test]
fn saturation_yields_busy_and_the_queue_stays_bounded() {
    const CLIENTS: usize = 8;
    let graph = wide(48);
    let machine = MachineConfig::linear(8);
    // One worker, a one-slot queue, and slow requests: with 8 clients
    // firing at once, most must be refused — and refused *immediately*
    // (bounded memory), not buffered.
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    let busy = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let graph = graph.clone();
            let machine = machine.clone();
            let busy = Arc::clone(&busy);
            let served = Arc::clone(&served);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                match client.tune(tune_request(&graph, &machine, 3000, None)) {
                    Ok(reply) => {
                        assert!(reply.best.is_some());
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::Busy(b)) => {
                        assert_eq!(b.queue_capacity, 1);
                        busy.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let busy = busy.load(Ordering::Relaxed);
    let served = served.load(Ordering::Relaxed);
    assert_eq!(busy + served, CLIENTS as u64);
    assert!(served >= 1, "at least the first request is served");
    assert!(
        busy >= 1,
        "8 simultaneous heavy tunes on a 1-slot queue must refuse some"
    );

    let stats = handle.shutdown_and_join();
    assert_eq!(stats.busy_rejections, busy);
    assert!(stats.queue_peak <= 1, "queue never exceeds capacity");
    assert_eq!(stats.tune.received, CLIENTS as u64);
    assert_eq!(stats.tune.completed, served);
}

#[test]
fn expired_deadline_fails_evaluate_and_bounds_tune() {
    let graph = wide(32);
    let machine = MachineConfig::linear(8);
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // An already-expired Evaluate is refused with a typed failure.
    match client.evaluate(EvaluateRequest {
        graph: graph.clone(),
        machine: machine.clone(),
        mapping: Mapping::serial(&graph).resolve(&graph, &machine).unwrap(),
        deadline_ms: Some(0),
    }) {
        Err(ClientError::Failed(f)) => assert_eq!(f.kind, "deadline"),
        other => panic!("expected a deadline failure, got {other:?}"),
    }

    // A Tune with a tiny deadline still answers — with a partial
    // search, not an error: best-effort is the endpoint's contract.
    let reply = client
        .tune(tune_request(&graph, &machine, 5000, Some(1)))
        .unwrap();
    assert!(
        reply.evaluated < reply.offered || reply.fell_back,
        "a 1 ms deadline cannot evaluate all 5000 candidates (evaluated {} of {})",
        reply.evaluated,
        reply.offered
    );

    let stats = handle.shutdown_and_join();
    assert!(stats.deadline_expired >= 1);
}

#[test]
fn shutdown_drains_and_refuses_late_work() {
    let graph = wide(16);
    let machine = MachineConfig::linear(8);
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();

    let mut working = Client::connect(addr).unwrap();
    let reply = working
        .tune(tune_request(&graph, &machine, 20, None))
        .unwrap();
    assert!(reply.best.is_some());

    // A second, already-connected client triggers the drain.
    let mut trigger = Client::connect(addr).unwrap();
    trigger.shutdown().unwrap();

    // Work submitted after the drain began is refused (either with an
    // explicit ShuttingDown or because the connection already closed).
    match working.tune(tune_request(&graph, &machine, 20, None)) {
        Err(ClientError::ShuttingDown) | Err(ClientError::Wire(_)) => {}
        Ok(_) => panic!("work accepted after shutdown"),
        Err(other) => panic!("unexpected error: {other}"),
    }

    // join() returns: every thread exited, the queue is empty, and the
    // pre-shutdown request was fully served.
    let stats = handle.join();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.tune.completed, 1);
}

#[test]
fn unknown_cost_model_is_a_typed_refusal_on_both_framings() {
    let graph = wide(6);
    let machine = MachineConfig::linear(4);
    let handle = start(ServerConfig::default());

    let json = Client::connect_json(handle.local_addr()).unwrap();
    let binary = Client::connect(handle.local_addr()).unwrap();
    assert!(binary.is_binary(), "new server must negotiate binary");
    for mut client in [json, binary] {
        let mut req = tune_request(&graph, &machine, 4, None);
        req.cost_model = Some("quantum".to_string());
        let err = client.tune(req).expect_err("unknown model must refuse");
        assert!(err.is_unknown_cost_model(), "got {err}");
        match err {
            ClientError::UnknownCostModel(f) => {
                assert_eq!(f.kind, "cost-model");
                assert!(
                    f.error.contains("quantum"),
                    "error names the model: {}",
                    f.error
                );
                assert!(
                    f.error.contains("roofline"),
                    "error lists the options: {}",
                    f.error
                );
            }
            other => panic!("expected UnknownCostModel, got {other}"),
        }
        // The refusal is a reply, not a protocol error: the connection
        // survives and the next request is served normally.
        client
            .ping()
            .expect("connection stays usable after refusal");
        let ok = client
            .tune(tune_request(&graph, &machine, 4, None))
            .unwrap();
        assert!(ok.best.is_some());
    }
    let stats = handle.shutdown_and_join();
    assert_eq!(stats.tune.failed, 2, "one typed failure per framing");
}

#[test]
fn named_backends_rank_like_their_direct_evaluators() {
    let graph = wide(24);
    let machine = MachineConfig::linear(8);
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let candidates: Vec<MappingCandidate> = affine_candidates(40, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    for (name, kind) in [
        ("analytic", fm_costmodel::CostModelKind::Analytic),
        ("roofline", fm_costmodel::CostModelKind::Roofline),
        ("spatial", fm_costmodel::CostModelKind::Spatial),
    ] {
        let mut req = tune_request(&graph, &machine, 40, None);
        req.cost_model = Some(name.to_string());
        let served = client.tune(req).unwrap().best.expect("winner");

        let evaluator = Evaluator::new(&graph, &machine).with_cost_model(kind);
        let direct = Tuner::new(&evaluator, &graph, &machine, FigureOfMerit::Time)
            .tune(&candidates)
            .best
            .expect("direct winner");
        assert_eq!(served.label, direct.label, "winner under {name}");
        assert_eq!(
            served.score.to_bits(),
            direct.score.to_bits(),
            "score bits under {name}"
        );
    }

    // Every backend's winner passed through the roofline observatory.
    let stats = handle.shutdown_and_join();
    assert_eq!(stats.cost_models.len(), 3);
    for row in &stats.cost_models {
        assert_eq!(row.tunes, 1, "{} saw one tune", row.model);
        assert_eq!(
            row.compute_bound + row.onchip_bound + row.offchip_bound,
            1,
            "{} winner landed on exactly one roof",
            row.model
        );
    }
}
