//! Property tests for the session subsystem's core invariant: after
//! *any* stream of applied edits, a warm `SessionState::tune` lands on
//! a winner bit-identical to a cold `Tuner::tune` of the current graph
//! with the candidate set frozen at open — for every interleaving of
//! edits and tunes, not just the ones the unit tests chose.

use proptest::prelude::*;

use fm_autotune::{Budget, CancelToken, Tuner};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::mutate::{apply_edit, GraphEdit};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::session::{EditOutcome, SessionState};

fn chain(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("session-prop", 32);
    g.add_node(CExpr::konst(Value::ZERO), vec![], vec![0]);
    for i in 1..n {
        g.add_node(
            CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            vec![(i - 1) as u32],
            vec![i as i64],
        );
    }
    g
}

/// A table candidate (invalidated by length changes), an always-legal
/// PE0 schedule, and a time-0 spread (illegal on any chain): together
/// they exercise repair, unresolvable, fallback, and rebuild paths.
fn frozen_candidates(g: &DataflowGraph) -> Vec<MappingCandidate> {
    vec![
        MappingCandidate::new("serial", Mapping::serial(g)),
        MappingCandidate::new(
            "affine0",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::c(0)),
                time: IdxExpr::i(),
            }),
        ),
        MappingCandidate::new(
            "spread",
            Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::i()),
                time: IdxExpr::c(0),
            }),
        ),
    ]
}

/// Decode one raw step into a structurally plausible edit. Validity is
/// decided by rehearsing on mirror clones — an invalid proposal is
/// simply skipped, so streams stay arbitrary without biasing toward
/// trivial graphs.
fn propose(g: &DataflowGraph, op: u8, a: u64, b: u64) -> GraphEdit {
    let len = g.nodes.len() as u64;
    match op % 4 {
        0 => GraphEdit::AddNode {
            expr: CExpr::dep(0).add(CExpr::konst(Value::real(a as f64))),
            deps: vec![(a % len) as u32],
            index: vec![len as i64],
            output: false,
        },
        1 => GraphEdit::RemoveNode {
            id: (a % len) as u32,
        },
        2 => GraphEdit::RetargetEdge {
            node: (a % len) as u32,
            slot: 0,
            new_dep: (b % len) as u32,
        },
        _ => GraphEdit::ResizeTile {
            tile_bits: 64 + (a % 8192),
        },
    }
}

fn assert_tune_matches_cold(
    state: &mut SessionState,
    g: &DataflowGraph,
    m: &MachineConfig,
    frozen: &[MappingCandidate],
    step: usize,
) {
    let out = state.tune(None, &CancelToken::new());
    let ev = Evaluator::new(g, m);
    let cold = Tuner::new(&ev, g, m, FigureOfMerit::Time)
        .with_budget(Budget::unlimited())
        .tune(frozen);
    assert_eq!(out.report.best_index, cold.best_index, "step {step}");
    assert_eq!(out.report.evaluated, cold.evaluated, "step {step}");
    assert_eq!(out.report.fell_back, cold.fell_back, "step {step}");
    match (&out.report.best, &cold.best) {
        (Some(w), Some(c)) => {
            assert_eq!(w.label, c.label, "step {step}");
            assert_eq!(w.score.to_bits(), c.score.to_bits(), "step {step}");
            assert_eq!(w.resolved, c.resolved, "step {step}");
        }
        (None, None) => {}
        (w, c) => panic!(
            "step {step}: warm {:?} vs cold {:?}",
            w.is_some(),
            c.is_some()
        ),
    }
    for (wt, ct) in out.report.trajectory.iter().zip(cold.trajectory.iter()) {
        assert_eq!(wt.0, ct.0, "step {step}");
        assert_eq!(wt.1.to_bits(), ct.1.to_bits(), "step {step}");
    }
    assert_eq!(
        out.report.trajectory.len(),
        cold.trajectory.len(),
        "step {step}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_session_tunes_are_bit_identical_to_cold_after_any_edit_stream(
        n in 3usize..9,
        steps in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<bool>()),
            0..14,
        ),
    ) {
        let mut g = chain(n);
        let mut m = MachineConfig::linear(4);
        let frozen = frozen_candidates(&g);
        let mut state = SessionState::open(
            g.clone(),
            m.clone(),
            FigureOfMerit::Time,
            frozen.clone(),
            Budget::unlimited(),
            fm_costmodel::CostModelKind::Analytic,
        );

        // The winner of the untouched session already matches cold.
        assert_tune_matches_cold(&mut state, &g, &m, &frozen, usize::MAX);

        let mut epoch = 0u64;
        for (step, (op, a, b, tune_here)) in steps.into_iter().enumerate() {
            let edit = propose(&g, op, a, b);
            // Rehearse on mirror clones: skip proposals the graph
            // refuses (removing a producer, retargeting a dep-less
            // node, ...) — the session would atomically reject them
            // and leave state untouched, which is tested elsewhere.
            let (mut g2, mut m2) = (g.clone(), m.clone());
            if apply_edit(&mut g2, &mut m2, &edit).is_ok() {
                apply_edit(&mut g, &mut m, &edit).unwrap();
                match state.apply_batch(epoch, &[edit]) {
                    EditOutcome::Applied { epoch: e, applied: 1, .. } => epoch = e,
                    other => panic!("step {step}: rehearsed edit refused: {other:?}"),
                }
            }
            if tune_here {
                assert_tune_matches_cold(&mut state, &g, &m, &frozen, step);
            }
        }
        // And once more after the stream ends, whatever it was.
        assert_tune_matches_cold(&mut state, &g, &m, &frozen, usize::MAX - 1);
        prop_assert_eq!(state.epoch, epoch);
    }
}
