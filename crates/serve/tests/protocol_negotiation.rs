//! End-to-end tests for wire-protocol negotiation: new clients against
//! old servers, old clients against new servers, pipelined
//! out-of-order completion, and dedup-batched admission. The invariant
//! throughout is the protocol-upgrade contract — *no encoding or
//! batching choice ever changes an answer*, only how fast it arrives.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use fm_autotune::{TunedMapping, Tuner};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::protocol::{
    decode_request, read_frame, write_response, FailReply, Request, Response, TuneRequest,
    WireCandidate, DEFAULT_MAX_FRAME,
};
use fm_serve::server::{Server, ServerConfig};
use fm_serve::Client;

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("nego-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

fn affine_candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn tune_request(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TuneRequest {
    TuneRequest {
        graph: graph.clone(),
        machine: machine.clone(),
        fom: FigureOfMerit::Time,
        candidates: affine_candidates(ncand, machine.cols),
        deadline_ms: None,
        max_candidates: None,
        convergence_window: None,
        refinement: None,
        use_cache: false,
        cost_model: None,
    }
}

fn direct_winner(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TunedMapping {
    let evaluator = Evaluator::new(graph, machine);
    let candidates: Vec<MappingCandidate> = affine_candidates(ncand, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    Tuner::new(&evaluator, graph, machine, FigureOfMerit::Time)
        .tune(&candidates)
        .best
        .expect("direct tuner found a winner")
}

fn assert_same_winner(served: &TunedMapping, expected: &TunedMapping) {
    assert_eq!(served.label, expected.label);
    assert_eq!(served.score.to_bits(), expected.score.to_bits());
    assert_eq!(served.resolved, expected.resolved);
}

/// An "old" server: strict JSON decoding (the pre-negotiation
/// `decode_request`), so a `Hello` — an enum variant it has never
/// heard of — draws a protocol failure and a closed connection,
/// exactly like the previous release's server code. Later connections
/// are served plain JSON.
fn start_old_server() -> (String, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || {
        // Serve a bounded number of connections, then exit.
        for _ in 0..4 {
            let Ok((mut conn, _)) = listener.accept() else {
                return;
            };
            while let Ok(payload) = read_frame(&mut conn, DEFAULT_MAX_FRAME) {
                match decode_request(&payload) {
                    Ok(Request::Ping) => {
                        if write_response(&mut conn, &Response::Pong).is_err() {
                            break;
                        }
                    }
                    Ok(Request::Shutdown) => {
                        let _ = write_response(&mut conn, &Response::ShuttingDown);
                        return;
                    }
                    Ok(_) => {
                        let _ = write_response(
                            &mut conn,
                            &Response::Failed(FailReply {
                                kind: "internal".to_string(),
                                error: "unsupported in the stub".to_string(),
                            }),
                        );
                    }
                    Err(e) => {
                        // The old server's behavior verbatim: report
                        // the protocol error and hang up.
                        let _ = write_response(
                            &mut conn,
                            &Response::Failed(FailReply {
                                kind: "protocol".to_string(),
                                error: e.to_string(),
                            }),
                        );
                        break;
                    }
                }
            }
        }
    });
    (addr, handle)
}

/// Satellite fix under test: a new client dialing a server that
/// predates negotiation must degrade to JSON transparently — the
/// caller just sees a working connection.
#[test]
fn new_client_falls_back_to_json_against_old_server() {
    let (addr, server) = start_old_server();
    let mut client = Client::connect(&addr).expect("connect with fallback");
    assert!(
        !client.is_binary() && !client.is_pipelined(),
        "an old server cannot have negotiated binary"
    );
    client
        .ping()
        .expect("JSON ping through the fallback client");
    let _ = client.shutdown();
    let _ = server.join();
}

#[test]
fn old_client_is_served_json_by_new_server() {
    let graph = wide(12);
    let machine = MachineConfig::linear(6);
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();

    // `connect_json` is byte-for-byte the old client's behavior: no
    // Hello, pure JSON frames.
    let mut client = Client::connect_json(server.local_addr()).unwrap();
    assert!(!client.is_binary());
    let reply = client.tune(tune_request(&graph, &machine, 16)).unwrap();
    assert_same_winner(
        &reply.best.expect("winner over JSON"),
        &direct_winner(&graph, &machine, 16),
    );
    client.ping().unwrap();

    let stats = server.shutdown_and_join();
    assert_eq!(
        stats.binary_connections, 0,
        "an un-negotiated connection must not be counted as binary"
    );
    assert!(stats.json_requests >= 2, "tune + ping arrived as JSON");
    assert_eq!(stats.binary_requests, 0);
}

#[test]
fn negotiated_binary_winner_is_bit_identical_to_json() {
    let graph = wide(12);
    let machine = MachineConfig::linear(6);
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut json_client = Client::connect_json(server.local_addr()).unwrap();
    let mut bin_client = Client::connect(server.local_addr()).unwrap();
    assert!(bin_client.is_binary(), "new server must negotiate binary");
    assert!(bin_client.is_pipelined());

    let json_reply = json_client
        .tune(tune_request(&graph, &machine, 16))
        .unwrap();
    let bin_reply = bin_client.tune(tune_request(&graph, &machine, 16)).unwrap();
    let direct = direct_winner(&graph, &machine, 16);
    assert_same_winner(&json_reply.best.expect("JSON winner"), &direct);
    assert_same_winner(&bin_reply.best.expect("binary winner"), &direct);

    let stats = server.shutdown_and_join();
    assert!(stats.binary_connections >= 1);
    assert!(stats.binary_requests >= 1);
    assert!(stats.json_requests >= 1);
}

/// Pipelining means replies come back in completion order: a cheap
/// inline request (Ping) queued *behind* an expensive Tune on the same
/// connection overtakes it.
#[test]
fn pipelined_replies_complete_out_of_order() {
    let graph = wide(48);
    let machine = MachineConfig::linear(8);
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(client.is_pipelined());

    // Two Tunes on one worker: the first runs while the second queues,
    // so both sit in the in-flight ledger at once (peak >= 2). The
    // inline Ping behind them overtakes both.
    let tune_a = client
        .send_request(&Request::Tune(tune_request(&graph, &machine, 24)))
        .unwrap();
    let tune_b = client
        .send_request(&Request::Tune(tune_request(&graph, &machine, 24)))
        .unwrap();
    let ping_corr = client.send_request(&Request::Ping).unwrap();
    assert_ne!(tune_a, ping_corr);
    assert_ne!(tune_a, tune_b);

    let (first, first_resp) = client.recv_response().unwrap();
    assert_eq!(
        first, ping_corr,
        "the inline Ping must overtake the queued Tunes"
    );
    assert!(matches!(first_resp, Response::Pong));
    let direct = direct_winner(&graph, &machine, 24);
    for _ in 0..2 {
        let (corr, resp) = client.recv_response().unwrap();
        assert!(corr == tune_a || corr == tune_b);
        match resp {
            Response::Tuned(r) => assert_same_winner(&r.best.expect("pipelined winner"), &direct),
            other => panic!("expected Tuned, got {}", other.kind()),
        }
    }

    let stats = server.shutdown_and_join();
    assert!(
        stats.inflight_peak >= 2,
        "both requests were in flight at once (peak {})",
        stats.inflight_peak
    );
}

/// Tentpole: identical Tunes queued together collapse into one search
/// whose answer fans out — every waiter gets the bit-identical winner
/// the search it skipped would have produced, and the books still
/// reconcile per request.
#[test]
fn duplicate_tunes_collapse_into_one_search() {
    const DUPES: u64 = 8;
    let graph = wide(32);
    let machine = MachineConfig::linear(8);
    let config = ServerConfig {
        workers: 1, // one worker: the first Tune runs while the rest queue
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let request = Request::Tune(tune_request(&graph, &machine, 24));
    let corrs: Vec<u64> = (0..DUPES)
        .map(|_| client.send_request(&request).unwrap())
        .collect();

    let direct = direct_winner(&graph, &machine, 24);
    let mut answered = Vec::new();
    for _ in 0..DUPES {
        let (corr, resp) = client.recv_response().unwrap();
        match resp {
            Response::Tuned(r) => {
                assert_same_winner(&r.best.expect("deduped winner"), &direct);
                answered.push(corr);
            }
            other => panic!("expected Tuned, got {}", other.kind()),
        }
    }
    answered.sort_unstable();
    let mut expected = corrs.clone();
    expected.sort_unstable();
    assert_eq!(answered, expected, "every duplicate got its own reply");

    let stats = server.shutdown_and_join();
    assert!(
        stats.dedup_batches >= 1,
        "queued duplicates should have been coalesced"
    );
    assert!(stats.dedup_waiters_served >= 1);
    assert_eq!(
        stats.tune.received, DUPES,
        "per-request accounting must survive dedup"
    );
    assert_eq!(stats.tune.completed, DUPES);
}

/// Dedup off is a real knob: the same duplicate burst runs every
/// search individually and still answers identically.
#[test]
fn dedup_off_still_answers_every_duplicate_identically() {
    const DUPES: u64 = 4;
    let graph = wide(16);
    let machine = MachineConfig::linear(8);
    let config = ServerConfig {
        workers: 1,
        dedup_tunes: false,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let request = Request::Tune(tune_request(&graph, &machine, 12));
    for _ in 0..DUPES {
        client.send_request(&request).unwrap();
    }
    let direct = direct_winner(&graph, &machine, 12);
    for _ in 0..DUPES {
        let (_, resp) = client.recv_response().unwrap();
        match resp {
            Response::Tuned(r) => assert_same_winner(&r.best.expect("winner"), &direct),
            other => panic!("expected Tuned, got {}", other.kind()),
        }
    }

    let stats = server.shutdown_and_join();
    assert_eq!(stats.dedup_batches, 0, "dedup was off");
    assert_eq!(stats.dedup_waiters_served, 0);
}

/// Shutdown drains a pipelined connection: requests admitted before
/// the drain still get their replies through the writer thread.
#[test]
fn shutdown_drains_pipelined_inflight_replies() {
    let graph = wide(24);
    let machine = MachineConfig::linear(8);
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let t1 = client
        .send_request(&Request::Tune(tune_request(&graph, &machine, 16)))
        .unwrap();
    let t2 = client
        .send_request(&Request::Tune(tune_request(&graph, &machine, 16)))
        .unwrap();
    let shut = client.send_request(&Request::Shutdown).unwrap();

    let mut seen = std::collections::HashSet::new();
    for _ in 0..3 {
        let (corr, resp) = client.recv_response().unwrap();
        match resp {
            Response::Tuned(_) => assert!(corr == t1 || corr == t2),
            Response::ShuttingDown => assert_eq!(corr, shut),
            other => panic!("unexpected response {}", other.kind()),
        }
        seen.insert(corr);
    }
    assert_eq!(seen.len(), 3, "all three replies delivered through drain");
    // Give the listener a beat, then confirm the server really exited.
    server.join();
    thread::sleep(Duration::from_millis(10));
}
