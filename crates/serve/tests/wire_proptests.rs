//! Property tests for the wire protocol.
//!
//! Two families:
//!
//! 1. **Round-trip**: every request and response variant, built from
//!    randomized payloads, survives `encode → decode → encode` with the
//!    bytes unchanged (byte equality implies structural equality
//!    without requiring `PartialEq` on every reply type).
//! 2. **Adversarial framing**: truncated frames, oversized length
//!    prefixes, and garbage payloads are rejected with a typed
//!    [`WireError`] — never a panic, never a hang, and never an
//!    allocation proportional to a hostile length prefix.

use proptest::prelude::*;

use fm_core::affine::IdxExpr;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr, ResolvedMapping};
use fm_core::search::FigureOfMerit;
use fm_core::value::Value;

use fm_serve::protocol::{
    decode_request, decode_request_any, decode_response, decode_response_any, encode_request,
    encode_request_binary, encode_response, encode_response_binary, read_frame, write_frame,
    BusyReply, EvaluateReply, EvaluateRequest, FailReply, HelloAckReply, HelloRequest,
    NoSuchSessionReply, Request, Response, SessionCloseRequest, SessionClosedReply,
    SessionEditRequest, SessionEditedReply, SessionOpenRequest, SessionOpenedReply,
    SessionTuneRequest, SessionTunedReply, SimulateReply, SimulateRequest, TuneReply, TuneRequest,
    TuneShardBody, TuneShardPart, TuneShardPartBody, TuneShardReply, TuneShardRequest,
    WireCandidate, WireError, DEFAULT_MAX_FRAME,
};

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("proptest-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

fn fom_from(raw: u8) -> FigureOfMerit {
    match raw % 4 {
        0 => FigureOfMerit::Time,
        1 => FigureOfMerit::Energy,
        2 => FigureOfMerit::Edp,
        _ => FigureOfMerit::Footprint,
    }
}

fn candidates(n: usize) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| WireCandidate {
            label: format!("cand-{i}"),
            mapping: if i % 2 == 0 {
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(i as i64),
                })
            } else {
                Mapping::Table(ResolvedMapping {
                    place: vec![(0, 0); 4],
                    time: (0..4).collect(),
                })
            },
        })
        .collect()
}

/// encode → decode → encode must be byte-identical.
fn assert_request_round_trips(req: &Request) {
    let bytes = encode_request(req);
    let decoded = decode_request(&bytes).expect("decode of a freshly encoded request");
    assert_eq!(decoded.endpoint(), req.endpoint());
    assert_eq!(encode_request(&decoded), bytes);
}

fn assert_response_round_trips(resp: &Response) {
    let bytes = encode_response(resp);
    let decoded = decode_response(&bytes).expect("decode of a freshly encoded response");
    assert_eq!(decoded.kind(), resp.kind());
    assert_eq!(encode_response(&decoded), bytes);
}

/// JSON ↔ binary parity: the binary envelope must carry exactly the
/// structure JSON does — decoding a binary frame and re-encoding as
/// JSON reproduces the JSON bytes — and the correlation id survives
/// the header round trip (JSON frames decode with id 0).
fn assert_request_binary_parity(corr: u64, req: &Request) {
    let json = encode_request(req);
    let frame = encode_request_binary(corr, req);
    let (got_corr, decoded, was_binary) = decode_request_any(&frame).expect("binary decode");
    assert!(was_binary);
    assert_eq!(got_corr, corr);
    assert_eq!(encode_request(&decoded), json);
    let (json_corr, from_json, was_binary) = decode_request_any(&json).expect("json decode");
    assert!(!was_binary);
    assert_eq!(json_corr, 0);
    assert_eq!(encode_request(&from_json), json);
}

fn assert_response_binary_parity(corr: u64, resp: &Response) {
    let json = encode_response(resp);
    let frame = encode_response_binary(corr, resp);
    let (got_corr, decoded, was_binary) = decode_response_any(&frame).expect("binary decode");
    assert!(was_binary);
    assert_eq!(got_corr, corr);
    assert_eq!(encode_response(&decoded), json);
    let (json_corr, from_json, was_binary) = decode_response_any(&json).expect("json decode");
    assert!(!was_binary);
    assert_eq!(json_corr, 0);
    assert_eq!(encode_response(&from_json), json);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_request_variant_round_trips(
        nodes in 1usize..12,
        cols in 1u32..9,
        ncand in 0usize..6,
        fom_raw in any::<u8>(),
        deadline in 0u64..10_000,
        with_deadline in any::<bool>(),
        use_cache in any::<bool>(),
        contention in any::<bool>(),
    ) {
        let graph = wide(nodes);
        let machine = MachineConfig::linear(cols);
        let deadline_ms = with_deadline.then_some(deadline);
        let mapping = Mapping::serial(&graph)
            .resolve(&graph, &machine)
            .expect("serial mapping resolves");

        let variants = vec![
            Request::Ping,
            Request::Tune(TuneRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                fom: fom_from(fom_raw),
                candidates: candidates(ncand),
                deadline_ms,
                max_candidates: with_deadline.then_some(deadline + 1),
                convergence_window: use_cache.then_some(8),
                refinement: None,
                use_cache,
                cost_model: use_cache.then(|| "roofline".to_string()),
            }),
            Request::Evaluate(EvaluateRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                mapping: mapping.clone(),
                deadline_ms,
            }),
            Request::Simulate(SimulateRequest {
                graph,
                machine,
                mapping,
                inputs: vec![],
                contention,
                deadline_ms,
            }),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in &variants {
            assert_request_round_trips(req);
        }
    }

    #[test]
    fn every_response_variant_round_trips(
        offered in 0u64..5_000,
        evaluated in 0u64..5_000,
        violations in 0u64..100,
        depth in 0u64..64,
        cycles in 1i64..100_000,
        slow in 0.0f64..4.0,
        cancelled in any::<bool>(),
    ) {
        // A reply with real nested payloads (CostReport, TunedMapping)
        // is exercised end-to-end by the integration tests; here the
        // variants carry every scalar shape the wire can express.
        let variants = vec![
            Response::Pong,
            Response::Tuned(TuneReply {
                best: None,
                offered,
                evaluated,
                pruned: offered.saturating_sub(evaluated),
                cache: "miss".to_string(),
                fell_back: evaluated == 0,
                cancelled,
                wall_ms: slow * 10.0,
            }),
            Response::Evaluated(EvaluateReply {
                legal: violations == 0,
                violations,
                report: None,
            }),
            Response::Simulated(SimulateReply {
                cycles_scheduled: cycles,
                cycles_actual: cycles + violations as i64,
                slowdown: slow,
                stalled_elements: violations,
                total_stall_cycles: violations * 2,
                messages_delivered: offered,
                link_wait_cycles: evaluated,
                predicted_energy_fj: slow * 1e6,
                simulated_energy_fj: slow * 1e6,
            }),
            Response::Stats(Box::new(fm_serve::metrics::Metrics::default().snapshot(depth as usize))),
            Response::Busy(BusyReply { queue_depth: depth, queue_capacity: depth }),
            Response::ShuttingDown,
            Response::Failed(FailReply {
                kind: "deadline".to_string(),
                error: "deadline expired before execution".to_string(),
            }),
        ];
        for resp in &variants {
            assert_response_round_trips(resp);
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors_not_panics(
        cut in 0usize..64,
        ncand in 0usize..4,
    ) {
        let mut buf = Vec::new();
        let req = Request::Tune(TuneRequest {
            graph: wide(3),
            machine: MachineConfig::linear(2),
            fom: FigureOfMerit::Time,
            candidates: candidates(ncand),
            deadline_ms: None,
            max_candidates: None,
            convergence_window: None,
            refinement: None,
            use_cache: false,
            cost_model: None,
        });
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let mut r = std::io::Cursor::new(&buf[..cut]);
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { expected, got }) => {
                prop_assert!(got < expected);
            }
            Ok(_) => prop_assert!(false, "a cut frame cannot read back whole"),
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation(
        excess in 1usize..1_000_000,
        max in 16usize..4096,
    ) {
        // Header claims max+excess bytes; only 2 junk bytes follow. If
        // the reader allocated or waited for the claimed length this
        // would hang or balloon; it must fail fast on the header alone.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((max + excess) as u32).to_be_bytes());
        buf.extend_from_slice(b"xx");
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, max) {
            Err(WireError::Oversized { len, max: m }) => {
                prop_assert_eq!(len, max + excess);
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn garbage_payloads_decode_to_malformed(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Random bytes are (overwhelmingly) not a valid request. If by
        // cosmic luck they are, decoding must still not panic — both
        // outcomes are acceptable, crashing is not.
        match decode_request(&bytes) {
            Err(WireError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error kind {}", other),
            Ok(_) => {}
        }
        match decode_response(&bytes) {
            Err(WireError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error kind {}", other),
            Ok(_) => {}
        }
    }

    #[test]
    fn valid_json_of_the_wrong_shape_is_rejected(
        n in any::<u32>(),
    ) {
        let shapes = vec![
            format!("{n}"),
            format!("[{n}, {n}]"),
            format!("{{\"NotARequest\": {n}}}"),
            format!("{{\"Tune\": {n}}}"),
            "\"PingPong\"".to_string(),
            "null".to_string(),
        ];
        for s in &shapes {
            prop_assert!(matches!(
                decode_request(s.as_bytes()),
                Err(WireError::Malformed(_))
            ), "accepted {}", s);
        }
    }

    #[test]
    fn every_request_variant_has_binary_parity(
        corr in any::<u64>(),
        nodes in 1usize..10,
        cols in 1u32..9,
        ncand in 0usize..6,
        fom_raw in any::<u8>(),
        deadline in 0u64..10_000,
        with_deadline in any::<bool>(),
        use_cache in any::<bool>(),
        epoch in any::<u64>(),
        session_id in any::<u64>(),
        max_version in any::<u8>(),
        pipeline in any::<bool>(),
    ) {
        let graph = wide(nodes);
        let machine = MachineConfig::linear(cols);
        let deadline_ms = with_deadline.then_some(deadline);
        let mapping = Mapping::serial(&graph)
            .resolve(&graph, &machine)
            .expect("serial mapping resolves");

        let variants = vec![
            Request::Hello(HelloRequest { max_version, pipeline }),
            Request::Ping,
            Request::Tune(TuneRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                fom: fom_from(fom_raw),
                candidates: candidates(ncand),
                deadline_ms,
                max_candidates: with_deadline.then_some(deadline + 1),
                convergence_window: use_cache.then_some(8),
                refinement: None,
                use_cache,
                cost_model: use_cache.then(|| "spatial".to_string()),
            }),
            Request::TuneShard(TuneShardRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                fom: fom_from(fom_raw),
                candidates: candidates(ncand),
                start_index: deadline,
                epoch,
                deadline_ms,
                stream_every: with_deadline.then_some(16),
                cost_model: use_cache.then(|| "roofline".to_string()),
            }),
            Request::Evaluate(EvaluateRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                mapping: mapping.clone(),
                deadline_ms,
            }),
            Request::Simulate(SimulateRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                mapping,
                inputs: vec![],
                contention: pipeline,
                deadline_ms,
            }),
            Request::SessionOpen(SessionOpenRequest {
                graph,
                machine,
                fom: fom_from(fom_raw),
                candidates: candidates(ncand),
                max_candidates: with_deadline.then_some(deadline + 1),
                convergence_window: use_cache.then_some(8),
                cost_model: use_cache.then(|| "analytic".to_string()),
            }),
            Request::SessionEdit(SessionEditRequest::seal(session_id, epoch, vec![])),
            Request::SessionTune(SessionTuneRequest { session_id, deadline_ms, cost_model: None }),
            Request::SessionClose(SessionCloseRequest { session_id }),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in &variants {
            assert_request_binary_parity(corr, req);
        }
    }

    #[test]
    fn every_response_variant_has_binary_parity(
        corr in any::<u64>(),
        offered in 0u64..5_000,
        evaluated in 0u64..5_000,
        violations in 0u64..100,
        depth in 0u64..64,
        cycles in 1i64..100_000,
        slow in 0.0f64..4.0,
        cancelled in any::<bool>(),
        epoch in any::<u64>(),
        session_id in any::<u64>(),
        version in any::<u8>(),
        pipeline in any::<bool>(),
    ) {
        let tune_reply = TuneReply {
            best: None,
            offered,
            evaluated,
            pruned: offered.saturating_sub(evaluated),
            cache: "miss".to_string(),
            fell_back: evaluated == 0,
            cancelled,
            wall_ms: slow * 10.0,
        };
        let variants = vec![
            Response::HelloAck(HelloAckReply { version, pipeline }),
            Response::Pong,
            Response::Tuned(tune_reply.clone()),
            Response::TuneSharded(TuneShardReply::seal(epoch, TuneShardBody {
                start_index: offered,
                count: evaluated,
                evaluated,
                cancelled,
                best: None,
            })),
            Response::TuneShardPart(TuneShardPart::seal(epoch, TuneShardPartBody {
                start_index: offered,
                count: evaluated,
                best: None,
            })),
            Response::Evaluated(EvaluateReply {
                legal: violations == 0,
                violations,
                report: None,
            }),
            Response::Simulated(SimulateReply {
                cycles_scheduled: cycles,
                cycles_actual: cycles + violations as i64,
                slowdown: slow,
                stalled_elements: violations,
                total_stall_cycles: violations * 2,
                messages_delivered: offered,
                link_wait_cycles: evaluated,
                predicted_energy_fj: slow * 1e6,
                simulated_energy_fj: slow * 1e6,
            }),
            Response::SessionOpened(SessionOpenedReply {
                session_id,
                epoch,
                candidates: offered,
            }),
            Response::SessionEdited(SessionEditedReply {
                session_id,
                epoch,
                applied: violations,
                cone: depth,
            }),
            Response::SessionTuned(Box::new(SessionTunedReply {
                session_id,
                epoch,
                warm: cancelled,
                rebuilds: depth,
                reply: tune_reply,
            })),
            Response::SessionClosed(SessionClosedReply {
                session_id,
                epoch,
                edits_applied: violations,
                tunes: depth,
            }),
            Response::NoSuchSession(NoSuchSessionReply { session_id }),
            Response::Stats(Box::new(fm_serve::metrics::Metrics::default().snapshot(depth as usize))),
            Response::Busy(BusyReply { queue_depth: depth, queue_capacity: depth }),
            Response::ShuttingDown,
            Response::Failed(FailReply {
                kind: "deadline".to_string(),
                error: "deadline expired before execution".to_string(),
            }),
        ];
        for resp in &variants {
            assert_response_binary_parity(corr, resp);
        }
    }

    #[test]
    fn truncated_binary_envelopes_are_typed_errors(
        corr in any::<u64>(),
        session_id in any::<u64>(),
        cut_seed in any::<usize>(),
    ) {
        let frame = encode_request_binary(
            corr,
            &Request::SessionClose(SessionCloseRequest { session_id }),
        );
        // Every strict prefix must be refused, typed, without panics.
        let cut = cut_seed % frame.len();
        match decode_request_any(&frame[..cut]) {
            Err(WireError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error kind {}", other),
            Ok(_) => prop_assert!(false, "a cut envelope cannot decode whole"),
        }
    }

    #[test]
    fn mutated_binary_envelopes_never_panic(
        corr in any::<u64>(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
        deadline in 0u64..10_000,
    ) {
        // A flipped byte anywhere in a binary frame must decode to
        // either a typed error or some valid value — never a panic,
        // never an unbounded allocation (the depth and prealloc caps).
        let req = Request::Tune(TuneRequest {
            graph: wide(3),
            machine: MachineConfig::linear(2),
            fom: FigureOfMerit::Time,
            candidates: candidates(2),
            deadline_ms: Some(deadline),
            max_candidates: None,
            convergence_window: None,
            refinement: None,
            use_cache: false,
            cost_model: None,
        });
        let mut frame = encode_request_binary(corr, &req);
        let at = flip_at % frame.len();
        frame[at] ^= flip_bits;
        match decode_request_any(&frame) {
            Err(WireError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error kind {}", other),
            Ok(_) => {} // a value-level flip can still be a valid request
        }
    }

    #[test]
    fn binary_frames_respect_the_frame_cap(
        corr in any::<u64>(),
        max in 4usize..32,
    ) {
        // The envelope rides inside the same length-prefixed frames as
        // JSON, so the `max_frame` cap applies before any decoding.
        let frame = encode_request_binary(
            corr,
            &Request::Tune(TuneRequest {
                graph: wide(4),
                machine: MachineConfig::linear(2),
                fom: FigureOfMerit::Time,
                candidates: candidates(3),
                deadline_ms: None,
                max_candidates: None,
                convergence_window: None,
                refinement: None,
                use_cache: false,
                cost_model: None,
            }),
        );
        // A 4-node tune frame is always far larger than 32 bytes.
        prop_assert!(frame.len() > max);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, max) {
            Err(WireError::Oversized { len, max: m }) => {
                prop_assert_eq!(len, frame.len());
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "expected Oversized, got ok={}", other.is_ok()),
        }
    }
}
