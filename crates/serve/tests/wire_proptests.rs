//! Property tests for the wire protocol.
//!
//! Two families:
//!
//! 1. **Round-trip**: every request and response variant, built from
//!    randomized payloads, survives `encode → decode → encode` with the
//!    bytes unchanged (byte equality implies structural equality
//!    without requiring `PartialEq` on every reply type).
//! 2. **Adversarial framing**: truncated frames, oversized length
//!    prefixes, and garbage payloads are rejected with a typed
//!    [`WireError`] — never a panic, never a hang, and never an
//!    allocation proportional to a hostile length prefix.

use proptest::prelude::*;

use fm_core::affine::IdxExpr;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr, ResolvedMapping};
use fm_core::search::FigureOfMerit;
use fm_core::value::Value;

use fm_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BusyReply, EvaluateReply, EvaluateRequest, FailReply, Request, Response, SimulateReply,
    SimulateRequest, TuneReply, TuneRequest, WireCandidate, WireError, DEFAULT_MAX_FRAME,
};

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("proptest-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

fn fom_from(raw: u8) -> FigureOfMerit {
    match raw % 4 {
        0 => FigureOfMerit::Time,
        1 => FigureOfMerit::Energy,
        2 => FigureOfMerit::Edp,
        _ => FigureOfMerit::Footprint,
    }
}

fn candidates(n: usize) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| WireCandidate {
            label: format!("cand-{i}"),
            mapping: if i % 2 == 0 {
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::i()),
                    time: IdxExpr::c(i as i64),
                })
            } else {
                Mapping::Table(ResolvedMapping {
                    place: vec![(0, 0); 4],
                    time: (0..4).collect(),
                })
            },
        })
        .collect()
}

/// encode → decode → encode must be byte-identical.
fn assert_request_round_trips(req: &Request) {
    let bytes = encode_request(req);
    let decoded = decode_request(&bytes).expect("decode of a freshly encoded request");
    assert_eq!(decoded.endpoint(), req.endpoint());
    assert_eq!(encode_request(&decoded), bytes);
}

fn assert_response_round_trips(resp: &Response) {
    let bytes = encode_response(resp);
    let decoded = decode_response(&bytes).expect("decode of a freshly encoded response");
    assert_eq!(decoded.kind(), resp.kind());
    assert_eq!(encode_response(&decoded), bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_request_variant_round_trips(
        nodes in 1usize..12,
        cols in 1u32..9,
        ncand in 0usize..6,
        fom_raw in any::<u8>(),
        deadline in 0u64..10_000,
        with_deadline in any::<bool>(),
        use_cache in any::<bool>(),
        contention in any::<bool>(),
    ) {
        let graph = wide(nodes);
        let machine = MachineConfig::linear(cols);
        let deadline_ms = with_deadline.then_some(deadline);
        let mapping = Mapping::serial(&graph)
            .resolve(&graph, &machine)
            .expect("serial mapping resolves");

        let variants = vec![
            Request::Ping,
            Request::Tune(TuneRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                fom: fom_from(fom_raw),
                candidates: candidates(ncand),
                deadline_ms,
                max_candidates: with_deadline.then_some(deadline + 1),
                convergence_window: use_cache.then_some(8),
                refinement: None,
                use_cache,
            }),
            Request::Evaluate(EvaluateRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                mapping: mapping.clone(),
                deadline_ms,
            }),
            Request::Simulate(SimulateRequest {
                graph,
                machine,
                mapping,
                inputs: vec![],
                contention,
                deadline_ms,
            }),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in &variants {
            assert_request_round_trips(req);
        }
    }

    #[test]
    fn every_response_variant_round_trips(
        offered in 0u64..5_000,
        evaluated in 0u64..5_000,
        violations in 0u64..100,
        depth in 0u64..64,
        cycles in 1i64..100_000,
        slow in 0.0f64..4.0,
        cancelled in any::<bool>(),
    ) {
        // A reply with real nested payloads (CostReport, TunedMapping)
        // is exercised end-to-end by the integration tests; here the
        // variants carry every scalar shape the wire can express.
        let variants = vec![
            Response::Pong,
            Response::Tuned(TuneReply {
                best: None,
                offered,
                evaluated,
                pruned: offered.saturating_sub(evaluated),
                cache: "miss".to_string(),
                fell_back: evaluated == 0,
                cancelled,
                wall_ms: slow * 10.0,
            }),
            Response::Evaluated(EvaluateReply {
                legal: violations == 0,
                violations,
                report: None,
            }),
            Response::Simulated(SimulateReply {
                cycles_scheduled: cycles,
                cycles_actual: cycles + violations as i64,
                slowdown: slow,
                stalled_elements: violations,
                total_stall_cycles: violations * 2,
                messages_delivered: offered,
                link_wait_cycles: evaluated,
                predicted_energy_fj: slow * 1e6,
                simulated_energy_fj: slow * 1e6,
            }),
            Response::Stats(Box::new(fm_serve::metrics::Metrics::default().snapshot(depth as usize))),
            Response::Busy(BusyReply { queue_depth: depth, queue_capacity: depth }),
            Response::ShuttingDown,
            Response::Failed(FailReply {
                kind: "deadline".to_string(),
                error: "deadline expired before execution".to_string(),
            }),
        ];
        for resp in &variants {
            assert_response_round_trips(resp);
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors_not_panics(
        cut in 0usize..64,
        ncand in 0usize..4,
    ) {
        let mut buf = Vec::new();
        let req = Request::Tune(TuneRequest {
            graph: wide(3),
            machine: MachineConfig::linear(2),
            fom: FigureOfMerit::Time,
            candidates: candidates(ncand),
            deadline_ms: None,
            max_candidates: None,
            convergence_window: None,
            refinement: None,
            use_cache: false,
        });
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let mut r = std::io::Cursor::new(&buf[..cut]);
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { expected, got }) => {
                prop_assert!(got < expected);
            }
            Ok(_) => prop_assert!(false, "a cut frame cannot read back whole"),
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation(
        excess in 1usize..1_000_000,
        max in 16usize..4096,
    ) {
        // Header claims max+excess bytes; only 2 junk bytes follow. If
        // the reader allocated or waited for the claimed length this
        // would hang or balloon; it must fail fast on the header alone.
        let mut buf = Vec::new();
        buf.extend_from_slice(&((max + excess) as u32).to_be_bytes());
        buf.extend_from_slice(b"xx");
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r, max) {
            Err(WireError::Oversized { len, max: m }) => {
                prop_assert_eq!(len, max + excess);
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn garbage_payloads_decode_to_malformed(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Random bytes are (overwhelmingly) not a valid request. If by
        // cosmic luck they are, decoding must still not panic — both
        // outcomes are acceptable, crashing is not.
        match decode_request(&bytes) {
            Err(WireError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error kind {}", other),
            Ok(_) => {}
        }
        match decode_response(&bytes) {
            Err(WireError::Malformed(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error kind {}", other),
            Ok(_) => {}
        }
    }

    #[test]
    fn valid_json_of_the_wrong_shape_is_rejected(
        n in any::<u32>(),
    ) {
        let shapes = vec![
            format!("{n}"),
            format!("[{n}, {n}]"),
            format!("{{\"NotARequest\": {n}}}"),
            format!("{{\"Tune\": {n}}}"),
            "\"PingPong\"".to_string(),
            "null".to_string(),
        ];
        for s in &shapes {
            prop_assert!(matches!(
                decode_request(s.as_bytes()),
                Err(WireError::Malformed(_))
            ), "accepted {}", s);
        }
    }
}
