//! End-to-end session tests: a real server on an ephemeral port, real
//! TCP clients streaming graph edits, warm re-tunes checked
//! bit-for-bit against cold client-side references, typed
//! `NoSuchSession` misses, idle eviction, and metrics reconciliation.

use std::time::Duration;

use fm_autotune::Tuner;
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::mutate::{apply_edit, GraphEdit};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::client::{Client, ClientError};
use fm_serve::protocol::{
    Request, Response, SessionEditRequest, SessionOpenRequest, SessionTuneRequest, WireCandidate,
};
use fm_serve::server::{Server, ServerConfig};

fn chain(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("session-chain", 32);
    g.add_node(CExpr::konst(Value::ZERO), vec![], vec![0]);
    for i in 1..n {
        g.add_node(
            CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            vec![(i - 1) as u32],
            vec![i as i64],
        );
    }
    g
}

/// The candidate set is frozen at `SessionOpen` — a serial table (goes
/// unresolvable across length changes, exercising the fallback and
/// rebuild paths) plus an everything-on-PE0 affine schedule (legal on
/// any chain, any length), so sessions always keep a real winner.
fn candidates(g: &DataflowGraph) -> Vec<WireCandidate> {
    vec![
        WireCandidate {
            label: "serial".to_string(),
            mapping: Mapping::serial(g),
        },
        WireCandidate {
            label: "affine0".to_string(),
            mapping: Mapping::Affine(AffineMap {
                place: PlaceExpr::row0(IdxExpr::c(0)),
                time: IdxExpr::i(),
            }),
        },
    ]
}

fn open_request(g: &DataflowGraph, m: &MachineConfig) -> SessionOpenRequest {
    SessionOpenRequest {
        graph: g.clone(),
        machine: m.clone(),
        fom: FigureOfMerit::Time,
        candidates: candidates(g),
        max_candidates: None,
        convergence_window: None,
        cost_model: None,
    }
}

/// Cold-tune `g` locally with the same defaults the server uses — and
/// the same *frozen* candidate set the session opened with — and
/// return the winner's (label, score bits) for comparison.
fn cold_reference(g: &DataflowGraph, m: &MachineConfig, frozen: &[WireCandidate]) -> (String, u64) {
    let ev = Evaluator::new(g, m);
    let cands: Vec<MappingCandidate> = frozen
        .iter()
        .map(|c| MappingCandidate::new(c.label.clone(), c.mapping.clone()))
        .collect();
    let report = Tuner::new(&ev, g, m, FigureOfMerit::Time).tune(&cands);
    let best = report.best.expect("cold reference found a winner");
    (best.label, best.score.to_bits())
}

fn start(config: ServerConfig) -> fm_serve::server::ServerHandle {
    Server::start("127.0.0.1:0", config).expect("bind ephemeral port")
}

#[test]
fn session_lifecycle_warm_tunes_match_cold_reference() {
    let mut g = chain(6);
    let mut m = MachineConfig::linear(4);
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let frozen = candidates(&g);
    let opened = client.session_open(open_request(&g, &m)).unwrap();
    assert_eq!(opened.epoch, 0);
    assert_eq!(opened.candidates, 2);
    let sid = opened.session_id;

    // Three edit batches; after each, the warm server-side tune must
    // land on the same winner as a cold local tune of the mirror.
    let batches: Vec<Vec<GraphEdit>> = vec![
        vec![GraphEdit::AddNode {
            expr: CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            deps: vec![5],
            index: vec![6],
            output: false,
        }],
        vec![
            GraphEdit::ResizeTile { tile_bits: 4096 },
            GraphEdit::RetargetEdge {
                node: 6,
                slot: 0,
                new_dep: 0,
            },
        ],
        vec![GraphEdit::RemoveNode { id: 6 }],
    ];
    let mut epoch = 0;
    let mut total_edits = 0u64;
    for batch in batches {
        for edit in &batch {
            apply_edit(&mut g, &mut m, edit).expect("mirror edit applies");
        }
        total_edits += batch.len() as u64;
        let edited = client.session_edit(sid, epoch, batch).unwrap();
        assert_eq!(edited.epoch, epoch + 1);
        epoch = edited.epoch;

        let tuned = client.session_tune(sid, None).unwrap();
        assert_eq!(tuned.epoch, epoch);
        assert!(!tuned.reply.fell_back);
        let best = tuned.reply.best.as_ref().expect("session tune won");
        let (label, score_bits) = cold_reference(&g, &m, &frozen);
        assert_eq!(best.label, label);
        assert_eq!(best.score.to_bits(), score_bits);
    }

    let closed = client.session_close(sid).unwrap();
    assert_eq!(closed.epoch, 3);
    assert_eq!(closed.edits_applied, total_edits);
    assert_eq!(closed.tunes, 3);

    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions.opened, 1);
    assert_eq!(stats.sessions.closed, 1);
    assert_eq!(stats.sessions.open, 0);
    assert_eq!(stats.sessions.edits_applied, total_edits);
    assert_eq!(stats.sessions.edit_batches, 3);
    // The length-restoring RemoveNode forces exactly one cold rebuild
    // of the table candidate; every other tune repairs warm.
    assert_eq!(stats.sessions.warm_tunes, 2);
    assert_eq!(stats.sessions.cold_tunes, 1);
    assert_eq!(stats.sessions.cold_rebuilds, 1);
    assert!(stats.sessions.mean_dirty_cone > 0.0);

    handle.shutdown_and_join();
}

#[test]
fn unknown_stale_and_corrupt_session_requests_are_typed() {
    let g = chain(4);
    let m = MachineConfig::linear(4);
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // A session id that was never issued: typed miss on every endpoint.
    let resize = vec![GraphEdit::ResizeTile { tile_bits: 512 }];
    let err = client.session_edit(999, 0, resize.clone()).unwrap_err();
    assert!(err.is_no_such_session(), "edit: {err}");
    let err = client.session_tune(999, None).unwrap_err();
    assert!(err.is_no_such_session(), "tune: {err}");
    let err = client.session_close(999).unwrap_err();
    assert!(err.is_no_such_session(), "close: {err}");

    let sid = client
        .session_open(open_request(&g, &m))
        .unwrap()
        .session_id;

    // A stale epoch is a session failure, not a miss.
    match client.session_edit(sid, 7, resize.clone()).unwrap_err() {
        ClientError::Failed(f) => {
            assert_eq!(f.kind, "session");
            assert!(f.error.contains("stale epoch"), "{}", f.error);
        }
        other => panic!("expected Failed(session), got {other}"),
    }

    // A tampered checksum is refused before any state is touched.
    let mut sealed = SessionEditRequest::seal(sid, 0, resize);
    sealed.checksum ^= 1;
    match client.call(&Request::SessionEdit(sealed)).unwrap() {
        Response::Failed(f) => {
            assert_eq!(f.kind, "session");
            assert!(f.error.contains("checksum"), "{}", f.error);
        }
        other => panic!("expected Failed(session), got {}", other.kind()),
    }

    // Closing twice: the second close sees a dead id (never reused).
    client.session_close(sid).unwrap();
    let err = client.session_close(sid).unwrap_err();
    assert!(err.is_no_such_session(), "double close: {err}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions.no_such, 4);
    assert_eq!(stats.sessions.open, 0);
    // Neither the stale-epoch nor the corrupt batch applied anything.
    assert_eq!(stats.sessions.edits_applied, 0);

    handle.shutdown_and_join();
}

#[test]
fn idle_sessions_are_evicted_and_counted() {
    let g = chain(4);
    let m = MachineConfig::linear(4);
    let handle = start(ServerConfig {
        session_ttl: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let sid = client
        .session_open(open_request(&g, &m))
        .unwrap()
        .session_id;

    // Wait out the ttl (sweeper ticks every ttl/4): the session must be
    // gone, and the client sees the typed miss it can reopen from.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let stats = client.stats().unwrap();
        if stats.sessions.evicted >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session was never evicted"
        );
    }
    let err = client.session_tune(sid, None).unwrap_err();
    assert!(err.is_no_such_session(), "{err}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions.evicted, 1);
    assert_eq!(stats.sessions.open, 0);
    assert_eq!(stats.sessions.closed, 0);

    handle.shutdown_and_join();
}

#[test]
fn concurrent_disjoint_sessions_stay_isolated() {
    const CLIENTS: usize = 2;
    const ROUNDS: usize = 4;

    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                // Different sizes per client: a cross-session mixup
                // would change the winner's score, not just a label.
                let mut g = chain(5 + 3 * t);
                let mut m = MachineConfig::linear(4);
                let frozen = candidates(&g);
                let mut client = Client::connect(addr).unwrap();
                let opened = client.session_open(open_request(&g, &m)).unwrap();
                let sid = opened.session_id;
                let mut epoch = opened.epoch;
                for round in 0..ROUNDS {
                    let id = g.nodes.len() as u32 - 1;
                    let edit = GraphEdit::AddNode {
                        expr: CExpr::dep(0).add(CExpr::konst(Value::real(round as f64))),
                        deps: vec![id],
                        index: vec![i64::from(id) + 1],
                        output: false,
                    };
                    apply_edit(&mut g, &mut m, &edit).expect("mirror edit applies");
                    let edited = client.session_edit(sid, epoch, vec![edit]).unwrap();
                    epoch = edited.epoch;
                    let tuned = client.session_tune(sid, None).unwrap();
                    let best = tuned.reply.best.as_ref().expect("winner");
                    let (label, score_bits) = cold_reference(&g, &m, &frozen);
                    assert_eq!(best.label, label, "client {t} round {round}");
                    assert_eq!(best.score.to_bits(), score_bits, "client {t} round {round}");
                }
                let closed = client.session_close(sid).unwrap();
                assert_eq!(closed.epoch, ROUNDS as u64);
                assert_eq!(closed.edits_applied, ROUNDS as u64);
                sid
            })
        })
        .collect();
    let mut sids: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    sids.sort_unstable();
    sids.dedup();
    assert_eq!(sids.len(), CLIENTS, "session ids must be distinct");

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions.opened, CLIENTS as u64);
    assert_eq!(stats.sessions.closed, CLIENTS as u64);
    assert_eq!(stats.sessions.open, 0);
    assert_eq!(stats.sessions.edits_applied, (CLIENTS * ROUNDS) as u64);
    assert_eq!(
        stats.sessions.warm_tunes + stats.sessions.cold_tunes,
        (CLIENTS * ROUNDS) as u64
    );

    handle.shutdown_and_join();
}

#[test]
fn session_cost_model_is_baked_at_open_and_switches_are_refused() {
    let g = chain(6);
    let m = MachineConfig::linear(4);
    let handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // An unknown model at open is the same typed refusal tunes get.
    let mut bad = open_request(&g, &m);
    bad.cost_model = Some("quantum".to_string());
    let err = client.session_open(bad).expect_err("unknown model at open");
    assert!(err.is_unknown_cost_model(), "got {err}");

    // Open under roofline, then try to tune under spatial: refused
    // with a typed reply that names both models, and the session is
    // untouched — the same id still tunes fine afterwards.
    let mut open = open_request(&g, &m);
    open.cost_model = Some("roofline".to_string());
    let opened = client.session_open(open).unwrap();
    let switch = Request::SessionTune(SessionTuneRequest {
        session_id: opened.session_id,
        deadline_ms: None,
        cost_model: Some("spatial".to_string()),
    });
    match client.call(&switch).unwrap() {
        Response::Failed(f) => {
            assert_eq!(f.kind, "cost-model");
            assert!(
                f.error.contains("roofline") && f.error.contains("spatial"),
                "refusal names both models: {}",
                f.error
            );
        }
        other => panic!("expected Failed, got {}", other.kind()),
    }
    // Restating the session's own model is not a switch; so is saying
    // nothing at all.
    for restated in [Some("roofline".to_string()), None] {
        let req = Request::SessionTune(SessionTuneRequest {
            session_id: opened.session_id,
            deadline_ms: None,
            cost_model: restated,
        });
        match client.call(&req).unwrap() {
            Response::SessionTuned(r) => assert!(r.reply.best.is_some()),
            other => panic!("expected SessionTuned, got {}", other.kind()),
        }
    }

    let stats = handle.shutdown_and_join();
    assert_eq!(
        stats.session_tune.failed, 1,
        "exactly the switch attempt failed"
    );
    // Both successful warm tunes were observed under roofline.
    let row = stats
        .cost_models
        .iter()
        .find(|r| r.model == "roofline")
        .expect("roofline row in the observatory");
    assert_eq!(row.tunes, 2);
}
