#![warn(missing_docs)]

//! # fm-pram — a step-synchronous PRAM simulator
//!
//! Vishkin's statement (§5) rests on the PRAM: "work efficient PRAM
//! algorithms" as the abstraction programmers should write against, and
//! XMT as hardware that "to a first approximation is about reducing
//! overheads of PRAM algorithms using hardware primitives".
//!
//! This crate provides that abstraction as an executable artifact:
//!
//! * [`pram::Pram`] — a synchronous shared-memory machine. A program is
//!   a sequence of *steps*; in each step every active processor runs the
//!   same closure (parameterized by its processor id), reads see the
//!   memory as of the start of the step, and writes commit at the end.
//!   The simulator classifies every step's accesses and enforces the
//!   declared [`pram::ConcurrencyModel`] (EREW / CREW / common,
//!   arbitrary, priority CRCW), rejecting illegal concurrency exactly
//!   where a PRAM algorithms textbook would.
//! * **Work-depth accounting** — work is the total number of processor
//!   activations, depth the number of steps; [`pram::Pram::brent_time`]
//!   gives the classic `W/p + D` schedule bound.
//! * [`xmt::Xmt`] — an XMT-flavored front end: `spawn(n, …)` starts `n`
//!   virtual threads for one step, and the hardware prefix-sum
//!   primitive (`ps`) allocates unique indices within a step — the
//!   primitive XMT uses for queue-free irregular algorithms such as BFS
//!   (the paper's example of parallelism hidden by a FIFO queue).
//!
//! Everything is unit cost on purpose: this is the model the F&M side
//! of the workspace (experiments E5, E10) contrasts with physical cost.

pub mod pram;
pub mod xmt;

pub use pram::{ConcurrencyModel, Pram, PramError, StepCtx};
pub use xmt::Xmt;
