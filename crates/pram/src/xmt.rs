//! An XMT-flavored front end over the PRAM engine.
//!
//! Vishkin's XMT ("explicit multi-threading") architecture executes
//! PRAM-style programs as *spawn* blocks of virtual threads and provides
//! a hardware **prefix-sum (PS)** primitive that hands concurrent
//! threads unique consecutive indices into a shared counter — the
//! mechanism that frees irregular algorithms (the paper's example: BFS)
//! from serializing FIFO queues: every thread discovering a frontier
//! vertex calls `ps` on the next-frontier counter and writes its vertex
//! into a private slot, no lock and no queue.
//!
//! [`Xmt::spawn`] runs one such block as a single PRAM step on the
//! arbitrary-CRCW model (XMT's memory semantics). PS allocation order
//! within a block follows thread id; XMT hardware guarantees only
//! *some* serialization, and thread-id order is one valid outcome, kept
//! deterministic here for reproducibility.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::pram::{ConcurrencyModel, Pram, PramError, StepCtx};

/// The XMT machine: a PRAM plus the PS primitive and spawn accounting.
#[derive(Debug)]
pub struct Xmt {
    pram: Pram,
    spawns: u64,
}

/// A thread's view inside a spawn block.
pub struct XmtCtx<'a, 'b> {
    ctx: &'b mut StepCtx<'a>,
    ps_state: &'b RefCell<HashMap<usize, (i64, i64)>>,
}

impl XmtCtx<'_, '_> {
    /// Read shared memory (start-of-block snapshot).
    pub fn read(&mut self, addr: usize) -> i64 {
        self.ctx.read(addr)
    }

    /// Write shared memory (commits at end of block; arbitrary CRCW).
    pub fn write(&mut self, addr: usize, value: i64) {
        self.ctx.write(addr, value)
    }

    /// Prefix-sum: atomically fetch-and-increment the counter at
    /// `counter`, returning the pre-increment value. Counters updated
    /// through `ps` must not also be targets of plain `write`s in the
    /// same block.
    pub fn ps(&mut self, counter: usize) -> i64 {
        let mut map = self.ps_state.borrow_mut();
        let base = match map.get(&counter) {
            Some(&(b, _)) => b,
            None => {
                let b = self.ctx.read(counter);
                map.insert(counter, (b, 0));
                b
            }
        };
        let entry = map.get_mut(&counter).expect("just inserted");
        let v = base + entry.1;
        entry.1 += 1;
        v
    }
}

impl Xmt {
    /// A machine with `cells` words of zeroed shared memory.
    pub fn new(cells: usize) -> Self {
        Xmt {
            pram: Pram::new(ConcurrencyModel::CrcwArbitrary, cells),
            spawns: 0,
        }
    }

    /// Load data at `base`.
    pub fn load(&mut self, base: usize, data: &[i64]) {
        self.pram.load(base, data);
    }

    /// Host read.
    pub fn peek(&self, addr: usize) -> i64 {
        self.pram.peek(addr)
    }

    /// Host slice read.
    pub fn peek_slice(&self, range: std::ops::Range<usize>) -> &[i64] {
        self.pram.peek_slice(range)
    }

    /// Total work (thread activations).
    pub fn work(&self) -> u64 {
        self.pram.work()
    }

    /// Depth (spawn blocks executed).
    pub fn depth(&self) -> u64 {
        self.pram.depth()
    }

    /// Number of spawn blocks (== depth; kept for readability).
    pub fn spawns(&self) -> u64 {
        self.spawns
    }

    /// Brent's bound on `p` physical TCUs.
    pub fn brent_time(&self, p: u64) -> u64 {
        self.pram.brent_time(p)
    }

    /// Run one spawn block of `n` virtual threads.
    pub fn spawn<F>(&mut self, n: usize, f: F) -> Result<(), PramError>
    where
        F: Fn(usize, &mut XmtCtx<'_, '_>),
    {
        let ps_state: RefCell<HashMap<usize, (i64, i64)>> = RefCell::new(HashMap::new());
        self.pram.step(n, |tid, ctx| {
            let mut xctx = XmtCtx {
                ctx,
                ps_state: &ps_state,
            };
            f(tid, &mut xctx);
        })?;
        // Commit PS counters: base + number of allocations.
        for (addr, (base, count)) in ps_state.into_inner() {
            self.pram.load(addr, &[base + count]);
        }
        self.spawns += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_hands_out_unique_indices() {
        let mut x = Xmt::new(64);
        // Counter at 0, initially 5. 8 threads each allocate one slot
        // and record their index at 8+tid.
        x.load(0, &[5]);
        x.spawn(8, |tid, ctx| {
            let slot = ctx.ps(0);
            ctx.write(8 + tid, slot);
        })
        .unwrap();
        let mut slots = x.peek_slice(8..16).to_vec();
        slots.sort_unstable();
        assert_eq!(slots, (5..13).collect::<Vec<i64>>());
        assert_eq!(x.peek(0), 13); // counter advanced by 8
    }

    #[test]
    fn ps_multiple_counters_independent() {
        let mut x = Xmt::new(16);
        x.load(0, &[100, 200]);
        x.spawn(4, |tid, ctx| {
            let c = tid % 2;
            let v = ctx.ps(c);
            ctx.write(4 + tid, v);
        })
        .unwrap();
        assert_eq!(x.peek(0), 102);
        assert_eq!(x.peek(1), 202);
    }

    #[test]
    fn spawn_work_depth_accounting() {
        let mut x = Xmt::new(8);
        x.spawn(8, |tid, ctx| ctx.write(tid % 8, 1)).unwrap();
        x.spawn(2, |tid, ctx| ctx.write(tid, 2)).unwrap();
        assert_eq!(x.work(), 10);
        assert_eq!(x.depth(), 2);
        assert_eq!(x.spawns(), 2);
    }

    #[test]
    fn arbitrary_crcw_commits_deterministically() {
        let mut x = Xmt::new(1);
        x.spawn(4, |tid, ctx| ctx.write(0, 10 + tid as i64))
            .unwrap();
        assert_eq!(x.peek(0), 10); // lowest thread id wins
    }

    #[test]
    fn queue_free_frontier_compaction() {
        // The BFS inner idiom: threads 0..8, the even ones "discover" a
        // vertex and append it to a compacted buffer via PS — no queue,
        // no lock, depth 1.
        let mut x = Xmt::new(32);
        // next-frontier counter at 0 (buffer base 16).
        x.spawn(8, |tid, ctx| {
            if tid % 2 == 0 {
                let idx = ctx.ps(0);
                ctx.write(16 + idx as usize, tid as i64);
            }
        })
        .unwrap();
        assert_eq!(x.peek(0), 4);
        let mut found = x.peek_slice(16..20).to_vec();
        found.sort_unstable();
        assert_eq!(found, vec![0, 2, 4, 6]);
        assert_eq!(x.depth(), 1);
    }
}
