//! The synchronous PRAM engine.
//!
//! A PRAM program is a sequence of *steps*. Within a step, `active`
//! processors each execute the same closure; every read observes the
//! shared memory as it stood at the start of the step, and all writes
//! commit simultaneously at the end. The engine records every access so
//! it can (a) enforce the declared concurrency model and (b) account
//! work and depth exactly.

use serde::Serialize;

/// PRAM concurrency models, in increasing permissiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ConcurrencyModel {
    /// Exclusive read, exclusive write.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent write allowed only when all writers write the same
    /// value.
    CrcwCommon,
    /// On concurrent write an arbitrary writer wins (deterministically:
    /// the lowest processor id, so runs are reproducible).
    CrcwArbitrary,
    /// The lowest-id (highest-priority) writer wins.
    CrcwPriority,
}

/// Concurrency violations and access errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PramError {
    /// Two processors read one cell under EREW.
    ReadConflict {
        /// Step index (0-based).
        step: u64,
        /// Conflicted address.
        addr: usize,
    },
    /// Two processors wrote one cell under EREW/CREW.
    WriteConflict {
        /// Step index.
        step: u64,
        /// Conflicted address.
        addr: usize,
    },
    /// Common-CRCW writers disagreed on the value.
    CommonWriteMismatch {
        /// Step index.
        step: u64,
        /// Conflicted address.
        addr: usize,
    },
    /// Access beyond the memory size.
    OutOfBounds {
        /// Step index.
        step: u64,
        /// Offending address.
        addr: usize,
    },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PramError::ReadConflict { step, addr } => {
                write!(f, "step {step}: EREW read conflict at {addr}")
            }
            PramError::WriteConflict { step, addr } => {
                write!(f, "step {step}: exclusive-write conflict at {addr}")
            }
            PramError::CommonWriteMismatch { step, addr } => {
                write!(f, "step {step}: common-CRCW writers disagree at {addr}")
            }
            PramError::OutOfBounds { step, addr } => {
                write!(f, "step {step}: access out of bounds at {addr}")
            }
        }
    }
}

impl std::error::Error for PramError {}

/// A processor's view of one step: start-of-step reads, buffered writes.
pub struct StepCtx<'a> {
    mem: &'a [i64],
    reads: Vec<usize>,
    writes: Vec<(usize, i64)>,
    oob: Vec<usize>,
}

impl StepCtx<'_> {
    /// Read a cell (start-of-step snapshot). Out-of-bounds reads return
    /// 0 and are reported when the step commits.
    pub fn read(&mut self, addr: usize) -> i64 {
        if addr >= self.mem.len() {
            self.oob.push(addr);
            return 0;
        }
        self.reads.push(addr);
        self.mem[addr]
    }

    /// Buffer a write (commits at end of step).
    pub fn write(&mut self, addr: usize, value: i64) {
        if addr >= self.mem.len() {
            self.oob.push(addr);
            return;
        }
        self.writes.push((addr, value));
    }
}

/// The PRAM machine.
///
/// ```
/// use fm_pram::{ConcurrencyModel, Pram};
///
/// let mut pram = Pram::new(ConcurrencyModel::Crew, 8);
/// pram.load(0, &[1, 2, 3, 4]);
/// // One step: 4 processors each double their cell.
/// pram.step(4, |i, ctx| {
///     let v = ctx.read(i);
///     ctx.write(i, 2 * v);
/// }).unwrap();
/// assert_eq!(pram.peek_slice(0..4), &[2, 4, 6, 8]);
/// assert_eq!(pram.work(), 4);
/// assert_eq!(pram.depth(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pram {
    /// Declared concurrency model, enforced at every step.
    pub model: ConcurrencyModel,
    mem: Vec<i64>,
    work: u64,
    depth: u64,
}

impl Pram {
    /// A machine with `cells` words of shared memory, all zero.
    pub fn new(model: ConcurrencyModel, cells: usize) -> Self {
        Pram {
            model,
            mem: vec![0; cells],
            work: 0,
            depth: 0,
        }
    }

    /// Load data into shared memory starting at `base`.
    pub fn load(&mut self, base: usize, data: &[i64]) {
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Read a cell outside any step (host access, not accounted).
    pub fn peek(&self, addr: usize) -> i64 {
        self.mem[addr]
    }

    /// A slice of memory (host access).
    pub fn peek_slice(&self, range: std::ops::Range<usize>) -> &[i64] {
        &self.mem[range]
    }

    /// Total processor activations so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Steps executed so far.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Brent's bound for the program so far on `p` processors:
    /// `⌈W/p⌉ + D` unit steps.
    pub fn brent_time(&self, p: u64) -> u64 {
        assert!(p > 0, "processor count must be positive");
        self.work.div_ceil(p) + self.depth
    }

    /// Execute one step on `active` processors. The closure runs once
    /// per processor id `0..active` against a [`StepCtx`].
    ///
    /// Fails (without committing any write) on the first concurrency
    /// violation of the declared model.
    pub fn step<F>(&mut self, active: usize, f: F) -> Result<(), PramError>
    where
        F: Fn(usize, &mut StepCtx<'_>),
    {
        let step_idx = self.depth;
        // Run all processors against the snapshot.
        let mut all_reads: Vec<(usize, usize)> = Vec::new(); // (addr, proc)
        let mut all_writes: Vec<(usize, usize, i64)> = Vec::new(); // (addr, proc, val)
        for proc in 0..active {
            let mut ctx = StepCtx {
                mem: &self.mem,
                reads: Vec::new(),
                writes: Vec::new(),
                oob: Vec::new(),
            };
            f(proc, &mut ctx);
            if let Some(&addr) = ctx.oob.first() {
                return Err(PramError::OutOfBounds {
                    step: step_idx,
                    addr,
                });
            }
            for addr in ctx.reads {
                all_reads.push((addr, proc));
            }
            for (addr, val) in ctx.writes {
                all_writes.push((addr, proc, val));
            }
        }

        // Enforce the model.
        match self.model {
            ConcurrencyModel::Erew => {
                // At most one toucher (reader or writer) per cell; a
                // single processor may both read and write its own cell.
                if let Some(addr) = first_conflict(&all_reads) {
                    return Err(PramError::ReadConflict {
                        step: step_idx,
                        addr,
                    });
                }
                if let Some(addr) = first_write_conflict(&all_writes) {
                    return Err(PramError::WriteConflict {
                        step: step_idx,
                        addr,
                    });
                }
                // Note: a cell read by one processor and written by
                // another in the same step is legal under EREW — the
                // PRAM step has distinct read and write phases, and
                // exclusivity applies within each phase.
            }
            ConcurrencyModel::Crew => {
                if let Some(addr) = first_write_conflict(&all_writes) {
                    return Err(PramError::WriteConflict {
                        step: step_idx,
                        addr,
                    });
                }
            }
            ConcurrencyModel::CrcwCommon => {
                let mut by_addr = all_writes.clone();
                by_addr.sort_unstable();
                for w in by_addr.windows(2) {
                    if w[0].0 == w[1].0 && w[0].2 != w[1].2 {
                        return Err(PramError::CommonWriteMismatch {
                            step: step_idx,
                            addr: w[0].0,
                        });
                    }
                }
            }
            ConcurrencyModel::CrcwArbitrary | ConcurrencyModel::CrcwPriority => {}
        }

        // Commit writes. For arbitrary/priority CRCW the lowest proc id
        // wins (deterministic); for the exclusive models there is at
        // most one writer per cell by now; for common all writers agree.
        all_writes.sort_by_key(|&(addr, proc, _)| (addr, proc));
        let mut last_addr = usize::MAX;
        for (addr, _proc, val) in all_writes {
            if addr != last_addr {
                self.mem[addr] = val;
                last_addr = addr;
            }
        }

        self.work += active as u64;
        self.depth += 1;
        Ok(())
    }
}

/// First address touched by two different processors.
fn first_conflict(accesses: &[(usize, usize)]) -> Option<usize> {
    let mut v = accesses.to_vec();
    v.sort_unstable();
    v.dedup(); // same proc reading twice is fine
    for w in v.windows(2) {
        if w[0].0 == w[1].0 {
            return Some(w[0].0);
        }
    }
    None
}

/// First address written by two different processors.
fn first_write_conflict(writes: &[(usize, usize, i64)]) -> Option<usize> {
    let mut v: Vec<(usize, usize)> = writes.iter().map(|&(a, p, _)| (a, p)).collect();
    v.sort_unstable();
    v.dedup();
    for w in v.windows(2) {
        if w[0].0 == w[1].0 {
            return Some(w[0].0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_commit_at_end_of_step() {
        // Parallel swap: proc 0 and 1 exchange cells — only correct
        // because reads snapshot the start of the step.
        let mut p = Pram::new(ConcurrencyModel::Erew, 2);
        p.load(0, &[10, 20]);
        p.step(2, |proc, ctx| {
            let v = ctx.read(1 - proc);
            ctx.write(proc, v);
        })
        .unwrap();
        assert_eq!(p.peek(0), 20);
        assert_eq!(p.peek(1), 10);
    }

    #[test]
    fn erew_read_conflict_detected() {
        let mut p = Pram::new(ConcurrencyModel::Erew, 4);
        let err = p
            .step(2, |_proc, ctx| {
                ctx.read(0);
            })
            .unwrap_err();
        assert_eq!(err, PramError::ReadConflict { step: 0, addr: 0 });
    }

    #[test]
    fn crew_allows_concurrent_read() {
        let mut p = Pram::new(ConcurrencyModel::Crew, 4);
        p.load(0, &[7]);
        p.step(3, |proc, ctx| {
            let v = ctx.read(0);
            ctx.write(1 + proc, v);
        })
        .unwrap();
        assert_eq!(p.peek_slice(1..4), &[7, 7, 7]);
    }

    #[test]
    fn crew_write_conflict_detected() {
        let mut p = Pram::new(ConcurrencyModel::Crew, 4);
        let err = p
            .step(2, |_proc, ctx| {
                ctx.write(3, 1);
            })
            .unwrap_err();
        assert_eq!(err, PramError::WriteConflict { step: 0, addr: 3 });
    }

    #[test]
    fn common_crcw_requires_agreement() {
        let mut p = Pram::new(ConcurrencyModel::CrcwCommon, 4);
        // Agreeing writers: fine.
        p.step(3, |_proc, ctx| ctx.write(0, 42)).unwrap();
        assert_eq!(p.peek(0), 42);
        // Disagreeing writers: rejected.
        let err = p
            .step(2, |proc, ctx| ctx.write(1, proc as i64))
            .unwrap_err();
        assert_eq!(err, PramError::CommonWriteMismatch { step: 1, addr: 1 });
    }

    #[test]
    fn priority_crcw_lowest_id_wins() {
        let mut p = Pram::new(ConcurrencyModel::CrcwPriority, 2);
        p.step(4, |proc, ctx| ctx.write(0, 100 + proc as i64))
            .unwrap();
        assert_eq!(p.peek(0), 100);
    }

    #[test]
    fn erew_allows_read_and_write_across_phases() {
        // One processor reads a cell, another writes it: legal — the
        // step's read phase precedes its write phase, and the reader
        // observes the old value.
        let mut p = Pram::new(ConcurrencyModel::Erew, 3);
        p.load(0, &[1]);
        p.step(2, |proc, ctx| {
            if proc == 0 {
                let v = ctx.read(0);
                ctx.write(1, v);
            } else {
                ctx.write(0, 5);
            }
        })
        .unwrap();
        assert_eq!(p.peek(1), 1); // reader saw the pre-step value
        assert_eq!(p.peek(0), 5);
    }

    #[test]
    fn failed_step_commits_nothing_and_counts_nothing() {
        let mut p = Pram::new(ConcurrencyModel::Crew, 2);
        p.load(0, &[1, 2]);
        let _ = p.step(2, |_proc, ctx| ctx.write(0, 9)).unwrap_err();
        assert_eq!(p.peek(0), 1);
        assert_eq!(p.work(), 0);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut p = Pram::new(ConcurrencyModel::Crew, 2);
        let err = p
            .step(1, |_proc, ctx| {
                ctx.read(10);
            })
            .unwrap_err();
        assert_eq!(err, PramError::OutOfBounds { step: 0, addr: 10 });
    }

    #[test]
    fn work_depth_accounting() {
        let mut p = Pram::new(ConcurrencyModel::Crew, 16);
        p.step(8, |proc, ctx| ctx.write(proc, 1)).unwrap();
        p.step(4, |proc, ctx| ctx.write(proc + 8, 1)).unwrap();
        assert_eq!(p.work(), 12);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.brent_time(4), 3 + 2);
        assert_eq!(p.brent_time(1), 12 + 2);
    }

    #[test]
    fn parallel_prefix_sum_log_depth() {
        // Classic Hillis-Steele inclusive scan in a CREW PRAM: depth
        // log2(n), work n·log2(n). (Blelloch's work-efficient version
        // lives in fm-kernels; this exercises the engine.)
        let n = 16usize;
        let mut p = Pram::new(ConcurrencyModel::Crew, 2 * n);
        let data: Vec<i64> = (1..=n as i64).collect();
        p.load(0, &data);
        let mut src = 0usize;
        let mut dst = n;
        let mut stride = 1usize;
        while stride < n {
            p.step(n, |i, ctx| {
                let v = ctx.read(src + i);
                let sum = if i >= stride {
                    v + ctx.read(src + i - stride)
                } else {
                    v
                };
                ctx.write(dst + i, sum);
            })
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
            stride *= 2;
        }
        let result = p.peek_slice(src..src + n).to_vec();
        let expected: Vec<i64> = (1..=n as i64).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(result, expected);
        assert_eq!(p.depth(), 4); // log2(16)
        assert_eq!(p.work(), 64); // n per level × 4 levels
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn brent_zero_processors_rejected() {
        Pram::new(ConcurrencyModel::Crew, 1).brent_time(0);
    }
}
