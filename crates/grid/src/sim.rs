//! The cycle-driven simulation engine.
//!
//! [`Simulator::run`] executes a mapped dataflow graph on the grid:
//!
//! * Each PE issues its elements **in scheduled order**, up to its issue
//!   width per cycle, as soon as (a) the element's scheduled cycle has
//!   arrived and (b) every operand is physically present in the PE.
//! * A produced value is usable at its own PE on the next cycle. For
//!   each remote consumer a message is injected that crosses its first
//!   link in the producing cycle (the systolic clock covers compute +
//!   one hop) and one link per cycle after that, X-Y routed.
//! * Links are wormhole-occupied: a message of `W` bits holds each link
//!   for `⌈W / link_width⌉` cycles; contending messages queue, and the
//!   delay propagates to consumers as *stall cycles* — the gap between
//!   the mapping's promised makespan and physical reality.
//! * Every op, tile access, message, and DRAM fetch is charged with the
//!   same formulas as `fm-core`'s analytic evaluator, so for a legal
//!   mapping total energy matches the prediction exactly.
//!
//! Input tensors are pre-distributed during a load phase before cycle 0
//! (per their [`InputPlacement`]); their movement is charged but not
//! NoC-simulated, matching the evaluator's accounting.

use std::collections::HashMap;

use serde::Serialize;

use fm_core::dataflow::{DataflowGraph, NodeId};
use fm_core::legality;
use fm_core::machine::MachineConfig;
use fm_core::mapping::{InputPlacement, ResolvedMapping};
use fm_core::value::Value;

use fm_costmodel::EnergyLedger;

use crate::router::{xy_path, Link};

/// Simulator knobs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimConfig {
    /// Model link contention (wormhole occupancy). With `false`, links
    /// have infinite bandwidth and a legal mapping runs exactly on
    /// schedule.
    pub contention: bool,
    /// Charge one off-chip transfer per output element at the end.
    pub writeback_outputs: bool,
    /// Hang guard: abort after `makespan × factor + 1024` cycles.
    pub max_cycles_factor: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            contention: true,
            writeback_outputs: false,
            max_cycles_factor: 64,
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimError {
    /// The mapping failed the static legality check (`violations` is
    /// the exact count); the simulator only executes legal mappings.
    MappingIllegal {
        /// Total violations found.
        violations: u64,
    },
    /// The run exceeded the hang guard (indicates a simulator bug or an
    /// absurd contention factor).
    Hung {
        /// Cycle at which the guard fired.
        at_cycle: i64,
        /// Elements executed so far.
        executed: usize,
        /// Total elements.
        total: usize,
    },
    /// Wrong number of input tensors supplied.
    InputArity {
        /// Expected (from the graph).
        expected: usize,
        /// Supplied.
        got: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MappingIllegal { violations } => {
                write!(f, "mapping is illegal ({violations} violations)")
            }
            SimError::Hung {
                at_cycle,
                executed,
                total,
            } => write!(
                f,
                "simulation hung at cycle {at_cycle} ({executed}/{total} executed)"
            ),
            SimError::InputArity { expected, got } => {
                write!(f, "expected {expected} input tensors, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a simulation.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// Every node's computed value.
    pub values: Vec<Value>,
    /// The mapping's promised makespan.
    pub cycles_scheduled: i64,
    /// Cycles actually taken (≥ scheduled; equal when no contention).
    pub cycles_actual: i64,
    /// Elements that executed later than scheduled.
    pub stalled_elements: u64,
    /// Total cycles of lateness across all elements.
    pub total_stall_cycles: u64,
    /// Energy/traffic, charged with the evaluator's formulas.
    pub ledger: EnergyLedger,
    /// Messages delivered over the NoC.
    pub messages_delivered: u64,
    /// Per-PE busy cycles (elements executed), keyed by coordinates.
    pub pe_busy: Vec<((u32, u32), u64)>,
    /// Per-link traversal counts for links that carried traffic,
    /// sorted by descending count (the NoC heat map).
    pub link_traversals: Vec<(Link, u64)>,
    /// Total cycles messages spent blocked on busy links.
    pub link_wait_cycles: u64,
}

impl SimResult {
    /// Ratio of actual to scheduled cycles (1.0 = the model's promise
    /// held exactly).
    pub fn slowdown(&self) -> f64 {
        self.cycles_actual as f64 / self.cycles_scheduled.max(1) as f64
    }

    /// The busiest link and its traversal count, if any traffic flowed.
    pub fn hottest_link(&self) -> Option<(Link, u64)> {
        self.link_traversals.first().copied()
    }

    /// Mean PE occupancy: busy cycles / (PEs used × actual cycles).
    pub fn mean_pe_occupancy(&self) -> f64 {
        if self.pe_busy.is_empty() || self.cycles_actual == 0 {
            return 0.0;
        }
        let busy: u64 = self.pe_busy.iter().map(|&(_, b)| b).sum();
        busy as f64 / (self.pe_busy.len() as f64 * self.cycles_actual as f64)
    }
}

/// A message in flight.
struct Msg {
    node: NodeId,
    dest: (u32, u32),
    path: Vec<Link>,
    hop: usize,
    /// Earliest cycle at which the next hop may be attempted.
    ready_at: i64,
}

/// The grid simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Machine being simulated.
    pub machine: MachineConfig,
    /// Knobs.
    pub config: SimConfig,
}

impl Simulator {
    /// A simulator with default config.
    pub fn new(machine: MachineConfig) -> Self {
        Simulator {
            machine,
            config: SimConfig::default(),
        }
    }

    /// Set the config.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Execute `graph` under `rm`, with `inputs` bound and placed per
    /// `placements` (one per input tensor; defaults to DRAM if the
    /// slice is shorter).
    pub fn run(
        &self,
        graph: &DataflowGraph,
        rm: &ResolvedMapping,
        inputs: &[Vec<Value>],
        placements: &[InputPlacement],
    ) -> Result<SimResult, SimError> {
        if inputs.len() != graph.inputs.len() {
            return Err(SimError::InputArity {
                expected: graph.inputs.len(),
                got: inputs.len(),
            });
        }
        let legal = legality::check(graph, rm, &self.machine);
        if !legal.is_legal() {
            return Err(SimError::MappingIllegal {
                violations: legal.total_violations,
            });
        }

        let m = &self.machine;
        let width = u64::from(graph.width_bits);
        let flits = (graph.width_bits as u64).div_ceil(u64::from(m.link_width_bits)) as i64;
        let flits = flits.max(1);
        let consumers = graph.consumers();

        let mut ledger = EnergyLedger::new();
        let mut dram_seen: std::collections::HashSet<(u32, u32)> = Default::default();

        // Per-PE issue queues, sorted by (scheduled time, id).
        let mut queues: HashMap<(u32, u32), Vec<NodeId>> = HashMap::new();
        for id in 0..graph.len() {
            let (x, y) = rm.place[id];
            queues
                .entry((x as u32, y as u32))
                .or_default()
                .push(id as NodeId);
        }
        for q in queues.values_mut() {
            q.sort_by_key(|&id| (rm.time[id as usize], id));
        }
        let mut q_pos: HashMap<(u32, u32), usize> = queues.keys().map(|&pe| (pe, 0usize)).collect();

        // Value availability per (node, PE).
        let mut avail: HashMap<(NodeId, (u32, u32)), i64> = HashMap::new();
        let mut values: Vec<Option<Value>> = vec![None; graph.len()];

        let mut in_flight: Vec<Msg> = Vec::new();
        let mut link_busy: HashMap<Link, i64> = HashMap::new();

        let mut executed = 0usize;
        let mut stalled_elements = 0u64;
        let mut total_stall_cycles = 0u64;
        let mut messages_delivered = 0u64;
        let mut last_exec_cycle: i64 = -1;
        let mut pe_busy: HashMap<(u32, u32), u64> = HashMap::new();
        let mut link_traversals: HashMap<Link, u64> = HashMap::new();
        let mut link_wait_cycles: u64 = 0;

        let scheduled = rm.makespan();
        let guard = scheduled
            .saturating_mul(i64::from(self.config.max_cycles_factor))
            .saturating_add(1024);

        let mut t: i64 = 0;
        while executed < graph.len() || !in_flight.is_empty() {
            if t > guard {
                return Err(SimError::Hung {
                    at_cycle: t,
                    executed,
                    total: graph.len(),
                });
            }

            // Phase 1: advance in-flight messages one hop if their link
            // is free (or unconditionally without contention).
            let mut still: Vec<Msg> = Vec::with_capacity(in_flight.len());
            for mut msg in in_flight.drain(..) {
                if msg.ready_at <= t {
                    let link = msg.path[msg.hop];
                    let busy = link_busy.get(&link).copied().unwrap_or(i64::MIN);
                    if !self.config.contention || busy <= t {
                        if self.config.contention {
                            link_busy.insert(link, t + flits);
                        }
                        *link_traversals.entry(link).or_insert(0) += 1;
                        msg.hop += 1;
                        msg.ready_at = t + 1;
                        if msg.hop == msg.path.len() {
                            avail.insert((msg.node, msg.dest), t + 1);
                            messages_delivered += 1;
                            continue;
                        }
                    } else {
                        link_wait_cycles += 1;
                    }
                }
                still.push(msg);
            }
            in_flight = still;

            // Phase 2: issue elements.
            for (&pe, queue) in &queues {
                let pos = q_pos.get_mut(&pe).unwrap();
                let mut issued = 0u32;
                while *pos < queue.len() && issued < m.issue_width {
                    let id = queue[*pos];
                    let node = &graph.nodes[id as usize];
                    if rm.time[id as usize] > t {
                        break;
                    }
                    // Operand availability at this PE.
                    let ready = node
                        .deps
                        .iter()
                        .all(|&d| avail.get(&(d, pe)).is_some_and(|&a| a <= t));
                    if !ready {
                        break; // in-order issue: wait for the head
                    }

                    // Execute: compute the value.
                    let dep_vals: Vec<Value> = node
                        .deps
                        .iter()
                        .map(|&d| values[d as usize].expect("dep executed"))
                        .collect();
                    let mut input_at =
                        |input: u32, flat: u32| inputs[input as usize][flat as usize];
                    values[id as usize] = Some(node.expr.eval(&dep_vals, &mut input_at));

                    // Charge compute + tile write + operand tile reads.
                    for op in node.expr.op_kinds(graph.width_bits) {
                        ledger.charge_compute(m.tech.op_energy(op));
                    }
                    ledger.charge_compute(m.tile_access_energy(width));
                    for _ in &node.deps {
                        ledger.charge_compute(m.tile_access_energy(width));
                    }

                    // Charge input reads per placement.
                    for (input, flat) in node.expr.input_reads() {
                        let placement = placements
                            .get(input as usize)
                            .unwrap_or(&InputPlacement::Dram);
                        match placement {
                            InputPlacement::Dram => {
                                if dram_seen.insert((input, flat)) {
                                    ledger.charge_offchip(width, m.tech.offchip_energy(width));
                                }
                            }
                            InputPlacement::Local(pexpr) => {
                                let spec = &graph.inputs[input as usize];
                                let idx = unflatten(&spec.dims, flat);
                                let home = pexpr.eval(&idx, m.cols);
                                let home_pe = (home.0 as u32, home.1 as u32);
                                if home_pe == pe {
                                    ledger.charge_compute(m.tile_access_energy(width));
                                } else {
                                    let e = m.route_energy(width, home_pe, pe);
                                    ledger.charge_onchip(width, m.distance_mm(home_pe, pe), e);
                                }
                            }
                            InputPlacement::AtUse => {
                                ledger.charge_compute(m.tile_access_energy(width));
                            }
                        }
                    }

                    // Stall accounting.
                    let lateness = t - rm.time[id as usize];
                    if lateness > 0 {
                        stalled_elements += 1;
                        total_stall_cycles += lateness as u64;
                    }
                    last_exec_cycle = last_exec_cycle.max(t);
                    executed += 1;
                    *pe_busy.entry(pe).or_insert(0) += 1;

                    // Local availability next cycle.
                    avail.insert((id, pe), t + 1);

                    // One message per distinct remote consumer PE (a
                    // value moves to a tile once; consumers there read
                    // it locally — matching the evaluator).
                    let mut dest_pes: Vec<(u32, u32)> = consumers[id as usize]
                        .iter()
                        .map(|&c| {
                            let (cx, cy) = rm.place[c as usize];
                            (cx as u32, cy as u32)
                        })
                        .filter(|&cpe| cpe != pe)
                        .collect();
                    dest_pes.sort_unstable();
                    dest_pes.dedup();
                    for cpe in dest_pes {
                        let e = m.route_energy(width, pe, cpe);
                        ledger.charge_onchip(width, m.distance_mm(pe, cpe), e);
                        let path = xy_path(pe, cpe);
                        // First hop happens in the producing cycle
                        // (systolic clock): attempt immediately.
                        let mut msg = Msg {
                            node: id,
                            dest: cpe,
                            path,
                            hop: 0,
                            ready_at: t,
                        };
                        let link = msg.path[0];
                        let busy = link_busy.get(&link).copied().unwrap_or(i64::MIN);
                        if !self.config.contention || busy <= t {
                            if self.config.contention {
                                link_busy.insert(link, t + flits);
                            }
                            *link_traversals.entry(link).or_insert(0) += 1;
                            msg.hop = 1;
                            msg.ready_at = t + 1;
                            if msg.hop == msg.path.len() {
                                avail.insert((id, cpe), t + 1);
                                messages_delivered += 1;
                                continue;
                            }
                        } else {
                            msg.ready_at = t + 1;
                        }
                        in_flight.push(msg);
                    }

                    *pos += 1;
                    issued += 1;
                }
            }

            t += 1;
        }

        if self.config.writeback_outputs {
            for _ in graph.outputs() {
                ledger.charge_offchip(width, m.tech.offchip_energy(width));
            }
        }

        let mut pe_busy: Vec<((u32, u32), u64)> = pe_busy.into_iter().collect();
        pe_busy.sort_unstable();
        let mut link_traversals: Vec<(Link, u64)> = link_traversals.into_iter().collect();
        link_traversals.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| (a.0.from, a.0.to).cmp(&(b.0.from, b.0.to)))
        });

        Ok(SimResult {
            values: values
                .into_iter()
                .map(|v| v.expect("all executed"))
                .collect(),
            cycles_scheduled: scheduled,
            cycles_actual: last_exec_cycle + 1,
            stalled_elements,
            total_stall_cycles,
            ledger,
            messages_delivered,
            pe_busy,
            link_traversals,
            link_wait_cycles,
        })
    }
}

fn unflatten(dims: &[usize], flat: u32) -> Vec<i64> {
    let mut idx = vec![0i64; dims.len()];
    let mut rem = flat as usize;
    for (k, &d) in dims.iter().enumerate().rev() {
        idx[k] = (rem % d) as i64;
        rem /= d;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_core::cost::Evaluator;
    use fm_core::dataflow::CExpr;
    use fm_core::mapping::Mapping;

    fn linear_chain(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain", 32);
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let id = match prev {
                None => g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![i as i64]),
                Some(p) => g.add_node(
                    CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
                    vec![p],
                    vec![i as i64],
                ),
            };
            prev = Some(id);
        }
        g.mark_output(prev.unwrap());
        g
    }

    #[test]
    fn functional_values_match_reference() {
        let g = linear_chain(10);
        let m = MachineConfig::linear(4);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let sim = Simulator::new(m);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        let reference = g.eval(&[]);
        for (a, b) in res.values.iter().zip(&reference) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        assert_eq!(res.values[9].re, 10.0);
    }

    #[test]
    fn legal_uncontended_mapping_runs_on_schedule() {
        let g = linear_chain(16);
        let m = MachineConfig::linear(4);
        // Systolic blocks: element i at PE i/4, time i (gap 1, hops ≤ 1).
        let rm = ResolvedMapping {
            place: (0..16).map(|i| (i / 4, 0)).collect(),
            time: (0..16).collect(),
        };
        let sim = Simulator::new(m);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        assert_eq!(res.cycles_actual, res.cycles_scheduled);
        assert_eq!(res.stalled_elements, 0);
        assert!((res.slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_analytic_evaluator_exactly() {
        let g = linear_chain(16);
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: (0..16).map(|i| (i / 4, 0)).collect(),
            time: (0..16).collect(),
        };
        let predicted = Evaluator::new(&g, &m).evaluate(&rm);
        let sim = Simulator::new(m);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        let p = predicted.ledger.energy.total().raw();
        let s = res.ledger.energy.total().raw();
        assert!((p - s).abs() < 1e-6, "predicted {p} vs simulated {s}");
        assert_eq!(predicted.ledger.onchip_messages, res.ledger.onchip_messages);
        assert_eq!(
            predicted.ledger.offchip_transfers,
            res.ledger.offchip_transfers
        );
    }

    #[test]
    fn illegal_mapping_rejected() {
        let g = linear_chain(4);
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: vec![(0, 0); 4],
            time: vec![0; 4], // dependent nodes simultaneous
        };
        let sim = Simulator::new(m);
        assert!(matches!(
            sim.run(&g, &rm, &[], &[]),
            Err(SimError::MappingIllegal { .. })
        ));
    }

    #[test]
    fn input_arity_checked() {
        let mut g = DataflowGraph::new("in", 32);
        let x = g.add_input("X", vec![2]);
        g.add_node(CExpr::input(x, 0), vec![], vec![0]);
        let m = MachineConfig::linear(2);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let sim = Simulator::new(m);
        assert!(matches!(
            sim.run(&g, &rm, &[], &[]),
            Err(SimError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn contention_stalls_but_preserves_values() {
        // Two messages forced through the same link with multi-flit
        // occupancy: B's consumer must stall, values stay correct.
        let mut g = DataflowGraph::new("contend", 64);
        let a = g.add_node(CExpr::konst(Value::real(3.0)), vec![], vec![0]);
        let b = g.add_node(CExpr::konst(Value::real(4.0)), vec![], vec![1]);
        let ca = g.add_node(CExpr::dep(0), vec![a], vec![2]);
        let cb = g.add_node(CExpr::dep(0), vec![b], vec![3]);
        g.mark_output(ca);
        g.mark_output(cb);
        let mut m = MachineConfig::linear(3);
        m.link_width_bits = 16; // 64-bit values → 4 flits per link
                                // a at (0,0) t0, b at (0,0) t1 (same source PE), consumers at
                                // (2,0) scheduled at the causality minimum.
        let rm = ResolvedMapping {
            place: vec![(0, 0), (0, 0), (2, 0), (2, 0)],
            time: vec![0, 1, 2, 3],
        };
        let sim = Simulator::new(m.clone());
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        assert!(res.cycles_actual > res.cycles_scheduled, "{res:?}");
        assert!(res.stalled_elements >= 1);
        assert_eq!(res.values[2].re, 3.0);
        assert_eq!(res.values[3].re, 4.0);

        // Without contention the same mapping runs on schedule.
        let sim2 = Simulator::new(m).with_config(SimConfig {
            contention: false,
            ..SimConfig::default()
        });
        let res2 = sim2.run(&g, &rm, &[], &[]).unwrap();
        assert_eq!(res2.cycles_actual, res2.cycles_scheduled);
    }

    #[test]
    fn dram_inputs_charged_once() {
        let mut g = DataflowGraph::new("in", 32);
        let x = g.add_input("X", vec![2]);
        let n0 = g.add_node(CExpr::input(x, 0).add(CExpr::input(x, 0)), vec![], vec![0]);
        let _ = n0;
        g.add_node(CExpr::input(x, 1), vec![], vec![1]);
        let m = MachineConfig::linear(2);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let sim = Simulator::new(m);
        let res = sim
            .run(
                &g,
                &rm,
                &[vec![Value::real(1.0), Value::real(2.0)]],
                &[InputPlacement::Dram],
            )
            .unwrap();
        assert_eq!(res.ledger.offchip_transfers, 2);
    }

    #[test]
    fn writeback_charges_outputs() {
        let g = linear_chain(4);
        let m = MachineConfig::linear(2);
        let rm = Mapping::serial(&g).resolve(&g, &m).unwrap();
        let sim = Simulator::new(m).with_config(SimConfig {
            writeback_outputs: true,
            ..SimConfig::default()
        });
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        assert_eq!(res.ledger.offchip_transfers, 1);
    }

    #[test]
    fn pe_and_link_stats_reported() {
        let g = linear_chain(16);
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: (0..16).map(|i| (i / 4, 0)).collect(),
            time: (0..16).collect(),
        };
        let sim = Simulator::new(m);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        // 4 PEs each executed 4 elements.
        assert_eq!(res.pe_busy.len(), 4);
        assert!(res.pe_busy.iter().all(|&(_, b)| b == 4));
        // 3 block-boundary messages, each over one distinct link.
        assert_eq!(res.link_traversals.len(), 3);
        assert!(res.link_traversals.iter().all(|&(_, c)| c == 1));
        assert_eq!(res.link_wait_cycles, 0);
        assert!(res.hottest_link().is_some());
        // Mean occupancy = 16 busy / (4 PEs × 16 cycles).
        assert!((res.mean_pe_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn contention_registers_link_waits() {
        let mut g = DataflowGraph::new("contend", 64);
        let a = g.add_node(CExpr::konst(Value::real(3.0)), vec![], vec![0]);
        let b = g.add_node(CExpr::konst(Value::real(4.0)), vec![], vec![1]);
        let ca = g.add_node(CExpr::dep(0), vec![a], vec![2]);
        let cb = g.add_node(CExpr::dep(0), vec![b], vec![3]);
        g.mark_output(ca);
        g.mark_output(cb);
        let mut m = MachineConfig::linear(3);
        m.link_width_bits = 16;
        let rm = ResolvedMapping {
            place: vec![(0, 0), (0, 0), (2, 0), (2, 0)],
            time: vec![0, 1, 2, 3],
        };
        let res = Simulator::new(m).run(&g, &rm, &[], &[]).unwrap();
        assert!(res.link_wait_cycles > 0);
        let hottest = res.hottest_link().unwrap();
        assert_eq!(hottest.1, 2); // both messages crossed the first link
    }

    #[test]
    fn multi_hop_delivery_time() {
        // Producer at (0,0) t=0; consumer at (3,0) must wait 3 hops.
        let mut g = DataflowGraph::new("hop", 32);
        let a = g.add_node(CExpr::konst(Value::real(1.0)), vec![], vec![0]);
        let b = g.add_node(CExpr::dep(0), vec![a], vec![1]);
        g.mark_output(b);
        let m = MachineConfig::linear(4);
        let rm = ResolvedMapping {
            place: vec![(0, 0), (3, 0)],
            time: vec![0, 3],
        };
        let sim = Simulator::new(m);
        let res = sim.run(&g, &rm, &[], &[]).unwrap();
        assert_eq!(res.cycles_actual, 4);
        assert_eq!(res.stalled_elements, 0);
        assert_eq!(res.messages_delivered, 1);
    }
}
