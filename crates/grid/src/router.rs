//! X-Y dimension-ordered mesh routing.
//!
//! Messages first travel along the x axis to the destination column,
//! then along the y axis to the destination row. Dimension-ordered
//! routing on a mesh is deadlock-free and deterministic, and its path
//! length equals the Manhattan distance — which is exactly the distance
//! the analytic cost evaluator charges, so simulated and predicted wire
//! energy agree by construction.

use serde::{Deserialize, Serialize};

/// A directed link between two adjacent PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source PE.
    pub from: (u32, u32),
    /// Destination PE (Manhattan-adjacent to `from`).
    pub to: (u32, u32),
}

/// The X-Y route from `a` to `b` as a sequence of directed links.
/// Empty when `a == b`.
pub fn xy_path(a: (u32, u32), b: (u32, u32)) -> Vec<Link> {
    let mut path = Vec::with_capacity((a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as usize);
    let mut cur = a;
    while cur.0 != b.0 {
        let next = if cur.0 < b.0 {
            (cur.0 + 1, cur.1)
        } else {
            (cur.0 - 1, cur.1)
        };
        path.push(Link {
            from: cur,
            to: next,
        });
        cur = next;
    }
    while cur.1 != b.1 {
        let next = if cur.1 < b.1 {
            (cur.0, cur.1 + 1)
        } else {
            (cur.0, cur.1 - 1)
        };
        path.push(Link {
            from: cur,
            to: next,
        });
        cur = next;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pe_empty_path() {
        assert!(xy_path((3, 4), (3, 4)).is_empty());
    }

    #[test]
    fn path_length_is_manhattan_distance() {
        for (a, b) in [
            ((0u32, 0u32), (5u32, 0u32)),
            ((0, 0), (0, 7)),
            ((2, 3), (6, 1)),
            ((6, 1), (2, 3)),
        ] {
            let p = xy_path(a, b);
            let manhattan = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
            assert_eq!(p.len() as u32, manhattan);
        }
    }

    #[test]
    fn x_before_y() {
        let p = xy_path((0, 0), (2, 2));
        assert_eq!(p[0].to, (1, 0));
        assert_eq!(p[1].to, (2, 0));
        assert_eq!(p[2].to, (2, 1));
        assert_eq!(p[3].to, (2, 2));
    }

    #[test]
    fn path_is_connected_and_adjacent() {
        let p = xy_path((5, 5), (1, 2));
        let mut cur = (5u32, 5u32);
        for link in &p {
            assert_eq!(link.from, cur);
            let hop = link.from.0.abs_diff(link.to.0) + link.from.1.abs_diff(link.to.1);
            assert_eq!(hop, 1);
            cur = link.to;
        }
        assert_eq!(cur, (1, 2));
    }

    #[test]
    fn reverse_path_uses_different_links() {
        // X-Y routing is not symmetric: a→b and b→a traverse different
        // intermediate nodes when both dx and dy are nonzero.
        let ab = xy_path((0, 0), (2, 2));
        let ba = xy_path((2, 2), (0, 0));
        assert_eq!(ab.len(), ba.len());
        let mid_ab: Vec<(u32, u32)> = ab.iter().map(|l| l.to).collect();
        let mid_ba: Vec<(u32, u32)> = ba.iter().map(|l| l.to).collect();
        assert_ne!(mid_ab, mid_ba.iter().rev().copied().collect::<Vec<_>>());
    }
}
