#![warn(missing_docs)]

//! # fm-grid — cycle-driven spatial architecture simulator
//!
//! The execution substrate the F&M model lowers to: a 2-D grid of
//! single-issue processing elements, each with a local memory tile,
//! connected by a mesh NoC with X-Y dimension-ordered routing, plus an
//! off-chip (DRAM) layer modeled as per-bit energy charges.
//!
//! Where `fm-core`'s [`fm_core::cost::Evaluator`] *predicts* the cost of
//! a mapped function analytically, this crate *executes* it:
//!
//! * functionally — every element value is computed, so kernel results
//!   can be checked against reference implementations;
//! * temporally — PEs issue their elements in scheduled order when
//!   operands have physically arrived; messages advance one hop per
//!   cycle and contend for links (a link is occupied for
//!   `⌈width/link_width⌉` cycles per message, wormhole style);
//! * energetically — every op, tile access, message, and DRAM fetch is
//!   charged against the same [`fm_costmodel::Technology`] constants the
//!   analytic evaluator uses.
//!
//! The central claim of the F&M model — cost is *predictable* from the
//! mapping — becomes a testable property: for a legal mapping the
//! simulator's energy must equal the evaluator's exactly, and its cycle
//! count must equal the mapping's makespan whenever no link is
//! oversubscribed. Integration tests in this crate and in the workspace
//! root assert both.

pub mod router;
pub mod sim;

pub use router::{xy_path, Link};
pub use sim::{SimConfig, SimError, SimResult, Simulator};
