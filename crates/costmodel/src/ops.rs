//! Operation kinds and their relative compute costs.
//!
//! The paper's cost argument needs only a coarse taxonomy: arithmetic and
//! logic are cheap ("Reading or writing a bit-cell is extremely fast and
//! efficient. … Arithmetic and logical operations are much less expensive
//! [than communication]"), and the costs that matter are where the bits
//! *move*. We therefore model op energy as a per-bit coefficient relative
//! to the add, with multiply super-linear in width (a W-bit multiply is
//! roughly W times the per-bit switching of an add).

use serde::{Deserialize, Serialize};

/// Coarse operation classes, each with a per-bit energy scale relative to
/// a full-adder bit slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer/floating add, subtract, min, max, compare: ~1 add-bit each.
    AddLike,
    /// Multiply: per-bit cost grows with the operand width (partial
    /// products), modeled as `width/4` add-bits per result bit, clamped
    /// below at 1.
    Multiply,
    /// Bitwise logic, shifts, select: cheaper than an add bit.
    Logic,
    /// Local SRAM bit-cell access (the paper: "reading or writing a
    /// bit-cell is extremely fast and efficient"); charged per bit, the
    /// *wire* cost of reaching the array is charged separately.
    SramBit,
    /// A no-op / move inside a PE (register-to-register): negligible but
    /// non-zero.
    Move,
}

impl OpClass {
    /// Relative per-bit energy in units of "add bits" for an op of the
    /// given operand `width` in bits.
    pub fn add_bits_per_bit(self, width: u32) -> f64 {
        match self {
            OpClass::AddLike => 1.0,
            OpClass::Multiply => (width as f64 / 4.0).max(1.0),
            OpClass::Logic => 0.25,
            OpClass::SramBit => 0.5,
            OpClass::Move => 0.1,
        }
    }
}

/// A concrete operation: a class plus an operand width in bits.
///
/// `OpKind` is the unit of compute that the F&M cost evaluator and the
/// grid simulator charge; both call [`crate::Technology::op_energy`] /
/// [`crate::Technology::op_latency`] with one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpKind {
    /// Operation class.
    pub class: OpClass,
    /// Operand width in bits (e.g. 32 for the paper's example add).
    pub width: u32,
}

impl OpKind {
    /// A `width`-bit add-like op (add/sub/min/max/compare).
    pub const fn add(width: u32) -> Self {
        OpKind {
            class: OpClass::AddLike,
            width,
        }
    }

    /// The paper's canonical 32-bit add.
    pub const fn add32() -> Self {
        Self::add(32)
    }

    /// A `width`-bit multiply.
    pub const fn mul(width: u32) -> Self {
        OpKind {
            class: OpClass::Multiply,
            width,
        }
    }

    /// A `width`-bit logic op.
    pub const fn logic(width: u32) -> Self {
        OpKind {
            class: OpClass::Logic,
            width,
        }
    }

    /// A `width`-bit local SRAM access.
    pub const fn sram(width: u32) -> Self {
        OpKind {
            class: OpClass::SramBit,
            width,
        }
    }

    /// A `width`-bit register move.
    pub const fn mov(width: u32) -> Self {
        OpKind {
            class: OpClass::Move,
            width,
        }
    }

    /// Total relative cost in "add bits" (per-bit scale × width).
    pub fn add_bits(self) -> f64 {
        self.class.add_bits_per_bit(self.width) * self.width as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add32_is_32_add_bits() {
        assert_eq!(OpKind::add32().add_bits(), 32.0);
    }

    #[test]
    fn multiply_is_superlinear_in_width() {
        let m8 = OpKind::mul(8).add_bits();
        let m32 = OpKind::mul(32).add_bits();
        // 4x the width must be more than 4x the energy.
        assert!(m32 > 4.0 * m8);
    }

    #[test]
    fn narrow_multiply_clamps_to_add_cost() {
        // A 2-bit multiply is not cheaper per bit than a 2-bit add.
        assert!(OpKind::mul(2).add_bits() >= OpKind::add(2).add_bits());
    }

    #[test]
    fn logic_cheaper_than_add() {
        assert!(OpKind::logic(32).add_bits() < OpKind::add(32).add_bits());
    }

    #[test]
    fn move_is_cheapest() {
        for k in [
            OpKind::add(32),
            OpKind::mul(32),
            OpKind::logic(32),
            OpKind::sram(32),
        ] {
            assert!(OpKind::mov(32).add_bits() < k.add_bits());
        }
    }

    #[test]
    fn zero_width_is_free() {
        assert_eq!(OpKind::add(0).add_bits(), 0.0);
    }
}
