//! Pluggable cost backends: who gets to say what an operation costs.
//!
//! The evaluator in `fm-core` charges every op, tile access, wire hop,
//! and off-chip transfer against energy primitives, and every search
//! ranks mappings by a scalar score derived from the resulting report.
//! Historically both came straight from [`Technology`] — one hard-coded
//! cost function. A [`CostBackend`] abstracts both surfaces so the same
//! mapping search can run under *different* cost models and report
//! where the winning mapping changes:
//!
//! * [`AnalyticBackend`] — the paper's 5 nm analytic model, the
//!   default. Every method delegates to the exact [`Technology`]
//!   computation the evaluator used to inline, so winners, scores, and
//!   reports are **bit-identical** to the pre-backend code.
//! * [`RooflineBackend`] — an observatory model: energies stay
//!   analytic, but the *time* score becomes the bandwidth-aware bound
//!   `max(W/C_peak, Q_on/B_on, Q_off/B_off)` from the mapping's tracked
//!   communication volume and the machine's ceilings, and every mapping
//!   gets a [`RooflinePoint`] locating it under both roofs.
//! * [`SpatialBackend`] — the spatial-computer energy model
//!   (Gianinazzi et al., "The spatial computer: A model for
//!   energy-efficient parallel computation"): operations pay a flat
//!   per-op cost, *local* memory access is free, and communication
//!   energy is linear in distance — including off-chip transfers, which
//!   are charged as one span-length on-chip move instead of the
//!   analytic model's 10× span penalty.
//!
//! ## Contract
//!
//! The delta engine (`fm-core::delta`) repairs per-node cost
//! contributions incrementally and relies on two properties every
//! backend must keep:
//!
//! 1. **Locality** — the energy primitives are pure functions of
//!    `(technology, op/width, distance)`; a node's cost may depend only
//!    on its own placement and its consumers' placements, never on
//!    global mapping state. All four primitives here satisfy this by
//!    construction.
//! 2. **Determinism** — same inputs, same `f64` bits. No randomness,
//!    no iteration-order dependence. This is what makes warm re-tunes,
//!    fleet merges, and cache replays bit-identical per backend.
//!
//! Scores must additionally be *monotone composable*: `Edp` is scored
//! as `time_score × energy_score`, so a backend overriding one axis
//! composes with the other for free.
//!
//! To add a backend: implement [`CostBackend`] (override only the
//! primitives that differ — defaults are the analytic model), add a
//! [`CostModelKind`] variant with a wire name, and register it in
//! [`CostModelKind::backend`]. Everything downstream — tuner, delta
//! repair, serving, benches — picks it up through the evaluator.

use serde::{Deserialize, Serialize};

use crate::ops::OpKind;
use crate::technology::Technology;
use crate::units::{Femtojoules, Millimeters};

/// Which cost backend a search runs under. The wire name (used by
/// `fm-tune --cost-model` and the `cost_model` request field) is
/// [`CostModelKind::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CostModelKind {
    /// The paper's 5 nm analytic model (the default).
    #[default]
    Analytic,
    /// Roofline observatory: analytic energy, bandwidth-bounded time.
    Roofline,
    /// Spatial-computer energy model: distance-dependent energy, free
    /// local access.
    Spatial,
}

impl CostModelKind {
    /// Every kind, in reporting order.
    pub const ALL: [CostModelKind; 3] = [
        CostModelKind::Analytic,
        CostModelKind::Roofline,
        CostModelKind::Spatial,
    ];

    /// The wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            CostModelKind::Analytic => "analytic",
            CostModelKind::Roofline => "roofline",
            CostModelKind::Spatial => "spatial",
        }
    }

    /// Parse a wire/CLI name. `None` for unknown names — callers must
    /// surface that as a typed error, never fall back silently.
    pub fn from_name(name: &str) -> Option<CostModelKind> {
        match name {
            "analytic" => Some(CostModelKind::Analytic),
            "roofline" => Some(CostModelKind::Roofline),
            "spatial" => Some(CostModelKind::Spatial),
            _ => None,
        }
    }

    /// The shared backend instance for this kind.
    pub fn backend(self) -> &'static dyn CostBackend {
        match self {
            CostModelKind::Analytic => &ANALYTIC,
            CostModelKind::Roofline => &ROOFLINE,
            CostModelKind::Spatial => &SPATIAL,
        }
    }
}

impl std::fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whole-mapping aggregates a backend scores from. Extracted from a
/// cost report by the evaluator; neutral so backends need no knowledge
/// of `fm-core` types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingTotals {
    /// Compute ops charged.
    pub compute_ops: u64,
    /// On-chip bits moved.
    pub onchip_bits: u64,
    /// On-chip bit-millimeters moved.
    pub onchip_bit_mm: f64,
    /// Off-chip bits moved.
    pub offchip_bits: u64,
    /// Total energy under this backend's charging, fJ.
    pub energy_fj: f64,
    /// Scheduled makespan, ps.
    pub time_ps: f64,
    /// Scheduled makespan, cycles.
    pub cycles: i64,
    /// Distinct PEs used.
    pub pes_used: usize,
    /// Peak live bits in any one tile.
    pub peak_tile_bits: u64,
}

/// The machine's performance ceilings, in per-picosecond units so they
/// divide directly against [`MappingTotals`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineCeilings {
    /// Peak compute: elements the whole grid can evaluate per ps.
    pub compute_ops_per_ps: f64,
    /// Aggregate NoC bandwidth: bits every directed link can carry per
    /// ps, summed.
    pub onchip_bits_per_ps: f64,
    /// Off-chip bandwidth: one memory port of link width per cycle.
    pub offchip_bits_per_ps: f64,
}

/// One mapping's position under the machine's roofline: operational
/// intensity against each traffic class, the attainable throughput
/// under each roof, and what actually binds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Ops per on-chip bit moved (bits floored at 1 so a
    /// communication-free mapping stays finite).
    pub intensity_onchip: f64,
    /// Ops per off-chip bit moved (same flooring).
    pub intensity_offchip: f64,
    /// The compute roof, ops/ps.
    pub compute_ceiling: f64,
    /// `min(compute roof, intensity_onchip × on-chip bandwidth)`.
    pub attainable_onchip: f64,
    /// `min(compute roof, intensity_offchip × off-chip bandwidth)`.
    pub attainable_offchip: f64,
    /// What the mapping actually achieved: ops per scheduled ps.
    pub achieved: f64,
    /// Which roof binds overall: `"compute"`, `"onchip-bw"`, or
    /// `"offchip-bw"`.
    pub bound: String,
}

impl RooflinePoint {
    /// Compute the point for one mapping under one machine.
    pub fn locate(totals: &MappingTotals, ceilings: &MachineCeilings) -> RooflinePoint {
        let ops = totals.compute_ops as f64;
        let intensity_onchip = ops / totals.onchip_bits.max(1) as f64;
        let intensity_offchip = ops / totals.offchip_bits.max(1) as f64;
        let attainable_onchip =
            (intensity_onchip * ceilings.onchip_bits_per_ps).min(ceilings.compute_ops_per_ps);
        let attainable_offchip =
            (intensity_offchip * ceilings.offchip_bits_per_ps).min(ceilings.compute_ops_per_ps);
        // The binding roof is the slowest of the three planned-time
        // terms; ties break toward compute (the optimistic roof).
        let t_compute = planned_term(ops, ceilings.compute_ops_per_ps);
        let t_on = planned_term(totals.onchip_bits as f64, ceilings.onchip_bits_per_ps);
        let t_off = planned_term(totals.offchip_bits as f64, ceilings.offchip_bits_per_ps);
        let bound = if t_compute >= t_on && t_compute >= t_off {
            "compute"
        } else if t_on >= t_off {
            "onchip-bw"
        } else {
            "offchip-bw"
        };
        RooflinePoint {
            intensity_onchip,
            intensity_offchip,
            compute_ceiling: ceilings.compute_ops_per_ps,
            attainable_onchip,
            attainable_offchip,
            achieved: if totals.time_ps > 0.0 {
                ops / totals.time_ps
            } else {
                0.0
            },
            bound: bound.to_string(),
        }
    }
}

/// One planned-time term `volume / rate`: zero volume takes zero time
/// even over a zero-rate channel (a 1-PE machine has no NoC, and no
/// NoC traffic either).
fn planned_term(volume: f64, rate_per_ps: f64) -> f64 {
    if volume == 0.0 {
        0.0
    } else {
        volume / rate_per_ps
    }
}

/// A pluggable cost model: energy primitives the evaluator charges
/// per-node costs through, plus the scalar scores a search ranks by.
///
/// Defaults implement the analytic model exactly, so a backend
/// overrides only what it changes. See the module docs for the
/// locality/determinism contract the delta engine relies on.
pub trait CostBackend: std::fmt::Debug + Sync {
    /// Which kind this backend is (for fingerprints and reporting).
    fn kind(&self) -> CostModelKind;

    /// Energy of one expression op.
    fn op_energy(&self, tech: &Technology, op: OpKind) -> Femtojoules {
        tech.op_energy(op)
    }

    /// Energy of one local tile (SRAM) access of `bits`.
    fn tile_access_energy(&self, tech: &Technology, bits: u64) -> Femtojoules {
        tech.op_energy(OpKind::sram(bits as u32))
    }

    /// Energy to move `bits` a distance `dist` on chip.
    fn wire_energy(&self, tech: &Technology, bits: u64, dist: Millimeters) -> Femtojoules {
        tech.wire_energy(bits, dist)
    }

    /// Energy to move `bits` off chip (one direction).
    fn offchip_energy(&self, tech: &Technology, bits: u64) -> Femtojoules {
        tech.offchip_energy(bits)
    }

    /// The scalar the `Time` objective minimizes, in ps-like units.
    fn time_score(&self, totals: &MappingTotals, _ceilings: &MachineCeilings) -> f64 {
        totals.time_ps
    }

    /// The scalar the `Energy` objective minimizes, in fJ-like units.
    fn energy_score(&self, totals: &MappingTotals) -> f64 {
        totals.energy_fj
    }

    /// This mapping's roofline position (same computation for every
    /// backend — the roofline *score* is what [`RooflineBackend`]
    /// changes).
    fn roofline(&self, totals: &MappingTotals, ceilings: &MachineCeilings) -> RooflinePoint {
        RooflinePoint::locate(totals, ceilings)
    }
}

/// The paper's 5 nm analytic model: every default, untouched. The
/// bit-identity reference every parity test compares against.
#[derive(Debug)]
pub struct AnalyticBackend;

impl CostBackend for AnalyticBackend {
    fn kind(&self) -> CostModelKind {
        CostModelKind::Analytic
    }
}

/// Roofline observatory: analytic energies, bandwidth-bounded time.
///
/// The time score is the classic roofline execution-time bound
/// `max(W/C_peak, Q_on/B_on, Q_off/B_off)`: perfect overlap of
/// compute, NoC traffic, and memory traffic, so whichever resource the
/// mapping saturates sets its time. A mapping the analytic schedule
/// calls fast but whose traffic exceeds a bandwidth roof ranks worse
/// here — that divergence is the observatory's point.
#[derive(Debug)]
pub struct RooflineBackend;

impl CostBackend for RooflineBackend {
    fn kind(&self) -> CostModelKind {
        CostModelKind::Roofline
    }

    fn time_score(&self, totals: &MappingTotals, ceilings: &MachineCeilings) -> f64 {
        let t_compute = planned_term(totals.compute_ops as f64, ceilings.compute_ops_per_ps);
        let t_on = planned_term(totals.onchip_bits as f64, ceilings.onchip_bits_per_ps);
        let t_off = planned_term(totals.offchip_bits as f64, ceilings.offchip_bits_per_ps);
        t_compute.max(t_on).max(t_off)
    }
}

/// The spatial-computer energy model (Gianinazzi et al.): flat per-op
/// energy, free local memory access, communication linear in distance.
/// Off-chip transfers are charged as one span-length on-chip move —
/// distance is the *only* cost of communication, with no technology
/// off-chip penalty factor.
#[derive(Debug)]
pub struct SpatialBackend;

impl CostBackend for SpatialBackend {
    fn kind(&self) -> CostModelKind {
        CostModelKind::Spatial
    }

    fn tile_access_energy(&self, _tech: &Technology, _bits: u64) -> Femtojoules {
        Femtojoules::ZERO
    }

    fn offchip_energy(&self, tech: &Technology, bits: u64) -> Femtojoules {
        tech.wire_energy(bits, tech.chip.span())
    }
}

/// The shared analytic backend.
pub static ANALYTIC: AnalyticBackend = AnalyticBackend;
/// The shared roofline backend.
pub static ROOFLINE: RooflineBackend = RooflineBackend;
/// The shared spatial-computer backend.
pub static SPATIAL: SpatialBackend = SpatialBackend;

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> MappingTotals {
        MappingTotals {
            compute_ops: 1000,
            onchip_bits: 3200,
            onchip_bit_mm: 640.0,
            offchip_bits: 64,
            energy_fj: 5.0e4,
            time_ps: 2.0e5,
            cycles: 100,
            pes_used: 4,
            peak_tile_bits: 256,
        }
    }

    fn ceilings() -> MachineCeilings {
        MachineCeilings {
            compute_ops_per_ps: 0.01,
            onchip_bits_per_ps: 0.1,
            offchip_bits_per_ps: 0.001,
        }
    }

    #[test]
    fn names_round_trip() {
        for k in CostModelKind::ALL {
            assert_eq!(CostModelKind::from_name(k.name()), Some(k));
            assert_eq!(k.backend().kind(), k);
        }
        assert_eq!(CostModelKind::from_name("n5"), None);
        assert_eq!(CostModelKind::from_name(""), None);
    }

    #[test]
    fn analytic_defaults_match_technology() {
        let t = Technology::n5();
        assert_eq!(
            ANALYTIC.op_energy(&t, OpKind::add32()),
            t.op_energy(OpKind::add32())
        );
        assert_eq!(
            ANALYTIC.tile_access_energy(&t, 32),
            t.op_energy(OpKind::sram(32))
        );
        let d = Millimeters::new(2.5);
        assert_eq!(ANALYTIC.wire_energy(&t, 32, d), t.wire_energy(32, d));
        assert_eq!(ANALYTIC.offchip_energy(&t, 32), t.offchip_energy(32));
        assert_eq!(ANALYTIC.time_score(&totals(), &ceilings()), 2.0e5);
        assert_eq!(ANALYTIC.energy_score(&totals()), 5.0e4);
    }

    #[test]
    fn roofline_time_is_the_binding_term() {
        // W/C = 1000/0.01 = 1e5; Q_on/B_on = 3200/0.1 = 3.2e4;
        // Q_off/B_off = 64/0.001 = 6.4e4 → compute binds.
        let t = ROOFLINE.time_score(&totals(), &ceilings());
        assert_eq!(t, 1.0e5);
        // Starve off-chip bandwidth: the memory term takes over.
        let mut c = ceilings();
        c.offchip_bits_per_ps = 1e-4;
        assert_eq!(ROOFLINE.time_score(&totals(), &c), 6.4e5);
    }

    #[test]
    fn roofline_zero_volume_terms_are_free() {
        let mut tot = totals();
        tot.onchip_bits = 0;
        tot.offchip_bits = 0;
        let mut c = ceilings();
        c.onchip_bits_per_ps = 0.0; // 1-PE machine: no NoC at all
        let t = ROOFLINE.time_score(&tot, &c);
        assert_eq!(t, 1.0e5);
        assert!(t.is_finite());
    }

    #[test]
    fn roofline_point_locates_bound() {
        let p = RooflinePoint::locate(&totals(), &ceilings());
        assert_eq!(p.bound, "compute");
        assert!((p.intensity_onchip - 1000.0 / 3200.0).abs() < 1e-12);
        assert!((p.intensity_offchip - 1000.0 / 64.0).abs() < 1e-12);
        assert!(p.attainable_onchip <= p.compute_ceiling);
        assert!(p.attainable_offchip <= p.compute_ceiling);
        assert!((p.achieved - 1000.0 / 2.0e5).abs() < 1e-15);
        // Choke the NoC: the on-chip roof takes over.
        let mut c = ceilings();
        c.onchip_bits_per_ps = 1e-5;
        assert_eq!(RooflinePoint::locate(&totals(), &c).bound, "onchip-bw");
    }

    #[test]
    fn spatial_local_access_is_free_and_offchip_loses_the_penalty() {
        let t = Technology::n5();
        assert_eq!(SPATIAL.tile_access_energy(&t, 32).raw(), 0.0);
        let span_move = t.wire_energy(32, t.chip.span());
        assert_eq!(SPATIAL.offchip_energy(&t, 32), span_move);
        // The analytic model charges `offchip_factor` times that.
        let ratio = ANALYTIC.offchip_energy(&t, 32).raw() / span_move.raw();
        assert!((ratio - t.offchip_factor).abs() < 1e-9);
        // Wires stay distance-linear, same as analytic.
        let d = Millimeters::new(3.0);
        assert_eq!(SPATIAL.wire_energy(&t, 32, d), t.wire_energy(32, d));
    }
}
