//! Thin unit newtypes for energy, time, and distance.
//!
//! These exist so that the cost-evaluation code in `fm-core` and the
//! simulator in `fm-grid` cannot accidentally add a distance to an energy
//! or pass a picosecond count where femtojoules are expected. They are
//! deliberately minimal: construction, arithmetic within a unit, scaling
//! by dimensionless factors, and extraction of the raw `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Construct from a raw `f64` magnitude.
            #[inline]
            pub const fn new(v: f64) -> Self {
                $name(v)
            }

            /// Extract the raw magnitude.
            #[inline]
            pub const fn raw(self) -> f64 {
                self.0
            }

            /// Dimensionless ratio of `self` to `other`.
            ///
            /// Returns `f64::INFINITY` if `other` is zero and `self` is
            /// positive, and `NaN` for `0/0`, mirroring IEEE semantics.
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }

            /// The larger of two values.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of two values.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|u| u.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Energy in femtojoules (10⁻¹⁵ J).
    Femtojoules,
    "fJ"
);
unit!(
    /// Time in picoseconds (10⁻¹² s).
    Picoseconds,
    "ps"
);
unit!(
    /// Distance in millimeters.
    Millimeters,
    "mm"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_within_unit() {
        let a = Femtojoules::new(1.5);
        let b = Femtojoules::new(2.5);
        assert_eq!((a + b).raw(), 4.0);
        assert_eq!((b - a).raw(), 1.0);
        let mut c = a;
        c += b;
        assert_eq!(c.raw(), 4.0);
    }

    #[test]
    fn scaling_by_dimensionless() {
        let t = Picoseconds::new(200.0);
        assert_eq!((t * 3.0).raw(), 600.0);
        assert_eq!((3.0 * t).raw(), 600.0);
        assert_eq!((t / 2.0).raw(), 100.0);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let d1 = Millimeters::new(28.3);
        let d2 = Millimeters::new(1.0);
        assert!((d1.ratio(d2) - 28.3).abs() < 1e-12);
    }

    #[test]
    fn ratio_zero_denominator() {
        let e = Femtojoules::new(1.0);
        assert!(e.ratio(Femtojoules::ZERO).is_infinite());
        assert!(Femtojoules::ZERO.ratio(Femtojoules::ZERO).is_nan());
    }

    #[test]
    fn sum_over_iterator() {
        let total: Femtojoules = (1..=4).map(|i| Femtojoules::new(i as f64)).sum();
        assert_eq!(total.raw(), 10.0);
    }

    #[test]
    fn min_max() {
        let a = Picoseconds::new(1.0);
        let b = Picoseconds::new(2.0);
        assert_eq!(a.max(b).raw(), 2.0);
        assert_eq!(a.min(b).raw(), 1.0);
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(format!("{}", Millimeters::new(1.0)), "1.000 mm");
        assert_eq!(format!("{}", Femtojoules::new(0.5)), "0.500 fJ");
        assert_eq!(format!("{}", Picoseconds::new(800.0)), "800.000 ps");
    }

    #[test]
    fn serde_round_trip() {
        let e = Femtojoules::new(12.5);
        let s = serde_json::to_string(&e).unwrap();
        let back: Femtojoules = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
