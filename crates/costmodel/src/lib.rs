#![warn(missing_docs)]

//! # fm-costmodel — parameterized technology cost model
//!
//! This crate encodes the physical cost constants that the SPAA'21 panel
//! paper's quantitative claims are built on (Dally, §3):
//!
//! * a 32-bit add in 5 nm costs about 0.5 fJ/bit and takes about 200 ps;
//! * on-chip communication costs 80 fJ/bit-mm and takes 800 ps/mm;
//! * transporting an add result 1 mm therefore costs **160×** the add;
//! * across the span of an 800 mm² GPU (~28.3 mm) it costs **~4500×**;
//! * going off-chip is another order of magnitude (**~50,000×** vs. the add);
//! * the instruction-processing overhead of a modern out-of-order core is
//!   **~10,000×** the energy of the add it performs;
//! * fetching two remote 32-bit operands from a distant on-chip location
//!   costs **1,000×+** the add.
//!
//! Everything here is *parametric*: [`Technology`] holds the constants,
//! and all energies/delays/ratios are derived from them. The defaults
//! reproduce the paper's numbers ([`Technology::n5`]); other nodes can be
//! described by constructing a different [`Technology`].
//!
//! Units are **femtojoules (fJ)** for energy, **picoseconds (ps)** for
//! time, **millimeters (mm)** for distance, and **bits** for data size.
//! These are carried in thin newtypes (see [`units`]) so call sites cannot
//! confuse them.
//!
//! The higher layers use this crate in two places:
//!
//! * `fm-core`'s analytic cost evaluator charges each mapped operation and
//!   each def→use route using [`Technology::op_energy`] /
//!   [`Technology::wire_energy`];
//! * `fm-grid`'s cycle-driven simulator charges the same constants as
//!   messages actually traverse links, so the two must agree (and tests
//!   assert that they do).

pub mod backend;
pub mod chip;
pub mod energy;
pub mod ops;
pub mod ratios;
pub mod technology;
pub mod units;

pub use backend::{
    AnalyticBackend, CostBackend, CostModelKind, MachineCeilings, MappingTotals, RooflineBackend,
    RooflinePoint, SpatialBackend,
};
pub use chip::ChipGeometry;
pub use energy::{EnergyBreakdown, EnergyLedger};
pub use ops::{OpClass, OpKind};
pub use ratios::ClaimedRatios;
pub use technology::Technology;
pub use units::{Femtojoules, Millimeters, Picoseconds};
