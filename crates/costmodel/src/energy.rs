//! Energy accounting: breakdowns and ledgers.
//!
//! Both the analytic F&M cost evaluator (`fm-core`) and the grid
//! simulator (`fm-grid`) accumulate energy into an [`EnergyLedger`],
//! split by where the joules go. The split mirrors the paper's argument:
//! compute is a rounding error; on-chip movement dominates; off-chip
//! movement dominates *that*; and conventional-core instruction overhead
//! dwarfs all of it.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

use crate::units::Femtojoules;

/// A static snapshot of energy split by category.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// ALU / local-SRAM energy.
    pub compute: Femtojoules,
    /// On-chip wire/NoC energy.
    pub onchip_comm: Femtojoules,
    /// Off-chip (DRAM, chip-to-chip) energy.
    pub offchip: Femtojoules,
    /// Instruction-processing overhead (only charged when modeling a
    /// conventional core; zero for mapped spatial execution).
    pub overhead: Femtojoules,
}

impl EnergyBreakdown {
    /// Total across all categories.
    pub fn total(&self) -> Femtojoules {
        self.compute + self.onchip_comm + self.offchip + self.overhead
    }

    /// Fraction of the total spent moving data (on-chip + off-chip).
    /// Returns 0 for an empty breakdown.
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total().raw();
        if total == 0.0 {
            return 0.0;
        }
        (self.onchip_comm + self.offchip).raw() / total
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute: self.compute + rhs.compute,
            onchip_comm: self.onchip_comm + rhs.onchip_comm,
            offchip: self.offchip + rhs.offchip,
            overhead: self.overhead + rhs.overhead,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// A mutable accumulator with event counts alongside the joules.
///
/// Yelick's statement (§6) asks for communication cost to be counted as
/// both *volume* and *number of distinct events*; the ledger tracks both.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Energy split.
    pub energy: EnergyBreakdown,
    /// Number of compute operations charged.
    pub compute_ops: u64,
    /// Number of on-chip messages charged (events, not flits).
    pub onchip_messages: u64,
    /// Total on-chip bits moved, weighted by distance (bit-mm).
    pub onchip_bit_mm: f64,
    /// Total on-chip bits moved (volume, unweighted).
    pub onchip_bits: u64,
    /// Number of off-chip transfers charged.
    pub offchip_transfers: u64,
    /// Total off-chip bits moved.
    pub offchip_bits: u64,
}

impl EnergyLedger {
    /// New, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one compute op of the given energy.
    pub fn charge_compute(&mut self, e: Femtojoules) {
        self.energy.compute += e;
        self.compute_ops += 1;
    }

    /// Charge one on-chip message of `bits` bits over `mm` millimeters
    /// at the given energy.
    pub fn charge_onchip(&mut self, bits: u64, mm: f64, e: Femtojoules) {
        self.energy.onchip_comm += e;
        self.onchip_messages += 1;
        self.onchip_bits += bits;
        self.onchip_bit_mm += bits as f64 * mm;
    }

    /// Charge one off-chip transfer of `bits` bits.
    pub fn charge_offchip(&mut self, bits: u64, e: Femtojoules) {
        self.energy.offchip += e;
        self.offchip_transfers += 1;
        self.offchip_bits += bits;
    }

    /// Charge instruction-processing overhead.
    pub fn charge_overhead(&mut self, e: Femtojoules) {
        self.energy.overhead += e;
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.energy += other.energy;
        self.compute_ops += other.compute_ops;
        self.onchip_messages += other.onchip_messages;
        self.onchip_bits += other.onchip_bits;
        self.onchip_bit_mm += other.onchip_bit_mm;
        self.offchip_transfers += other.offchip_transfers;
        self.offchip_bits += other.offchip_bits;
    }

    /// Mean message size in bits (0 if no messages) — the aggregation
    /// metric for experiment E11.
    pub fn mean_message_bits(&self) -> f64 {
        if self.onchip_messages == 0 {
            0.0
        } else {
            self.onchip_bits as f64 / self.onchip_messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_categories() {
        let b = EnergyBreakdown {
            compute: Femtojoules::new(1.0),
            onchip_comm: Femtojoules::new(2.0),
            offchip: Femtojoules::new(3.0),
            overhead: Femtojoules::new(4.0),
        };
        assert_eq!(b.total().raw(), 10.0);
    }

    #[test]
    fn communication_fraction() {
        let b = EnergyBreakdown {
            compute: Femtojoules::new(1.0),
            onchip_comm: Femtojoules::new(2.0),
            offchip: Femtojoules::new(1.0),
            overhead: Femtojoules::ZERO,
        };
        assert!((b.communication_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::default().communication_fraction(), 0.0);
    }

    #[test]
    fn ledger_counts_events_and_volume() {
        let mut l = EnergyLedger::new();
        l.charge_onchip(32, 1.0, Femtojoules::new(2560.0));
        l.charge_onchip(64, 0.5, Femtojoules::new(2560.0));
        assert_eq!(l.onchip_messages, 2);
        assert_eq!(l.onchip_bits, 96);
        assert!((l.onchip_bit_mm - 64.0).abs() < 1e-12);
        assert_eq!(l.mean_message_bits(), 48.0);
    }

    #[test]
    fn ledger_merge() {
        let mut a = EnergyLedger::new();
        a.charge_compute(Femtojoules::new(16.0));
        let mut b = EnergyLedger::new();
        b.charge_compute(Femtojoules::new(16.0));
        b.charge_offchip(128, Femtojoules::new(1000.0));
        a.merge(&b);
        assert_eq!(a.compute_ops, 2);
        assert_eq!(a.energy.compute.raw(), 32.0);
        assert_eq!(a.offchip_transfers, 1);
        assert_eq!(a.offchip_bits, 128);
    }

    #[test]
    fn breakdown_add_assign() {
        let mut a = EnergyBreakdown::default();
        a += EnergyBreakdown {
            compute: Femtojoules::new(5.0),
            ..Default::default()
        };
        assert_eq!(a.compute.raw(), 5.0);
    }

    #[test]
    fn empty_ledger_mean_message_is_zero() {
        assert_eq!(EnergyLedger::new().mean_message_bits(), 0.0);
    }
}
