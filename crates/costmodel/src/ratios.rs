//! The paper's claimed cost ratios, derived from a [`Technology`].
//!
//! This module is experiment **E1/E2**'s engine: it computes every ratio
//! the panel paper states from the technology constants, pairing each
//! with the value the paper claims so the table generator can print
//! claimed-vs-modeled side by side.

use serde::Serialize;

use crate::ops::OpKind;
use crate::technology::Technology;
use crate::units::Millimeters;

/// One claimed-vs-derived ratio.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RatioClaim {
    /// Short identifier, e.g. `"transport_1mm_vs_add"`.
    pub id: &'static str,
    /// The sentence in the paper (abridged).
    pub claim: &'static str,
    /// The value the paper states.
    pub claimed: f64,
    /// The value derived from the technology model.
    pub derived: f64,
}

impl RatioClaim {
    /// Relative error of the derived value w.r.t. the claim.
    pub fn relative_error(&self) -> f64 {
        (self.derived - self.claimed).abs() / self.claimed
    }

    /// Whether the derived value is within `tol` relative error of the
    /// claim (the paper rounds aggressively, so E1 uses 15%).
    pub fn holds(&self, tol: f64) -> bool {
        self.relative_error() <= tol
    }
}

/// All quantitative claims from §3 of the paper, derived from `tech`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClaimedRatios {
    /// The individual claims.
    pub claims: Vec<RatioClaim>,
}

impl ClaimedRatios {
    /// Derive every §3 ratio from the given technology.
    pub fn derive(tech: &Technology) -> Self {
        let add = tech.add32_energy();
        let add32 = OpKind::add32();

        // "Transporting the result of an add 1mm costs 160x as much as
        // performing the add."
        let transport_1mm = tech.wire_energy(u64::from(add32.width), Millimeters::new(1.0));

        // "Sending it across the diagonal of an 800mm2 GPU costs 4500x."
        let span = tech.chip.span();
        let transport_span = tech.wire_energy(u64::from(add32.width), span);

        // "Going off chip is an order of magnitude more expensive." /
        // "the off-chip access is 50,000x more expensive [than an add]".
        let offchip = tech.offchip_energy(u64::from(add32.width));

        // "The energy overhead of an ADD instruction is 10,000x times more
        // than the energy required to do the add."
        let insn = tech.instruction_energy(add32);

        // "Adding two numbers that are co-located at a distant point
        // requires first transporting them to the processor – again at a
        // cost of 1,000x or more the energy of doing the addition at the
        // remote point."  Two 32-bit operands over 10 mm ≈ 3200× ≥ 1000×;
        // we derive the minimum distance at which the claim holds and the
        // ratio at a representative 10 mm.
        let remote = tech.remote_op_energy(add32, 2, Millimeters::new(10.0));

        ClaimedRatios {
            claims: vec![
                RatioClaim {
                    id: "transport_1mm_vs_add",
                    claim: "transporting an add result 1mm costs 160x the add",
                    claimed: 160.0,
                    derived: transport_1mm.ratio(add),
                },
                RatioClaim {
                    id: "transport_cross_chip_vs_add",
                    claim: "across the diagonal of an 800mm2 GPU costs 4500x",
                    claimed: 4500.0,
                    derived: transport_span.ratio(add),
                },
                RatioClaim {
                    id: "offchip_vs_add",
                    claim: "off-chip access is 50,000x more expensive than an add",
                    claimed: 50_000.0,
                    derived: offchip.ratio(add),
                },
                RatioClaim {
                    id: "instruction_overhead",
                    claim: "energy overhead of an ADD instruction is 10,000x the add",
                    claimed: 10_000.0,
                    derived: insn.ratio(add),
                },
                RatioClaim {
                    id: "remote_operands_10mm",
                    claim: "fetching two distant operands costs 1,000x+ the add",
                    claimed: 1000.0,
                    derived: remote.ratio(add),
                },
            ],
        }
    }

    /// Look up a claim by id.
    pub fn get(&self, id: &str) -> Option<&RatioClaim> {
        self.claims.iter().find(|c| c.id == id)
    }

    /// The minimum on-chip distance (mm) at which fetching
    /// `operand_count` operands of a `width`-bit add costs at least
    /// `target` times the add. Closed form: solving
    /// `op + n·w·e_wire·d ≥ target·op` for `d`.
    pub fn remote_claim_min_distance(
        tech: &Technology,
        operand_count: u32,
        width: u32,
        target: f64,
    ) -> Millimeters {
        let op = tech.op_energy(OpKind::add(width)).raw();
        let per_mm = f64::from(operand_count) * f64::from(width) * tech.wire_energy_fj_per_bit_mm;
        Millimeters::new(((target - 1.0) * op / per_mm).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratios() -> ClaimedRatios {
        ClaimedRatios::derive(&Technology::n5())
    }

    #[test]
    fn transport_1mm_is_exactly_160x() {
        let c = ratios();
        let r = c.get("transport_1mm_vs_add").unwrap();
        assert!((r.derived - 160.0).abs() < 1e-9);
        assert!(r.holds(0.01));
    }

    #[test]
    fn cross_chip_is_about_4500x() {
        let c = ratios();
        let r = c.get("transport_cross_chip_vs_add").unwrap();
        // 160 × √800 ≈ 4525.
        assert!((r.derived - 4525.48).abs() < 0.5);
        assert!(r.holds(0.02));
    }

    #[test]
    fn offchip_is_about_50000x() {
        let c = ratios();
        let r = c.get("offchip_vs_add").unwrap();
        // 10 × 4525 ≈ 45,255 — the paper rounds to 50,000.
        assert!(r.holds(0.15));
        assert!(!r.holds(0.05));
    }

    #[test]
    fn instruction_overhead_exact() {
        let r = ratios();
        assert!(r.get("instruction_overhead").unwrap().holds(1e-9));
    }

    #[test]
    fn remote_operand_claim_holds_at_10mm() {
        let r = ratios();
        let c = r.get("remote_operands_10mm").unwrap();
        assert!(c.derived >= 1000.0, "derived = {}", c.derived);
    }

    #[test]
    fn remote_min_distance_closed_form() {
        let tech = Technology::n5();
        let d = ClaimedRatios::remote_claim_min_distance(&tech, 2, 32, 1000.0);
        // Check by substitution: at distance d the ratio is exactly 1000.
        let e = tech.remote_op_energy(OpKind::add32(), 2, d);
        let ratio = e.ratio(tech.add32_energy());
        assert!((ratio - 1000.0).abs() < 1e-6, "ratio = {ratio}");
        // And it is ~3.1 mm for the paper's constants.
        assert!((d.raw() - 3.12).abs() < 0.01, "d = {}", d.raw());
    }

    #[test]
    fn all_claims_hold_within_15_percent() {
        for c in &ratios().claims {
            // remote_operands is a ">= 1000" claim; holds() is not the
            // right check there, direction matters.
            if c.id == "remote_operands_10mm" {
                assert!(c.derived >= c.claimed);
            } else {
                assert!(
                    c.holds(0.15),
                    "{}: derived {} vs claimed {}",
                    c.id,
                    c.derived,
                    c.claimed
                );
            }
        }
    }

    #[test]
    fn ratios_scale_with_technology() {
        // Doubling wire energy doubles every transport ratio.
        let mut t = Technology::n5();
        t.wire_energy_fj_per_bit_mm *= 2.0;
        let base = ratios();
        let scaled = ClaimedRatios::derive(&t);
        let b = base.get("transport_1mm_vs_add").unwrap().derived;
        let s = scaled.get("transport_1mm_vs_add").unwrap().derived;
        assert!((s / b - 2.0).abs() < 1e-9);
    }
}
