//! The [`Technology`] parameter set and all energies/delays derived from it.

use serde::{Deserialize, Serialize};

use crate::chip::ChipGeometry;
use crate::ops::OpKind;
use crate::units::{Femtojoules, Millimeters, Picoseconds};

/// A process-technology parameter set.
///
/// All cost numbers used anywhere in the workspace are derived from one of
/// these. The [`Technology::n5`] constructor reproduces the constants the
/// paper states for 5 nm; every claimed ratio in the paper then falls out
/// (see [`crate::ratios`] and experiment E1).
/// ```
/// use fm_costmodel::{Millimeters, Technology};
///
/// let tech = Technology::n5();
/// // The paper's 160x claim: one millimeter of wire vs one add.
/// let add = tech.add32_energy();
/// let wire = tech.wire_energy(32, Millimeters::new(1.0));
/// assert!((wire.ratio(add) - 160.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable node name, e.g. `"5nm"`.
    pub name: String,
    /// Energy of one add bit-slice, fJ/bit. Paper: 0.5 fJ/bit.
    pub add_energy_fj_per_bit: f64,
    /// Latency of a full 32-bit add, ps. Paper: ~200 ps.
    pub add32_latency_ps: f64,
    /// On-chip wire energy, fJ/bit-mm. Paper: 80 fJ/bit-mm.
    pub wire_energy_fj_per_bit_mm: f64,
    /// On-chip wire delay, ps/mm. Paper: ~800 ps/mm (repeatered global wire).
    pub wire_delay_ps_per_mm: f64,
    /// Multiplier applied to a full cross-chip transport to obtain the
    /// per-bit cost of going off chip. Paper: "an order of magnitude more
    /// expensive", i.e. 10.
    pub offchip_factor: f64,
    /// Additional latency of an off-chip (DRAM) access, ps. Not stated in
    /// the paper; set to a representative 40 ns.
    pub offchip_latency_ps: f64,
    /// Energy overhead factor of executing one instruction on a modern
    /// out-of-order core, relative to the add it performs. Paper: 10,000×.
    pub instruction_overhead_factor: f64,
    /// Reference die geometry used for "across the chip" distances.
    pub chip: ChipGeometry,
}

impl Technology {
    /// The paper's 5 nm constants on the reference 800 mm² die.
    pub fn n5() -> Self {
        Technology {
            name: "5nm".to_string(),
            add_energy_fj_per_bit: 0.5,
            add32_latency_ps: 200.0,
            wire_energy_fj_per_bit_mm: 80.0,
            wire_delay_ps_per_mm: 800.0,
            offchip_factor: 10.0,
            offchip_latency_ps: 40_000.0,
            instruction_overhead_factor: 10_000.0,
            chip: ChipGeometry::gpu_800mm2(),
        }
    }

    /// A synthetic scaled node: compute energy multiplied by
    /// `compute_scale`, wire energy per mm by `wire_scale`. Process
    /// scaling shrinks transistors much faster than it improves wires
    /// (the physics behind the paper's "communication limited" claim),
    /// so realistic trends have `compute_scale < wire_scale ≤ 1` when
    /// scaling *down* in feature size. This constructor exists for
    /// trend experiments; only the 5 nm point comes from the paper.
    pub fn scaled(&self, name: impl Into<String>, compute_scale: f64, wire_scale: f64) -> Self {
        assert!(
            compute_scale > 0.0 && wire_scale > 0.0,
            "scales must be positive"
        );
        Technology {
            name: name.into(),
            add_energy_fj_per_bit: self.add_energy_fj_per_bit * compute_scale,
            wire_energy_fj_per_bit_mm: self.wire_energy_fj_per_bit_mm * wire_scale,
            ..self.clone()
        }
    }

    /// Same constants but with an explicit grid extent on the die.
    pub fn n5_with_grid(cols: u32, rows: u32) -> Self {
        let mut t = Self::n5();
        t.chip = ChipGeometry::with_grid(t.chip.area_mm2, cols, rows);
        t
    }

    /// Energy of one 32-bit add: 32 bits × 0.5 fJ/bit = 16 fJ in 5 nm.
    pub fn add32_energy(&self) -> Femtojoules {
        self.op_energy(OpKind::add32())
    }

    /// Energy of an arbitrary operation.
    pub fn op_energy(&self, op: OpKind) -> Femtojoules {
        Femtojoules::new(op.add_bits() * self.add_energy_fj_per_bit)
    }

    /// Latency of an arbitrary operation. Add-like ops take the full
    /// add32 latency scaled by log-ish width growth; we keep it simple
    /// and charge the add32 latency for every ALU op — the paper's
    /// latency story is entirely about wires, not ALUs.
    pub fn op_latency(&self, _op: OpKind) -> Picoseconds {
        Picoseconds::new(self.add32_latency_ps)
    }

    /// Energy to move `bits` bits a distance `dist` on chip.
    pub fn wire_energy(&self, bits: u64, dist: Millimeters) -> Femtojoules {
        Femtojoules::new(bits as f64 * dist.raw() * self.wire_energy_fj_per_bit_mm)
    }

    /// Time for a signal to travel `dist` on chip.
    pub fn wire_delay(&self, dist: Millimeters) -> Picoseconds {
        Picoseconds::new(dist.raw() * self.wire_delay_ps_per_mm)
    }

    /// Per-bit energy of one off-chip transfer: `offchip_factor` × the
    /// cost of a full cross-chip (span-length) wire.
    pub fn offchip_energy_per_bit(&self) -> Femtojoules {
        Femtojoules::new(
            self.offchip_factor * self.chip.span().raw() * self.wire_energy_fj_per_bit_mm,
        )
    }

    /// Energy to move `bits` bits off chip (one direction).
    pub fn offchip_energy(&self, bits: u64) -> Femtojoules {
        self.offchip_energy_per_bit() * bits as f64
    }

    /// Latency of an off-chip access.
    pub fn offchip_latency(&self) -> Picoseconds {
        Picoseconds::new(self.offchip_latency_ps)
    }

    /// Total energy of executing one `op` as an *instruction* on a
    /// conventional out-of-order core (fetch, decode, rename, ROB,
    /// bypass, …): the paper's 10,000× overhead claim.
    pub fn instruction_energy(&self, op: OpKind) -> Femtojoules {
        self.op_energy(op) * self.instruction_overhead_factor
    }

    /// Energy to fetch `operand_count` operands of `width` bits each from
    /// a point `dist` away and perform the op locally — the paper's
    /// "adding two numbers that are co-located at a distant point"
    /// scenario.
    pub fn remote_op_energy(
        &self,
        op: OpKind,
        operand_count: u32,
        dist: Millimeters,
    ) -> Femtojoules {
        let transport = self.wire_energy(u64::from(operand_count) * u64::from(op.width), dist);
        self.op_energy(op) + transport
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::n5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add32_energy_is_16fj() {
        assert_eq!(Technology::n5().add32_energy().raw(), 16.0);
    }

    #[test]
    fn wire_energy_1mm_32bits() {
        let t = Technology::n5();
        // 32 bits × 1 mm × 80 fJ/bit-mm = 2560 fJ.
        assert_eq!(t.wire_energy(32, Millimeters::new(1.0)).raw(), 2560.0);
    }

    #[test]
    fn wire_delay_linear_in_distance() {
        let t = Technology::n5();
        assert_eq!(t.wire_delay(Millimeters::new(1.0)).raw(), 800.0);
        assert_eq!(t.wire_delay(Millimeters::new(2.5)).raw(), 2000.0);
    }

    #[test]
    fn offchip_per_bit_is_10x_cross_chip() {
        let t = Technology::n5();
        let cross_chip_per_bit = t.wire_energy(1, t.chip.span()).raw();
        assert!((t.offchip_energy_per_bit().raw() / cross_chip_per_bit - 10.0).abs() < 1e-9);
    }

    #[test]
    fn instruction_energy_matches_overhead_factor() {
        let t = Technology::n5();
        let ratio = t
            .instruction_energy(OpKind::add32())
            .ratio(t.add32_energy());
        assert!((ratio - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn remote_op_energy_includes_both_terms() {
        let t = Technology::n5();
        let local = t.remote_op_energy(OpKind::add32(), 2, Millimeters::ZERO);
        assert_eq!(local, t.add32_energy());
        let remote = t.remote_op_energy(OpKind::add32(), 2, Millimeters::new(1.0));
        // 16 fJ + 2×32 bits × 1 mm × 80 = 16 + 5120.
        assert_eq!(remote.raw(), 16.0 + 5120.0);
    }

    #[test]
    fn scaling_widens_the_transport_gap() {
        // Halving compute energy while wires stay put doubles the
        // transport-vs-add ratio — the trend that makes the paper's
        // argument sharper every node.
        let n5 = Technology::n5();
        let n3ish = n5.scaled("3nm-ish", 0.5, 1.0);
        let ratio = |t: &Technology| {
            t.wire_energy(32, Millimeters::new(1.0))
                .ratio(t.op_energy(OpKind::add32()))
        };
        assert!((ratio(&n3ish) / ratio(&n5) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaling_rejects_nonpositive() {
        Technology::n5().scaled("bad", 0.0, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = Technology::n5();
        let s = serde_json::to_string(&t).unwrap();
        let back: Technology = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn op_latency_constant_for_alu_ops() {
        let t = Technology::n5();
        assert_eq!(t.op_latency(OpKind::add32()).raw(), 200.0);
        assert_eq!(t.op_latency(OpKind::mul(32)).raw(), 200.0);
    }
}
