//! Chip geometry: die area, grid extent, and on-chip distances.
//!
//! The paper's "across the diagonal of an 800 mm² GPU costs 4500× [the
//! add]" claim works out to a span of √800 ≈ 28.3 mm at 80 fJ/bit-mm
//! (160× per mm × 28.3 mm ≈ 4525×). We therefore define the *span* of a
//! die as √area — the side of the equivalent square — and use it both for
//! reproducing the claim and for converting grid-hop counts to physical
//! millimeters in the NoC model.

use serde::{Deserialize, Serialize};

use crate::units::Millimeters;

/// Physical geometry of a die hosting a `cols × rows` grid of processing
/// elements (PEs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// Die area in mm².
    pub area_mm2: f64,
    /// Number of PE columns on the die.
    pub cols: u32,
    /// Number of PE rows on the die.
    pub rows: u32,
}

impl ChipGeometry {
    /// The paper's reference die: an 800 mm² GPU-class chip. The default
    /// grid extent (32×32) is arbitrary but representative; callers that
    /// care set their own.
    pub fn gpu_800mm2() -> Self {
        ChipGeometry {
            area_mm2: 800.0,
            cols: 32,
            rows: 32,
        }
    }

    /// Construct a geometry for an explicit grid extent on a die of the
    /// given area.
    pub fn with_grid(area_mm2: f64, cols: u32, rows: u32) -> Self {
        assert!(area_mm2 > 0.0, "die area must be positive");
        assert!(cols > 0 && rows > 0, "grid extent must be nonzero");
        ChipGeometry {
            area_mm2,
            cols,
            rows,
        }
    }

    /// The span of the die: side of the equivalent square, √area.
    ///
    /// This is the distance the paper uses for its "across the diagonal"
    /// figure (√800 ≈ 28.3 mm).
    pub fn span(&self) -> Millimeters {
        Millimeters::new(self.area_mm2.sqrt())
    }

    /// Physical pitch between adjacent PEs along the x axis.
    pub fn col_pitch(&self) -> Millimeters {
        Millimeters::new(self.area_mm2.sqrt() / self.cols as f64)
    }

    /// Physical pitch between adjacent PEs along the y axis.
    pub fn row_pitch(&self) -> Millimeters {
        Millimeters::new(self.area_mm2.sqrt() / self.rows as f64)
    }

    /// Manhattan distance in millimeters between PE `(x0, y0)` and PE
    /// `(x1, y1)`.
    ///
    /// X-Y dimension-ordered routing (the `fm-grid` NoC) traverses exactly
    /// this distance, so the analytic cost evaluator and the simulator
    /// agree by construction.
    pub fn manhattan(&self, (x0, y0): (u32, u32), (x1, y1): (u32, u32)) -> Millimeters {
        let dx = x0.abs_diff(x1) as f64 * self.col_pitch().raw();
        let dy = y0.abs_diff(y1) as f64 * self.row_pitch().raw();
        Millimeters::new(dx + dy)
    }

    /// Number of grid hops (links traversed) between two PEs under X-Y
    /// routing.
    pub fn hops(&self, (x0, y0): (u32, u32), (x1, y1): (u32, u32)) -> u32 {
        x0.abs_diff(x1) + y0.abs_diff(y1)
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> u32 {
        self.cols * self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_of_800mm2_is_28_3mm() {
        let g = ChipGeometry::gpu_800mm2();
        assert!((g.span().raw() - 28.284).abs() < 0.01);
    }

    #[test]
    fn manhattan_zero_for_same_pe() {
        let g = ChipGeometry::gpu_800mm2();
        assert_eq!(g.manhattan((3, 4), (3, 4)).raw(), 0.0);
    }

    #[test]
    fn manhattan_symmetry() {
        let g = ChipGeometry::with_grid(100.0, 10, 10);
        let a = (1, 2);
        let b = (7, 9);
        assert_eq!(g.manhattan(a, b), g.manhattan(b, a));
    }

    #[test]
    fn corner_to_corner_is_two_spans_minus_pitch() {
        // Manhattan distance corner-to-corner on an n×n grid is
        // 2·(n-1)·pitch, slightly less than twice the span.
        let g = ChipGeometry::with_grid(800.0, 32, 32);
        let d = g.manhattan((0, 0), (31, 31));
        let expected = 2.0 * 31.0 * g.col_pitch().raw();
        assert!((d.raw() - expected).abs() < 1e-9);
    }

    #[test]
    fn hops_match_grid_distance() {
        let g = ChipGeometry::with_grid(400.0, 8, 8);
        assert_eq!(g.hops((0, 0), (7, 7)), 14);
        assert_eq!(g.hops((2, 5), (2, 5)), 0);
        assert_eq!(g.hops((1, 1), (4, 1)), 3);
    }

    #[test]
    fn pitch_scales_inversely_with_grid() {
        let coarse = ChipGeometry::with_grid(800.0, 8, 8);
        let fine = ChipGeometry::with_grid(800.0, 32, 32);
        assert!(coarse.col_pitch().raw() > fine.col_pitch().raw());
        assert!((coarse.col_pitch().raw() / fine.col_pitch().raw() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "die area must be positive")]
    fn zero_area_rejected() {
        ChipGeometry::with_grid(0.0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "grid extent must be nonzero")]
    fn zero_grid_rejected() {
        ChipGeometry::with_grid(100.0, 0, 4);
    }

    #[test]
    fn pe_count() {
        assert_eq!(ChipGeometry::with_grid(100.0, 4, 8).pe_count(), 32);
    }
}
