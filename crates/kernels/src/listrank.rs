//! List ranking by pointer jumping — the canonical irregular PRAM
//! algorithm.
//!
//! Vishkin's statement (§5.1) recalls betting on "work efficient PRAM
//! algorithms" for exactly this kind of problem: a linked list gives
//! serial code no choice but to walk it one link at a time (Θ(n)
//! steps), yet pointer jumping ranks every element in Θ(log n) PRAM
//! steps — parallelism that no compiler can excavate from the serial
//! loop, because it requires *changing the algorithm*.
//!
//! The implementation runs on the CREW engine: each step, every
//! element reads its successor's rank and pointer and doubles its
//! jump. Reads of a shared successor are concurrent (hence CREW);
//! writes stay exclusive (each processor writes only its own cells).

use fm_pram::{ConcurrencyModel, Pram, PramError};

/// Serial reference: rank (distance to the list's tail) per element.
/// `next[i]` is the successor index, with `next[i] == i` marking the
/// tail.
pub fn list_rank_serial(next: &[usize]) -> Vec<i64> {
    let n = next.len();
    let mut rank = vec![0i64; n];
    // Find tail, then walk backwards via an inverse map.
    let mut prev = vec![usize::MAX; n];
    let mut tail = usize::MAX;
    for (i, &nx) in next.iter().enumerate() {
        if nx == i {
            tail = i;
        } else {
            prev[nx] = i;
        }
    }
    assert!(tail != usize::MAX, "list must have a tail (next[i] == i)");
    let mut cur = tail;
    let mut r = 0i64;
    loop {
        rank[cur] = r;
        if prev[cur] == usize::MAX {
            break;
        }
        cur = prev[cur];
        r += 1;
    }
    rank
}

/// Pointer-jumping list ranking on a CREW PRAM.
///
/// Memory layout: `next[0..n]`, `rank[n..2n]`. Each of ⌈log₂ n⌉ rounds
/// runs one step over all n processors. Returns the ranks and the
/// machine (for work/depth accounting).
pub fn list_rank_pram(next: &[usize]) -> Result<(Vec<i64>, Pram), PramError> {
    let n = next.len();
    let mut pram = Pram::new(ConcurrencyModel::Crew, 2 * n);
    let next_i64: Vec<i64> = next.iter().map(|&v| v as i64).collect();
    pram.load(0, &next_i64);
    // rank[i] = 0 if tail else 1.
    let init: Vec<i64> = next
        .iter()
        .enumerate()
        .map(|(i, &nx)| i64::from(nx != i))
        .collect();
    pram.load(n, &init);

    // ⌈log₂ n⌉ doubling rounds suffice for a chain of length n.
    let rounds = n.next_power_of_two().trailing_zeros() as usize;
    for _ in 0..rounds {
        pram.step(n, |i, ctx| {
            let nx = ctx.read(i) as usize;
            if nx != i {
                let r = ctx.read(n + i);
                let r_next = ctx.read(n + nx);
                let nx_next = ctx.read(nx);
                ctx.write(n + i, r + r_next);
                ctx.write(i, nx_next);
            }
        })?;
    }
    Ok((pram.peek_slice(n..2 * n).to_vec(), pram))
}

/// A deterministic random list over `n` elements: a random permutation
/// threaded into a single chain. Returns the `next` array.
pub fn random_list(n: usize, seed: u64) -> Vec<usize> {
    use crate::util::XorShift;
    let mut rng = XorShift::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let mut next = vec![0usize; n];
    for w in order.windows(2) {
        next[w[0]] = w[1];
    }
    let tail = *order.last().unwrap();
    next[tail] = tail;
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_rank_on_simple_chain() {
        // 0 → 1 → 2 → 3 (tail).
        let next = vec![1, 2, 3, 3];
        assert_eq!(list_rank_serial(&next), vec![3, 2, 1, 0]);
    }

    #[test]
    fn pram_matches_serial_on_chains_and_random_lists() {
        for n in [1usize, 2, 5, 16, 100, 257] {
            let next = random_list(n, n as u64 + 7);
            let expect = list_rank_serial(&next);
            let (got, _) = list_rank_pram(&next).unwrap();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn pram_depth_is_logarithmic() {
        let n = 1024;
        let next = random_list(n, 3);
        let (_, pram) = list_rank_pram(&next).unwrap();
        // ⌈log₂ n⌉ = 10 rounds of 1 step each.
        assert_eq!(pram.depth(), 10);
        // Work is n per round: n·log n (pointer jumping is not
        // work-optimal — the classic trade the surveys discuss).
        assert_eq!(pram.work(), 10 * n as u64);
    }

    #[test]
    fn crew_is_required_not_erew() {
        // Two elements pointing at one successor read its cells
        // concurrently — EREW must reject a Y-shaped read pattern.
        // (List ranking on a proper list has in-degree ≤ 1, but after a
        // few jumps two pointers can land on the same node.)
        let next = random_list(64, 5);
        // Run on EREW: expect a conflict somewhere during jumping.
        let n = next.len();
        let mut pram = Pram::new(ConcurrencyModel::Erew, 2 * n);
        let next_i64: Vec<i64> = next.iter().map(|&v| v as i64).collect();
        pram.load(0, &next_i64);
        let init: Vec<i64> = next
            .iter()
            .enumerate()
            .map(|(i, &nx)| i64::from(nx != i))
            .collect();
        pram.load(n, &init);
        let mut conflicted = false;
        for _ in 0..7 {
            let r = pram.step(n, |i, ctx| {
                let nx = ctx.read(i) as usize;
                if nx != i {
                    let r = ctx.read(n + i);
                    let r_next = ctx.read(n + nx);
                    let nx_next = ctx.read(nx);
                    ctx.write(n + i, r + r_next);
                    ctx.write(i, nx_next);
                }
            });
            if r.is_err() {
                conflicted = true;
                break;
            }
        }
        assert!(conflicted, "pointer jumping needs concurrent reads");
    }

    #[test]
    fn random_list_is_a_single_chain() {
        let n = 50;
        let next = random_list(n, 9);
        let ranks = list_rank_serial(&next);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        assert_eq!(sorted, expect);
    }
}
