//! Minimum edit distance — the paper's worked F&M example.
//!
//! The paper (§3) writes:
//!
//! ```text
//! Forall i, j in (0:N-1, 0:N-1)
//!   H(i,j) = min(H(i-1,j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0);
//! Map H(i,j) at i % P   time floor(i/P)*N + j
//! ```
//!
//! This module provides the recurrence (both the paper's local-alignment
//! form with the `0` floor — Smith-Waterman-style scores — and the
//! classic global edit distance), serial references, and the mapping
//! family.
//!
//! ## A finding about the paper's literal mapping
//!
//! Taken literally, `time = floor(i/P)*N + j` schedules rows `i` and
//! `i-1` of the same block at the *same* cycle for equal `j`, so the
//! `H(i-1,j)` and `H(i-1,j-1)` dependencies arrive exactly when (or
//! after) they are needed — the mapping violates causality for every
//! `P > 1` (our legality checker reports it; see the tests). The intent
//! — marching anti-diagonals — needs the standard systolic skew:
//!
//! ```text
//! time = floor(i/P)·(M+P) + (i % P) + j
//! ```
//!
//! which delays each row of a block one cycle behind its predecessor
//! and stretches the block period from `M` to `M+P`. The skewed family
//! is what experiment E3 sweeps; the literal mapping is kept (and
//! asserted illegal) as documentation.

use fm_core::affine::IdxExpr;
use fm_core::dataflow::InputSpec;
use fm_core::expr::{BinOp, ElemExpr, InputRef};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::recurrence::{Boundary, Domain, OutputSpec, Recurrence};
use fm_core::search::{MappingCandidate, MappingFamily};
use fm_core::value::Value;

/// Scoring parameters for the recurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scoring {
    /// Substitution cost when characters match (paper's `f` on equal).
    pub match_cost: f64,
    /// Substitution cost on mismatch.
    pub mismatch_cost: f64,
    /// Deletion cost `D`.
    pub delete_cost: f64,
    /// Insertion cost `I`.
    pub insert_cost: f64,
    /// Include the `0` floor term (local alignment, as the paper
    /// writes) or not (global edit distance).
    pub with_floor: bool,
}

impl Scoring {
    /// Unit-cost global edit distance (Levenshtein).
    pub fn levenshtein() -> Scoring {
        Scoring {
            match_cost: 0.0,
            mismatch_cost: 1.0,
            delete_cost: 1.0,
            insert_cost: 1.0,
            with_floor: false,
        }
    }

    /// The paper's local form: same unit costs plus the `0` floor.
    pub fn paper_local() -> Scoring {
        Scoring {
            with_floor: true,
            ..Scoring::levenshtein()
        }
    }
}

/// Build the recurrence for strings of length `n` (R) and `m` (Q).
pub fn edit_recurrence(n: usize, m: usize, s: Scoring) -> Recurrence {
    let f = ElemExpr::Bin(
        BinOp::Match {
            eq: s.match_cost,
            ne: s.mismatch_cost,
        },
        Box::new(ElemExpr::Input(InputRef {
            input: 0,
            index: vec![IdxExpr::i()],
        })),
        Box::new(ElemExpr::Input(InputRef {
            input: 1,
            index: vec![IdxExpr::j()],
        })),
    );
    let mut branches = vec![
        ElemExpr::SelfRef(vec![-1, -1]).add(f),
        ElemExpr::SelfRef(vec![-1, 0]).add(ElemExpr::lit(s.delete_cost)),
        ElemExpr::SelfRef(vec![0, -1]).add(ElemExpr::lit(s.insert_cost)),
    ];
    if s.with_floor {
        branches.push(ElemExpr::lit(0.0));
    }
    Recurrence {
        name: "edit-distance".into(),
        domain: Domain::d2(n, m),
        expr: ElemExpr::min_of(branches),
        inputs: vec![
            InputSpec {
                name: "R".into(),
                dims: vec![n],
            },
            InputSpec {
                name: "Q".into(),
                dims: vec![m],
            },
        ],
        width_bits: 32,
        boundary: if s.with_floor {
            Boundary::Zero
        } else {
            Boundary::LinearGap { gap: s.delete_cost }
        },
        output: OutputSpec::LastElement,
    }
}

/// Input tensors for the recurrence from two byte strings.
pub fn edit_inputs(r: &[u8], q: &[u8]) -> Vec<Vec<Value>> {
    vec![
        r.iter().map(|&c| Value::real(f64::from(c))).collect(),
        q.iter().map(|&c| Value::real(f64::from(c))).collect(),
    ]
}

/// Serial reference: global edit distance (Levenshtein), O(n·m) DP.
pub fn edit_distance_ref(r: &[u8], q: &[u8]) -> i64 {
    let m = q.len();
    let mut prev: Vec<i64> = (0..=m as i64).collect();
    let mut cur = vec![0i64; m + 1];
    for (i, &rc) in r.iter().enumerate() {
        cur[0] = i as i64 + 1;
        for (j, &qc) in q.iter().enumerate() {
            let sub = prev[j] + i64::from(rc != qc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Serial reference for the paper's local form: the full `H` matrix
/// with the `0` floor (min-based, so "best" is the most negative —
/// with unit costs all entries are ≥ 0 and the matrix is mostly 0;
/// the recurrence structure, which is what we map, is identical to the
/// max-based Smith-Waterman).
pub fn local_matrix_ref(r: &[u8], q: &[u8], s: Scoring) -> Vec<Vec<f64>> {
    let (n, m) = (r.len(), q.len());
    let mut h = vec![vec![0.0f64; m]; n];
    for i in 0..n {
        for j in 0..m {
            let diag = if i > 0 && j > 0 { h[i - 1][j - 1] } else { 0.0 };
            let up = if i > 0 { h[i - 1][j] } else { 0.0 };
            let left = if j > 0 { h[i][j - 1] } else { 0.0 };
            let f = if r[i] == q[j] {
                s.match_cost
            } else {
                s.mismatch_cost
            };
            let mut v = (diag + f).min(up + s.delete_cost).min(left + s.insert_cost);
            if s.with_floor {
                v = v.min(0.0);
            }
            h[i][j] = v;
        }
    }
    h
}

/// The paper's mapping, verbatim: `at i % P, time floor(i/P)*M + j`.
/// Illegal for `P > 1` (see module docs); kept for experiment E3's
/// "as-written vs. corrected" row.
pub fn paper_literal_mapping(p: i64, m: usize) -> Mapping {
    Mapping::Affine(AffineMap {
        place: PlaceExpr::row0(IdxExpr::i() % p),
        time: IdxExpr::i().div(p) * m as i64 + IdxExpr::j(),
    })
}

/// The corrected systolic skew:
/// `at i % P, time floor(i/P)·(M+P) + (i % P) + j`.
pub fn skewed_mapping(p: i64, m: usize) -> Mapping {
    Mapping::Affine(AffineMap {
        place: PlaceExpr::row0(IdxExpr::i() % p),
        time: IdxExpr::i().div(p) * (m as i64 + p) + (IdxExpr::i() % p) + IdxExpr::j(),
    })
}

/// The corrected skew on a **2-D grid**: rows assigned to PEs in
/// serpentine order, so row `i` and row `i+1` stay physically adjacent
/// even when the linear PE id wraps to the next grid row — the same
/// schedule as [`skewed_mapping`], legal on a `cols×rows` machine with
/// `p = cols·rows` PEs.
pub fn skewed_mapping_2d(p: i64, m: usize) -> Mapping {
    Mapping::Affine(AffineMap {
        place: PlaceExpr::Linear {
            id: IdxExpr::i() % p,
            order: fm_core::mapping::LinearOrder::Serpentine,
        },
        time: IdxExpr::i().div(p) * (m as i64 + p) + (IdxExpr::i() % p) + IdxExpr::j(),
    })
}

/// The input placement the paper implies: `R[i]` resident at the PE
/// that owns row `i` (PE `i % P`), `Q` streamed — modeled as resident
/// where used.
pub fn paper_input_placements(p: i64) -> Vec<fm_core::mapping::InputPlacement> {
    use fm_core::mapping::InputPlacement;
    vec![
        InputPlacement::Local(PlaceExpr::row0(IdxExpr::i() % p)),
        InputPlacement::AtUse,
    ]
}

/// Mapping family for the E3 sweep: for each `p` in `p_values`, the
/// literal mapping (rejected) and the skewed one (legal).
#[derive(Debug, Clone)]
pub struct EditDistFamily {
    /// Q length (the `M` in the time expression).
    pub m: usize,
    /// Processor counts to sweep.
    pub p_values: Vec<i64>,
    /// Include the (illegal for P>1) literal mapping in the family.
    pub include_literal: bool,
}

impl MappingFamily for EditDistFamily {
    fn candidates(&self, _machine: &MachineConfig) -> Vec<MappingCandidate> {
        let mut out = Vec::new();
        for &p in &self.p_values {
            if self.include_literal {
                out.push(MappingCandidate::new(
                    format!("paper-literal P={p}"),
                    paper_literal_mapping(p, self.m),
                ));
            }
            out.push(MappingCandidate::new(
                format!("skewed P={p}"),
                skewed_mapping(p, self.m),
            ));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // matrix-style i/j indexing reads clearest in checks
mod tests {
    use super::*;
    use crate::util::{random_sequence, DNA};
    use fm_core::cost::Evaluator;
    use fm_core::legality::check;
    use fm_core::search::{search, FigureOfMerit};
    use fm_grid::Simulator;

    #[test]
    fn levenshtein_reference_known_cases() {
        assert_eq!(edit_distance_ref(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance_ref(b"", b"abc"), 3);
        assert_eq!(edit_distance_ref(b"abc", b""), 3);
        assert_eq!(edit_distance_ref(b"same", b"same"), 0);
        assert_eq!(edit_distance_ref(b"flaw", b"lawn"), 2);
    }

    #[test]
    fn recurrence_matches_reference_global() {
        let r = b"ACGTACGGTC";
        let q = b"ACGGTCCGTA";
        let rec = edit_recurrence(r.len(), q.len(), Scoring::levenshtein());
        let g = rec.elaborate().unwrap();
        let vals = g.eval(&edit_inputs(r, q));
        assert_eq!(vals.last().unwrap().re as i64, edit_distance_ref(r, q));
    }

    #[test]
    fn recurrence_matches_reference_local_matrix() {
        let r = random_sequence(12, DNA, 5);
        let q = random_sequence(9, DNA, 6);
        let s = Scoring::paper_local();
        let rec = edit_recurrence(r.len(), q.len(), s);
        let g = rec.elaborate().unwrap();
        let vals = g.eval(&edit_inputs(&r, &q));
        let h = local_matrix_ref(&r, &q, s);
        for i in 0..r.len() {
            for j in 0..q.len() {
                let id = rec.domain.flatten(&[i as i64, j as i64]).unwrap();
                assert!(
                    (vals[id].re - h[i][j]).abs() < 1e-9,
                    "H({i},{j}): {} vs {}",
                    vals[id].re,
                    h[i][j]
                );
            }
        }
    }

    #[test]
    fn paper_literal_mapping_is_illegal_for_p_gt_1() {
        let n = 16;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::linear(4);
        let rm = paper_literal_mapping(4, n).resolve(&g, &machine).unwrap();
        let rep = check(&g, &rm, &machine);
        assert!(!rep.is_legal());
        // The violations are exactly the within-block cross-row deps.
        assert!(rep.total_violations > 0);
    }

    #[test]
    fn paper_literal_mapping_is_legal_for_p_1() {
        let n = 8;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::linear(1);
        let rm = paper_literal_mapping(1, n).resolve(&g, &machine).unwrap();
        assert!(check(&g, &rm, &machine).is_legal());
    }

    #[test]
    fn skewed_mapping_legal_across_p() {
        let n = 16;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        for p in [1i64, 2, 4, 8, 16] {
            let machine = MachineConfig::linear(p as u32);
            let rm = skewed_mapping(p, n).resolve(&g, &machine).unwrap();
            let rep = check(&g, &rm, &machine);
            assert!(
                rep.is_legal(),
                "P={p}: {:?}",
                &rep.errors[..rep.errors.len().min(2)]
            );
        }
    }

    #[test]
    fn serpentine_2d_mapping_legal_on_square_grids() {
        // 16 PEs as a 4×4 grid: the serpentine layout keeps consecutive
        // rows adjacent across grid-row wraps, so the same skew is
        // legal — row-major would not be (the wrap hop is cols wide).
        let n = 32;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::n5(4, 4);
        let rm = skewed_mapping_2d(16, n).resolve(&g, &machine).unwrap();
        let rep = check(&g, &rm, &machine);
        assert!(
            rep.is_legal(),
            "{:?}",
            &rep.errors[..rep.errors.len().min(2)]
        );

        // The row-major equivalent is illegal at the wrap.
        let row_major = Mapping::Affine(fm_core::mapping::AffineMap {
            place: fm_core::mapping::PlaceExpr::Linear {
                id: IdxExpr::i() % 16,
                order: fm_core::mapping::LinearOrder::RowMajor,
            },
            time: IdxExpr::i().div(16) * (n as i64 + 16) + (IdxExpr::i() % 16) + IdxExpr::j(),
        });
        let rm_rm = row_major.resolve(&g, &machine).unwrap();
        assert!(!check(&g, &rm_rm, &machine).is_legal());
    }

    #[test]
    fn serpentine_2d_simulates_correctly() {
        let r = random_sequence(16, DNA, 61);
        let q = random_sequence(16, DNA, 62);
        let s = Scoring::paper_local();
        let rec = edit_recurrence(r.len(), q.len(), s);
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::n5(4, 2);
        let rm = skewed_mapping_2d(8, q.len()).resolve(&g, &machine).unwrap();
        let sim = fm_grid::Simulator::new(machine);
        // Inputs at use: placement exprs are 1-D rows, not valid homes
        // on the 2-D serpentine — keep it simple here.
        let res = sim
            .run(
                &g,
                &rm,
                &edit_inputs(&r, &q),
                &[
                    fm_core::mapping::InputPlacement::AtUse,
                    fm_core::mapping::InputPlacement::AtUse,
                ],
            )
            .unwrap();
        let h = local_matrix_ref(&r, &q, s);
        for i in 0..r.len() {
            for j in 0..q.len() {
                let id = rec.domain.flatten(&[i as i64, j as i64]).unwrap();
                assert!((res.values[id].re - h[i][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn skewed_mapping_speeds_up_with_p() {
        let n = 32;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        let mut last_cycles = i64::MAX;
        for p in [1i64, 2, 4, 8] {
            let machine = MachineConfig::linear(p as u32);
            let rm = skewed_mapping(p, n).resolve(&g, &machine).unwrap();
            let cycles = rm.makespan();
            assert!(cycles < last_cycles, "P={p}: {cycles} !< {last_cycles}");
            last_cycles = cycles;
        }
    }

    #[test]
    fn grid_simulation_matches_reference_values() {
        let r = random_sequence(12, DNA, 21);
        let q = random_sequence(12, DNA, 22);
        let s = Scoring::paper_local();
        let rec = edit_recurrence(r.len(), q.len(), s);
        let g = rec.elaborate().unwrap();
        let p = 4i64;
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, q.len()).resolve(&g, &machine).unwrap();
        let sim = Simulator::new(machine);
        let res = sim
            .run(&g, &rm, &edit_inputs(&r, &q), &paper_input_placements(p))
            .unwrap();
        let h = local_matrix_ref(&r, &q, s);
        for i in 0..r.len() {
            for j in 0..q.len() {
                let id = rec.domain.flatten(&[i as i64, j as i64]).unwrap();
                assert!((res.values[id].re - h[i][j]).abs() < 1e-9);
            }
        }
        // Legal, uncontended systolic schedule runs exactly on time.
        assert_eq!(res.cycles_actual, res.cycles_scheduled);
    }

    #[test]
    fn family_search_rejects_literal_keeps_skewed() {
        let n = 16;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::linear(8);
        let family = EditDistFamily {
            m: n,
            p_values: vec![2, 4, 8],
            include_literal: true,
        };
        let cands = family.candidates(&machine);
        let ev = Evaluator::new(&g, &machine);
        let out = search(&ev, &g, &machine, &cands, FigureOfMerit::Time);
        assert_eq!(out.evaluated, 6);
        assert_eq!(out.legal, 3); // only the skewed ones
        assert_eq!(out.rejected.len(), 3);
        assert!(out.best().unwrap().label.contains("skewed P=8"));
    }

    #[test]
    fn utilization_near_one_for_full_pipeline() {
        // With n much larger than P, the skewed systolic schedule keeps
        // PEs busy almost every cycle: utilization ≥ n/(n+P) - ε.
        let n = 64;
        let p = 4i64;
        let rec = edit_recurrence(n, n, Scoring::paper_local());
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, n).resolve(&g, &machine).unwrap();
        let rep = Evaluator::new(&g, &machine).evaluate(&rm);
        assert!(rep.utilization > 0.9, "utilization {}", rep.utilization);
    }
}
