//! Breadth-first search: the paper's example of hidden parallelism.
//!
//! Vishkin (§5.1): "breadth-first search on graphs had been tied to a
//! first-in first-out queue for no good reason other than enforcing
//! serialization, even where parallelism exists."
//!
//! * [`bfs_serial`] — the textbook FIFO-queue BFS (the serialized
//!   form);
//! * [`bfs_xmt`] — the level-synchronous XMT version: each level is one
//!   spawn block over the current frontier's edges; newly discovered
//!   vertices are compacted into the next frontier with the hardware
//!   prefix-sum primitive — no queue, no locks. Work `O(V+E)`, depth
//!   `O(diameter)`, exactly the PRAM argument;
//! * [`random_graph`] — a deterministic sparse graph generator (CSR).

use fm_pram::xmt::Xmt;
use fm_pram::PramError;

use crate::util::XorShift;

/// A graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row offsets, length `n+1`.
    pub offsets: Vec<usize>,
    /// Column indices (neighbors), length `m`.
    pub edges: Vec<usize>,
}

impl Csr {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.edges[self.offsets[v]..self.offsets[v + 1]]
    }
}

/// A deterministic random directed graph: `n` vertices, about
/// `n·avg_deg` edges, each endpoint uniform. Self-loops allowed
/// (harmless for BFS); duplicates allowed.
pub fn random_graph(n: usize, avg_deg: usize, seed: u64) -> Csr {
    let mut rng = XorShift::new(seed);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in adj.iter_mut() {
        let deg = avg_deg;
        for _ in 0..deg {
            u.push(rng.below(n as u64) as usize);
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut edges = Vec::new();
    offsets.push(0);
    for u in &adj {
        edges.extend_from_slice(u);
        offsets.push(edges.len());
    }
    Csr { offsets, edges }
}

/// Textbook serial BFS with a FIFO queue. Returns distances (-1 for
/// unreachable) and the number of queue operations (the serial chain
/// length — every vertex passes through the queue one at a time).
pub fn bfs_serial(g: &Csr, source: usize) -> (Vec<i64>, u64) {
    let n = g.vertices();
    let mut dist = vec![-1i64; n];
    let mut queue = std::collections::VecDeque::new();
    let mut queue_ops = 0u64;
    dist[source] = 0;
    queue.push_back(source);
    queue_ops += 1;
    while let Some(u) = queue.pop_front() {
        queue_ops += 1;
        for &v in g.neighbors(u) {
            if dist[v] < 0 {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
                queue_ops += 1;
            }
        }
    }
    (dist, queue_ops)
}

/// Level-synchronous BFS on the XMT machine.
///
/// Shared-memory layout: `dist[0..n]`, `frontier[n..2n]`,
/// `next[2n..3n]`, counter for next-frontier size at `3n`, current
/// frontier size known on the host. Each level runs one spawn block
/// per *frontier vertex* whose threads scan their vertex's edges,
/// claim undiscovered neighbors with an arbitrary-CRCW write, and
/// compact winners into the next frontier via `ps`.
///
/// Returns distances, plus (work, depth) from the machine.
pub fn bfs_xmt(g: &Csr, source: usize) -> Result<(Vec<i64>, u64, u64), PramError> {
    let n = g.vertices();
    let dist_base = 0usize;
    let frontier_base = n;
    let next_base = 2 * n;
    let counter = 3 * n;
    let owner_base = 3 * n + 1; // who discovered each vertex this level
    let mut x = Xmt::new(owner_base + n);

    // dist = -1 except source.
    x.load(dist_base, &vec![-1i64; n]);
    x.load(dist_base + source, &[0]);
    x.load(frontier_base, &[source as i64]);

    let mut frontier_len = 1usize;
    let mut level = 0i64;
    while frontier_len > 0 {
        // Reset the next-frontier counter.
        x.load(counter, &[0]);

        // Phase 1: every frontier vertex's thread claims undiscovered
        // neighbors by writing its own id into owner[v] (arbitrary CRCW
        // resolves races deterministically).
        x.spawn(frontier_len, |tid, ctx| {
            let u = ctx.read(frontier_base + tid) as usize;
            for &v in g.neighbors(u) {
                if ctx.read(dist_base + v) < 0 {
                    ctx.write(owner_base + v, u as i64 + 1); // +1: 0 = no owner
                }
            }
        })?;

        // Phase 2: the same threads re-scan; the thread whose claim won
        // sets dist and compacts the vertex into `next` via ps.
        {
            let lvl = level + 1;
            x.spawn(frontier_len, move |tid, ctx| {
                let u = ctx.read(frontier_base + tid) as usize;
                let nbrs = g.neighbors(u);
                for (idx, &v) in nbrs.iter().enumerate() {
                    // Skip duplicate edges so a vertex enters the next
                    // frontier at most once.
                    if nbrs[..idx].contains(&v) {
                        continue;
                    }
                    if ctx.read(dist_base + v) < 0 && ctx.read(owner_base + v) == u as i64 + 1 {
                        let slot = ctx.ps(counter);
                        ctx.write(dist_base + v, lvl);
                        ctx.write(next_base + slot as usize, v as i64);
                    }
                }
            })?;
        }

        // Host: clear owners of the vertices just discovered and swap
        // frontiers.
        frontier_len = x.peek(counter) as usize;
        let next: Vec<i64> = x.peek_slice(next_base..next_base + frontier_len).to_vec();
        for &v in &next {
            x.load(owner_base + v as usize, &[0]);
        }
        x.load(frontier_base, &next);
        level += 1;
    }

    let dist = x.peek_slice(dist_base..dist_base + n).to_vec();
    Ok((dist, x.work(), x.depth()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple path graph 0→1→2→…→n-1.
    fn path(n: usize) -> Csr {
        let mut offsets = vec![0];
        let mut edges = Vec::new();
        for v in 0..n {
            if v + 1 < n {
                edges.push(v + 1);
            }
            offsets.push(edges.len());
        }
        Csr { offsets, edges }
    }

    /// A star: 0 → 1..n-1.
    fn star(n: usize) -> Csr {
        let mut offsets = vec![0];
        let mut edges: Vec<usize> = (1..n).collect();
        offsets.push(edges.len());
        for _ in 1..n {
            offsets.push(edges.len());
        }
        let _ = &mut edges;
        Csr { offsets, edges }
    }

    #[test]
    fn serial_bfs_on_path() {
        let g = path(5);
        let (dist, ops) = bfs_serial(&g, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert!(ops >= 10); // every vertex enqueued + dequeued
    }

    #[test]
    fn xmt_bfs_matches_serial_on_path_and_star() {
        for g in [path(9), star(12)] {
            let (d1, _) = bfs_serial(&g, 0);
            let (d2, _, _) = bfs_xmt(&g, 0).unwrap();
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn xmt_bfs_matches_serial_on_random_graphs() {
        for seed in 1..=5u64 {
            let g = random_graph(200, 4, seed);
            let (d1, _) = bfs_serial(&g, 0);
            let (d2, _, _) = bfs_xmt(&g, 0).unwrap();
            assert_eq!(d1, d2, "seed {seed}");
        }
    }

    #[test]
    fn xmt_depth_tracks_diameter_not_size() {
        // Star: diameter 1 → constant number of spawn blocks, while the
        // serial queue performs Θ(n) operations.
        let g = star(1000);
        let (_, serial_ops) = bfs_serial(&g, 0);
        let (_, _, depth) = bfs_xmt(&g, 0).unwrap();
        assert!(serial_ops > 1000);
        assert!(depth <= 4, "depth {depth}");
    }

    #[test]
    fn xmt_work_is_linear_in_edges() {
        let g = random_graph(500, 4, 7);
        let (_, work, _) = bfs_xmt(&g, 0).unwrap();
        // Each frontier vertex is activated twice per level; work stays
        // O(V) activations (edge scanning happens inside threads).
        assert!(work <= 2 * 500 + 2, "work {work}");
    }

    #[test]
    fn unreachable_vertices_stay_minus_one() {
        // Two disconnected vertices.
        let g = Csr {
            offsets: vec![0, 1, 1, 1],
            edges: vec![1],
        };
        let (d, _) = bfs_serial(&g, 0);
        assert_eq!(d, vec![0, 1, -1]);
        let (d2, _, _) = bfs_xmt(&g, 0).unwrap();
        assert_eq!(d2, vec![0, 1, -1]);
    }

    #[test]
    fn random_graph_shape() {
        let g = random_graph(100, 3, 42);
        assert_eq!(g.vertices(), 100);
        assert_eq!(g.edge_count(), 300);
        assert!(g.edges.iter().all(|&v| v < 100));
    }
}
