//! Instrumented parallel mergesort for the greedy-bound experiment.
//!
//! Experiment E6 checks Brent's bound `T_P ≤ W/P + S` on a real
//! work-stealing scheduler, which needs kernels whose `W` and `S` are
//! known. Mergesort with sequential merge is the classic instructive
//! case: `W = Θ(n log n)` but `S = Θ(n)` (the root merge is serial), so
//! its measured speedup saturates early — in contrast to `par_scan`,
//! whose span is logarithmic-ish in the chunk structure.

use fm_workspan::{ThreadPool, WorkSpan};

/// Merge two sorted runs.
fn merge(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Parallel mergesort. Returns the sorted vector and its work-span
/// cost in comparison units (leaf sorts count `len·log₂len`, merges
/// count their output length; the merge is sequential, so it adds to
/// the span).
pub fn par_mergesort(pool: &ThreadPool, data: &[u64], grain: usize) -> (Vec<u64>, WorkSpan) {
    let grain = grain.max(1);
    fn go(pool: &ThreadPool, v: &[u64], grain: usize) -> (Vec<u64>, WorkSpan) {
        let n = v.len();
        if n <= grain {
            let mut out = v.to_vec();
            out.sort_unstable();
            let cost = n as f64 * (n.max(2) as f64).log2();
            return (out, WorkSpan::leaf(cost));
        }
        let mid = n / 2;
        let ((la, wa), (lb, wb)) =
            pool.join(|| go(pool, &v[..mid], grain), || go(pool, &v[mid..], grain));
        let mut out = vec![0u64; n];
        merge(&la, &lb, &mut out);
        // Children in parallel, then a sequential merge of n elements.
        (out, wa.par(wb).seq(WorkSpan::leaf(n as f64)))
    }
    if data.is_empty() {
        return (Vec::new(), WorkSpan::ZERO);
    }
    pool.run(|| go(pool, data, grain))
}

/// Parallel sample sort: sample `oversample·√buckets` keys, pick
/// `buckets-1` splitters, bucket all elements in parallel (per-chunk
/// histograms + a small serial scan of offsets), then sort buckets in
/// parallel. Unlike mergesort its span is Θ(n/buckets + buckets·log n),
/// so the parallelism ceiling is tunable — sample sort is the standard
/// answer to mergesort's serial root merge.
pub fn par_samplesort(pool: &ThreadPool, data: &[u64], buckets: usize) -> (Vec<u64>, WorkSpan) {
    let n = data.len();
    let buckets = buckets.clamp(1, n.max(1));
    if n <= 1 || buckets == 1 {
        let mut out = data.to_vec();
        out.sort_unstable();
        let c = n as f64 * (n.max(2) as f64).log2();
        return (out, WorkSpan::leaf(c));
    }

    // 1. Splitters from a deterministic oversample.
    let oversample = 8usize;
    let mut sample: Vec<u64> = (0..buckets * oversample)
        .map(|i| data[(i * 2654435761usize) % n])
        .collect();
    sample.sort_unstable();
    let splitters: Vec<u64> = (1..buckets).map(|b| sample[b * oversample]).collect();

    let bucket_of = |v: u64| splitters.partition_point(|&s| s <= v);

    // 2. Per-chunk histograms in parallel.
    let chunk = n.div_ceil((pool.threads().max(1) * 4).max(buckets)).max(1);
    let chunks: Vec<&[u64]> = data.chunks(chunk).collect();
    let k = chunks.len();
    let mut hists = vec![vec![0usize; buckets]; k];
    {
        struct Cell(*mut Vec<usize>);
        unsafe impl Sync for Cell {}
        let out = Cell(hists.as_mut_ptr());
        let out = &out;
        fm_workspan::par_for(pool, 0..k, 1, |c| {
            // Safety: each c writes only hists[c].
            let h = unsafe { &mut *out.0.add(c) };
            for &v in chunks[c] {
                h[bucket_of(v)] += 1;
            }
        });
    }

    // 3. Serial exclusive scan of (bucket-major) offsets.
    let mut offsets = vec![vec![0usize; buckets]; k];
    let mut acc = 0usize;
    let mut bucket_starts = vec![0usize; buckets + 1];
    for b in 0..buckets {
        bucket_starts[b] = acc;
        for c in 0..k {
            offsets[c][b] = acc;
            acc += hists[c][b];
        }
    }
    bucket_starts[buckets] = acc;

    // 4. Parallel scatter into place.
    let mut out = vec![0u64; n];
    {
        struct Cell(*mut u64);
        unsafe impl Sync for Cell {}
        let dst = Cell(out.as_mut_ptr());
        let dst = &dst;
        fm_workspan::par_for(pool, 0..k, 1, |c| {
            let mut cursors = offsets[c].clone();
            for &v in chunks[c] {
                let b = bucket_of(v);
                // Safety: disjoint destinations — chunk c owns
                // offsets[c][b]..offsets[c][b]+hists[c][b] per bucket.
                unsafe { *dst.0.add(cursors[b]) = v };
                cursors[b] += 1;
            }
        });
    }

    // 5. Sort buckets in parallel (in place, disjoint ranges).
    {
        struct Cell(*mut u64);
        unsafe impl Sync for Cell {}
        let dst = Cell(out.as_mut_ptr());
        let dst = &dst;
        let starts = &bucket_starts;
        fm_workspan::par_for(pool, 0..buckets, 1, |b| {
            let (lo, hi) = (starts[b], starts[b + 1]);
            // Safety: bucket ranges are disjoint.
            let slice = unsafe { std::slice::from_raw_parts_mut(dst.0.add(lo), hi - lo) };
            slice.sort_unstable();
        });
    }

    // Cost accounting: bucketing (2 passes over n) + per-bucket sorts.
    let avg_bucket = n as f64 / buckets as f64;
    let ws = WorkSpan {
        work: 2.0 * n as f64 + n as f64 * avg_bucket.max(2.0).log2(),
        span: 2.0 * chunk as f64
            + (buckets * k) as f64
            + 2.0 * avg_bucket * avg_bucket.max(2.0).log2(),
    };
    (out, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::XorShift;

    fn random_data(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = XorShift::new(seed);
        (0..n).map(|_| rng.next_u64() % 1_000_000).collect()
    }

    #[test]
    fn sorts_correctly() {
        let pool = ThreadPool::with_threads(4);
        for n in [0usize, 1, 2, 100, 10_000] {
            let data = random_data(n, n as u64 + 3);
            let mut expect = data.clone();
            expect.sort_unstable();
            let (got, _) = par_mergesort(&pool, &data, 64);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn span_dominated_by_root_merge() {
        let pool = ThreadPool::with_threads(2);
        let n = 1 << 14;
        let data = random_data(n, 5);
        let (_, ws) = par_mergesort(&pool, &data, 256);
        // Span ≥ n (root merge) + n/2 + … ≈ 2n; far below work.
        assert!(ws.span >= n as f64);
        assert!(ws.span <= 3.0 * n as f64);
        assert!(ws.work > ws.span);
        // Parallelism ≈ log n — mergesort's known ceiling.
        assert!(ws.parallelism() < 32.0);
    }

    #[test]
    fn already_sorted_input() {
        let pool = ThreadPool::with_threads(4);
        let data: Vec<u64> = (0..5000).collect();
        let (got, _) = par_mergesort(&pool, &data, 128);
        assert_eq!(got, data);
    }

    #[test]
    fn merge_handles_skew() {
        let mut out = vec![0u64; 6];
        merge(&[1, 2, 3, 4, 5], &[10], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 10]);
        merge(&[10], &[1, 2, 3, 4, 5], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 10]);
    }

    #[test]
    fn samplesort_correct_across_sizes() {
        let pool = ThreadPool::with_threads(4);
        for n in [0usize, 1, 2, 17, 1000, 50_000] {
            let data = random_data(n, n as u64 + 11);
            let mut expect = data.clone();
            expect.sort_unstable();
            let (got, _) = par_samplesort(&pool, &data, 16);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn samplesort_handles_skewed_keys() {
        // Heavy duplicates: half the keys identical.
        let pool = ThreadPool::with_threads(4);
        let mut data = random_data(20_000, 3);
        for v in data.iter_mut().step_by(2) {
            *v = 42;
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        let (got, _) = par_samplesort(&pool, &data, 32);
        assert_eq!(got, expect);
    }

    #[test]
    fn samplesort_span_beats_mergesort_span() {
        // The point of sample sort: no Θ(n) serial merge at the root.
        let pool = ThreadPool::with_threads(2);
        let n = 1 << 15;
        let data = random_data(n, 5);
        let (_, ms) = par_mergesort(&pool, &data, 256);
        let (_, ss) = par_samplesort(&pool, &data, 64);
        assert!(
            ss.span < ms.span / 4.0,
            "samplesort span {} !< mergesort span {} / 4",
            ss.span,
            ms.span
        );
    }

    #[test]
    fn duplicates_preserved() {
        let pool = ThreadPool::with_threads(2);
        let data = vec![5u64, 3, 5, 1, 5, 3];
        let (got, _) = par_mergesort(&pool, &data, 2);
        assert_eq!(got, vec![1, 3, 3, 5, 5, 5]);
    }
}
