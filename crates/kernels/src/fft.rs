//! FFT dataflow graphs: decimation in time vs. decimation in frequency.
//!
//! The paper (§3): "For a given problem — there may be several functions
//! that compute the result (e.g., decimation in time vs decimation in
//! space FFT, or different radix FFT). For each function there are many
//! possible mappings…" and later: "when comparing two FFT algorithms
//! that are both O(N log N), the one that is 50,000× more efficient is
//! preferred."
//!
//! Both variants here perform identical arithmetic (N/2·log₂N complex
//! butterflies) and produce identical results — but they *move data
//! differently*:
//!
//! * **DIT** consumes its input in bit-reversed order (a scatter before
//!   stage 0) and emits output in natural order;
//! * **DIF** consumes input in natural order and ends bit-reversed, so
//!   a gather (an explicit copy layer in the graph) follows the last
//!   stage.
//!
//! Under the PRAM's unit cost the two are indistinguishable. Under a
//! mapping, the permutation's physical distance shows up — which is
//! experiment E4/E5's point.
//!
//! Node domain indices are `[stage, lane]`, so affine mappings apply;
//! the provided [`FftFamily`] instead uses placements (block or cyclic
//! lanes) with times derived by list scheduling, which is both legal by
//! construction and dense.

use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{Mapping, ResolvedMapping};
use fm_core::search::{retime, MappingCandidate, MappingFamily};
use fm_core::value::Value;

use std::f64::consts::TAU;

/// Bit-reverse `i` within `bits` bits.
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Naive O(n²) DFT reference (forward transform, `e^{-2πi jk/n}`).
pub fn dft_naive(x: &[Value]) -> Vec<Value> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Value::ZERO;
            for (j, &v) in x.iter().enumerate() {
                acc = acc + v * Value::cis(-TAU * (j * k % n) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

/// Iterative radix-2 DIT FFT reference.
pub fn fft_ref(x: &[Value]) -> Vec<Value> {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let bits = n.trailing_zeros();
    let mut a: Vec<Value> = (0..n).map(|i| x[bit_reverse(i, bits)]).collect();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = Value::cis(-TAU * k as f64 / len as f64);
                let u = a[start + k];
                let t = w * a[start + k + half];
                a[start + k] = u + t;
                a[start + k + half] = u - t;
            }
        }
        len *= 2;
    }
    a
}

/// Which FFT decomposition to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftVariant {
    /// Decimation in time: bit-reversed input, natural output.
    Dit,
    /// Decimation in frequency: natural input, bit-reversed output
    /// (restored by an explicit copy layer).
    Dif,
}

/// Build the element-level FFT graph for `n` lanes (power of two).
///
/// Node ids are laid out stage-major: stage `s` (0 = the input layer)
/// occupies ids `s·n .. (s+1)·n`, node `s·n + lane` holding lane
/// `lane`'s value after stage `s`. For DIF an extra copy layer performs
/// the final bit-reversal.
pub fn fft_graph(n: usize, variant: FftVariant) -> DataflowGraph {
    assert!(
        n.is_power_of_two() && n >= 2,
        "FFT size must be a power of two ≥ 2"
    );
    let bits = n.trailing_zeros();
    let stages = bits as usize;
    let mut g = DataflowGraph::new(
        match variant {
            FftVariant::Dit => format!("fft{n}-dit"),
            FftVariant::Dif => format!("fft{n}-dif"),
        },
        64, // a complex double lane: model as a 64-bit payload
    );
    let x = g.add_input("x", vec![n]);

    // Input layer.
    let mut prev: Vec<u32> = (0..n)
        .map(|lane| {
            let src = match variant {
                FftVariant::Dit => bit_reverse(lane, bits),
                FftVariant::Dif => lane,
            };
            g.add_node(CExpr::input(x, src as u32), vec![], vec![0, lane as i64])
        })
        .collect();

    for s in 0..stages {
        // DIT grows the butterfly span (len = 2^{s+1}); DIF shrinks it.
        let half = match variant {
            FftVariant::Dit => 1usize << s,
            FftVariant::Dif => n >> (s + 1),
        };
        let len = half * 2;
        let mut cur = vec![0u32; n];
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let a = start + k;
                let b = start + k + half;
                let w = Value::cis(-TAU * k as f64 / len as f64);
                let (ea, eb) = match variant {
                    FftVariant::Dit => (
                        // out_a = in_a + w·in_b ; out_b = in_a − w·in_b
                        CExpr::dep(0).add(CExpr::konst(w).mul(CExpr::dep(1))),
                        CExpr::dep(0).sub(CExpr::konst(w).mul(CExpr::dep(1))),
                    ),
                    FftVariant::Dif => (
                        // out_a = in_a + in_b ; out_b = (in_a − in_b)·w
                        CExpr::dep(0).add(CExpr::dep(1)),
                        CExpr::dep(0).sub(CExpr::dep(1)).mul(CExpr::konst(w)),
                    ),
                };
                cur[a] = g.add_node(ea, vec![prev[a], prev[b]], vec![s as i64 + 1, a as i64]);
                cur[b] = g.add_node(eb, vec![prev[a], prev[b]], vec![s as i64 + 1, b as i64]);
            }
        }
        prev = cur;
    }

    match variant {
        FftVariant::Dit => {
            for &id in &prev {
                g.mark_output(id);
            }
        }
        FftVariant::Dif => {
            // Explicit bit-reversal gather: lane `lane` copies from lane
            // `bitrev(lane)` of the last butterfly layer.
            for lane in 0..n {
                let src = prev[bit_reverse(lane, bits)];
                let id = g.add_node(
                    CExpr::dep(0),
                    vec![src],
                    vec![stages as i64 + 1, lane as i64],
                );
                g.mark_output(id);
            }
        }
    }
    g
}

/// Reverse the base-4 digits of `i` within `digits` digits.
pub fn digit_reverse_4(i: usize, digits: u32) -> usize {
    let mut x = i;
    let mut out = 0usize;
    for _ in 0..digits {
        out = (out << 2) | (x & 3);
        x >>= 2;
    }
    out
}

/// Build a **radix-4** DIT FFT graph for `n` lanes (a power of four).
///
/// The paper names "different radix FFT" as a second axis of the
/// function space: radix-4 performs the same transform with half the
/// stages (`log₄ n`), trading three extra twiddle multiplies per
/// 4-point butterfly for fewer rounds of lane-crossing communication —
/// a different (function, mapping) trade for the E4 search to weigh.
///
/// Node domain indices are `[stage, lane]`, compatible with
/// [`fft_mapping`].
pub fn fft_radix4_graph(n: usize) -> DataflowGraph {
    assert!(
        n >= 4 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2),
        "radix-4 FFT size must be a power of four ≥ 4"
    );
    let digits = n.trailing_zeros() / 2;
    let stages = digits as usize;
    let mut g = DataflowGraph::new(format!("fft{n}-radix4"), 64);
    let x = g.add_input("x", vec![n]);

    // Input layer: base-4 digit-reversed loads.
    let mut prev: Vec<u32> = (0..n)
        .map(|lane| {
            let src = digit_reverse_4(lane, digits);
            g.add_node(CExpr::input(x, src as u32), vec![], vec![0, lane as i64])
        })
        .collect();

    for s in 0..stages {
        let q = 1usize << (2 * s); // quarter span
        let len = 4 * q;
        let mut cur = vec![0u32; n];
        for start in (0..n).step_by(len) {
            for k in 0..q {
                let lanes = [
                    start + k,
                    start + k + q,
                    start + k + 2 * q,
                    start + k + 3 * q,
                ];
                let deps: Vec<u32> = lanes.iter().map(|&l| prev[l]).collect();
                for (m, &out_lane) in lanes.iter().enumerate() {
                    // y_m = Σ_l  W^{k·l} · (−i)^{m·l} · x_l, W = e^{−2πi/len}.
                    let mut expr = CExpr::dep(0);
                    for l in 1..4usize {
                        let tw = Value::cis(-TAU * (k * l) as f64 / len as f64);
                        let dft = Value::cis(-TAU * ((m * l) % 4) as f64 / 4.0);
                        expr = expr.add(CExpr::konst(tw * dft).mul(CExpr::dep(l as u32)));
                    }
                    cur[out_lane] =
                        g.add_node(expr, deps.clone(), vec![s as i64 + 1, out_lane as i64]);
                }
            }
        }
        prev = cur;
    }
    for &id in &prev {
        g.mark_output(id);
    }
    g
}

/// Lane placement for the mapping family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePlacement {
    /// Lane `l` on PE `l / (n/p)`.
    Block,
    /// Lane `l` on PE `l % p`.
    Cyclic,
}

/// Build a legal table mapping: lanes placed per `placement` on a `p`-PE
/// linear array, times derived by list scheduling.
pub fn fft_mapping(
    graph: &DataflowGraph,
    n: usize,
    p: u32,
    placement: LanePlacement,
    machine: &MachineConfig,
) -> ResolvedMapping {
    let block = n.div_ceil(p as usize).max(1);
    let places: Vec<(i64, i64)> = graph
        .nodes
        .iter()
        .map(|node| {
            let lane = node.index[1] as usize;
            let pe = match placement {
                LanePlacement::Block => (lane / block) as i64,
                LanePlacement::Cyclic => (lane % p as usize) as i64,
            };
            (pe, 0)
        })
        .collect();
    retime(graph, &places, machine)
}

/// The E4 mapping family: {DIT, DIF} × {block, cyclic} × P values.
/// (The graphs differ per variant, so the family is per-graph; the
/// candidates enumerate placements and P.)
#[derive(Debug, Clone)]
pub struct FftFamily {
    /// FFT size.
    pub n: usize,
    /// Processor counts to sweep (each must divide or exceed nothing —
    /// block size is rounded up).
    pub p_values: Vec<u32>,
}

impl FftFamily {
    /// Candidates for one specific FFT graph.
    pub fn candidates_for(
        &self,
        graph: &DataflowGraph,
        machine: &MachineConfig,
    ) -> Vec<MappingCandidate> {
        let mut out = Vec::new();
        for &p in &self.p_values {
            for placement in [LanePlacement::Block, LanePlacement::Cyclic] {
                let rm = fft_mapping(graph, self.n, p, placement, machine);
                out.push(MappingCandidate::new(
                    format!("{} {placement:?} P={p}", graph.name),
                    Mapping::Table(rm),
                ));
            }
        }
        out
    }
}

impl MappingFamily for FftFamily {
    fn candidates(&self, machine: &MachineConfig) -> Vec<MappingCandidate> {
        // Default to the DIT graph when used through the generic trait.
        let g = fft_graph(self.n, FftVariant::Dit);
        self.candidates_for(&g, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::XorShift;
    use fm_core::cost::Evaluator;
    use fm_core::legality::check;
    use fm_core::mapping::InputPlacement;
    use fm_core::pramcost::PramCost;
    use fm_grid::Simulator;

    fn random_signal(n: usize, seed: u64) -> Vec<Value> {
        let mut rng = XorShift::new(seed);
        (0..n)
            .map(|_| Value::complex(rng.unit_f64() - 0.5, rng.unit_f64() - 0.5))
            .collect()
    }

    #[test]
    fn bit_reverse_basic() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 4), 10);
    }

    #[test]
    fn fft_ref_matches_naive_dft() {
        let x = random_signal(32, 3);
        let a = fft_ref(&x);
        let b = dft_naive(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!(u.approx_eq(*v, 1e-9), "{u} vs {v}");
        }
    }

    #[test]
    fn dit_graph_computes_fft() {
        let n = 16;
        let x = random_signal(n, 7);
        let g = fft_graph(n, FftVariant::Dit);
        let vals = g.eval(std::slice::from_ref(&x));
        let expect = fft_ref(&x);
        let out = g.outputs();
        assert_eq!(out.len(), n);
        for &id in &out {
            let lane = g.nodes[id as usize].index[1] as usize;
            assert!(
                vals[id as usize].approx_eq(expect[lane], 1e-9),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn dif_graph_computes_fft() {
        let n = 16;
        let x = random_signal(n, 9);
        let g = fft_graph(n, FftVariant::Dif);
        let vals = g.eval(std::slice::from_ref(&x));
        let expect = fft_ref(&x);
        for &id in &g.outputs() {
            let lane = g.nodes[id as usize].index[1] as usize;
            assert!(
                vals[id as usize].approx_eq(expect[lane], 1e-9),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn both_variants_have_same_pram_cost() {
        // Unit cost cannot tell DIT from DIF (same op counts; the DIF
        // copy layer is the only delta and it is movement, not math).
        let n = 32;
        let dit = PramCost::of(&fft_graph(n, FftVariant::Dit));
        let dif = PramCost::of(&fft_graph(n, FftVariant::Dif));
        // DIF has exactly n extra copy nodes (the gather layer).
        assert_eq!(dif.work - dit.work, n as u64);
        assert_eq!(dif.depth - dit.depth, 1);
    }

    #[test]
    fn depth_is_logarithmic() {
        let g = fft_graph(64, FftVariant::Dit);
        assert_eq!(g.depth(), 7); // input layer + 6 stages
    }

    #[test]
    fn mappings_are_legal_and_simulate_correctly() {
        let n = 16;
        let x = random_signal(n, 11);
        let expect = fft_ref(&x);
        for variant in [FftVariant::Dit, FftVariant::Dif] {
            let g = fft_graph(n, variant);
            for placement in [LanePlacement::Block, LanePlacement::Cyclic] {
                let machine = MachineConfig::linear(4);
                let rm = fft_mapping(&g, n, 4, placement, &machine);
                assert!(
                    check(&g, &rm, &machine).is_legal(),
                    "{variant:?} {placement:?}"
                );
                let sim = Simulator::new(machine);
                let res = sim
                    .run(&g, &rm, std::slice::from_ref(&x), &[InputPlacement::AtUse])
                    .unwrap();
                for &id in &g.outputs() {
                    let lane = g.nodes[id as usize].index[1] as usize;
                    assert!(res.values[id as usize].approx_eq(expect[lane], 1e-9));
                }
            }
        }
    }

    #[test]
    fn physical_cost_separates_what_pram_cannot() {
        // Same-asymptotics functions, different movement: under a block
        // mapping the DIF gather layer pays real distance that the DIT
        // variant does not, and the evaluator sees it.
        let n = 64;
        let p = 8;
        let machine = MachineConfig::linear(p);
        let dit = fft_graph(n, FftVariant::Dit);
        let dif = fft_graph(n, FftVariant::Dif);
        let rm_dit = fft_mapping(&dit, n, p, LanePlacement::Block, &machine);
        let rm_dif = fft_mapping(&dif, n, p, LanePlacement::Block, &machine);
        let e_dit = Evaluator::new(&dit, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_dit);
        let e_dif = Evaluator::new(&dif, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_dif);
        assert!(
            e_dif.ledger.onchip_bit_mm > e_dit.ledger.onchip_bit_mm,
            "dif {} !> dit {}",
            e_dif.ledger.onchip_bit_mm,
            e_dit.ledger.onchip_bit_mm
        );
    }

    #[test]
    fn family_enumerates_all_candidates() {
        let fam = FftFamily {
            n: 16,
            p_values: vec![2, 4],
        };
        let machine = MachineConfig::linear(4);
        let g = fft_graph(16, FftVariant::Dit);
        let cands = fam.candidates_for(&g, &machine);
        assert_eq!(cands.len(), 4); // 2 placements × 2 P values
    }

    #[test]
    fn digit_reverse_4_basics() {
        assert_eq!(digit_reverse_4(0b0001, 2), 0b0100); // 1 -> 4
        assert_eq!(digit_reverse_4(0b0110, 2), 0b1001); // 6 -> 9
        assert_eq!(
            digit_reverse_4(5, 3),
            digit_reverse_4(digit_reverse_4(digit_reverse_4(5, 3), 3), 3)
        );
    }

    #[test]
    fn radix4_graph_computes_fft() {
        for n in [16usize, 64] {
            let x = random_signal(n, n as u64);
            let g = fft_radix4_graph(n);
            let vals = g.eval(std::slice::from_ref(&x));
            let expect = fft_ref(&x);
            for &id in &g.outputs() {
                let lane = g.nodes[id as usize].index[1] as usize;
                assert!(
                    vals[id as usize].approx_eq(expect[lane], 1e-9),
                    "n={n} lane {lane}: {} vs {}",
                    vals[id as usize],
                    expect[lane]
                );
            }
        }
    }

    #[test]
    fn radix4_has_half_the_stages() {
        let n = 64;
        let r2 = fft_graph(n, FftVariant::Dit);
        let r4 = fft_radix4_graph(n);
        assert_eq!(r2.depth(), 7); // input + 6 stages
        assert_eq!(r4.depth(), 4); // input + 3 stages
    }

    #[test]
    fn radix4_mapping_legal_and_simulates() {
        let n = 16;
        let x = random_signal(n, 23);
        let g = fft_radix4_graph(n);
        let machine = MachineConfig::linear(4);
        let rm = fft_mapping(&g, n, 4, LanePlacement::Block, &machine);
        assert!(check(&g, &rm, &machine).is_legal());
        let sim = Simulator::new(machine);
        let res = sim
            .run(&g, &rm, std::slice::from_ref(&x), &[InputPlacement::AtUse])
            .unwrap();
        let expect = fft_ref(&x);
        for &id in &g.outputs() {
            let lane = g.nodes[id as usize].index[1] as usize;
            assert!(res.values[id as usize].approx_eq(expect[lane], 1e-9));
        }
    }

    #[test]
    fn radix4_trades_messages_for_rounds() {
        // The radix trade under a block placement: radix-4 halves the
        // number of lane-crossing *rounds* (shorter schedule) but each
        // 4-point butterfly fans its outputs to more distinct PEs
        // (more message events). Neither dominates — exactly why the
        // paper wants the search to weigh functions, not folklore.
        let n = 64;
        let p = 8;
        let machine = MachineConfig::linear(p);
        let r2 = fft_graph(n, FftVariant::Dit);
        let r4 = fft_radix4_graph(n);
        let rep2 = Evaluator::new(&r2, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&fft_mapping(&r2, n, p, LanePlacement::Block, &machine));
        let rep4 = Evaluator::new(&r4, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&fft_mapping(&r4, n, p, LanePlacement::Block, &machine));
        assert!(
            rep4.cycles < rep2.cycles,
            "radix4 {} !< radix2 {}",
            rep4.cycles,
            rep2.cycles
        );
        assert!(
            rep4.ledger.onchip_messages > rep2.ledger.onchip_messages,
            "radix4 {} !> radix2 {}",
            rep4.ledger.onchip_messages,
            rep2.ledger.onchip_messages
        );
    }

    #[test]
    #[should_panic(expected = "power of four")]
    fn radix4_rejects_non_power_of_four() {
        fft_radix4_graph(32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        fft_graph(12, FftVariant::Dit);
    }
}
