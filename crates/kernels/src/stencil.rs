//! A 1-D three-point stencil (heat/Jacobi) as a space-time recurrence.
//!
//! `A(t,i) = ¼·A(t-1,i-1) + ½·A(t-1,i) + ¼·A(t-1,i+1)` over `T` time
//! steps and `N` sites. Stencils are the simplest computation where the
//! mapping's *block* structure matters: with sites blocked over `P`
//! PEs, only the two boundary sites of each block communicate per step,
//! so on-chip traffic is `Θ(P·T)` while compute is `Θ(N·T)` — the
//! communication-avoidance ratio improves linearly in the block size
//! (Yelick's §6 point, and the workhorse of the E12 scaling sweep).

use fm_core::affine::IdxExpr;
use fm_core::dataflow::InputSpec;
use fm_core::expr::{ElemExpr, InputRef};
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::recurrence::{Boundary, Domain, OutputSpec, Recurrence};
use fm_core::value::Value;

/// Build the *forced* stencil recurrence over domain `(T, N)`:
///
/// ```text
/// A(t,i) = ¼·A(t-1,i-1) + ½·A(t-1,i) + ¼·A(t-1,i+1) + F[i]
/// ```
///
/// with zero boundaries (out-of-domain references read 0, so row 0
/// equals `F`). The constant source term `F` plays the role of an
/// initial condition while keeping the element expression uniform over
/// the whole domain — the recurrence language has no conditionals, so a
/// `t == 0 ? A0[i] : …` row cannot be expressed affinely.
pub fn stencil_recurrence(t_steps: usize, n: usize) -> Recurrence {
    let f = ElemExpr::Input(InputRef {
        input: 0,
        index: vec![IdxExpr::j()],
    });
    let expr = ElemExpr::SelfRef(vec![-1, -1])
        .mul(ElemExpr::lit(0.25))
        .add(ElemExpr::SelfRef(vec![-1, 0]).mul(ElemExpr::lit(0.5)))
        .add(ElemExpr::SelfRef(vec![-1, 1]).mul(ElemExpr::lit(0.25)))
        .add(f);
    Recurrence {
        name: format!("stencil{t_steps}x{n}"),
        domain: Domain::d2(t_steps, n),
        expr,
        inputs: vec![InputSpec {
            name: "F".into(),
            dims: vec![n],
        }],
        width_bits: 32,
        boundary: Boundary::Zero,
        output: OutputSpec::LastAlongDim0,
    }
}

/// Serial reference for the forced stencil.
pub fn stencil_ref(f: &[f64], t_steps: usize) -> Vec<f64> {
    let n = f.len();
    let mut cur = vec![0.0f64; n];
    for _ in 0..t_steps {
        let mut next = vec![0.0f64; n];
        for i in 0..n {
            let l = if i > 0 { cur[i - 1] } else { 0.0 };
            let r = if i + 1 < n { cur[i + 1] } else { 0.0 };
            next[i] = 0.25 * l + 0.5 * cur[i] + 0.25 * r + f[i];
        }
        cur = next;
    }
    cur
}

/// Input values from the forcing term.
pub fn stencil_inputs(f: &[f64]) -> Vec<Vec<Value>> {
    vec![f.iter().map(|&v| Value::real(v)).collect()]
}

/// Blocked mapping: site `i` on PE `i / B` (B = ⌈N/P⌉), time
/// `t·B + (i mod B)` — each PE sweeps its block serially per step;
/// cross-block dependencies land exactly one cycle apart (legal).
pub fn blocked_mapping(n: usize, p: i64) -> Mapping {
    let b = (n as i64 + p - 1) / p;
    Mapping::Affine(AffineMap {
        place: PlaceExpr::row0(IdxExpr::j().div(b)),
        time: IdxExpr::i() * b + (IdxExpr::j() % b),
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // matrix-style i/j indexing reads clearest in checks
mod tests {
    use super::*;
    use crate::util::XorShift;
    use fm_core::cost::Evaluator;
    use fm_core::legality::check;
    use fm_core::machine::MachineConfig;
    use fm_core::mapping::InputPlacement;
    use fm_grid::Simulator;

    fn forcing(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = XorShift::new(seed);
        (0..n).map(|_| rng.unit_f64()).collect()
    }

    #[test]
    fn recurrence_matches_reference() {
        let (t, n) = (6, 10);
        let f = forcing(n, 3);
        let rec = stencil_recurrence(t, n);
        let g = rec.elaborate().unwrap();
        let vals = g.eval(&stencil_inputs(&f));
        let expect = stencil_ref(&f, t);
        for i in 0..n {
            let id = rec.domain.flatten(&[t as i64 - 1, i as i64]).unwrap();
            assert!(
                (vals[id].re - expect[i]).abs() < 1e-9,
                "site {i}: {} vs {}",
                vals[id].re,
                expect[i]
            );
        }
    }

    #[test]
    fn blocked_mapping_legal_when_blocks_big_enough() {
        let (t, n) = (8, 32);
        let rec = stencil_recurrence(t, n);
        let g = rec.elaborate().unwrap();
        for p in [1i64, 2, 4, 8] {
            let machine = MachineConfig::linear(p as u32);
            let rm = blocked_mapping(n, p).resolve(&g, &machine).unwrap();
            let rep = check(&g, &rm, &machine);
            assert!(
                rep.is_legal(),
                "P={p}: {:?}",
                &rep.errors[..rep.errors.len().min(2)]
            );
        }
    }

    #[test]
    fn communication_scales_with_p_not_n() {
        let (t, n) = (8, 64);
        let rec = stencil_recurrence(t, n);
        let g = rec.elaborate().unwrap();
        let mut msgs = Vec::new();
        for p in [2i64, 4, 8] {
            let machine = MachineConfig::linear(p as u32);
            let rm = blocked_mapping(n, p).resolve(&g, &machine).unwrap();
            let rep = Evaluator::new(&g, &machine)
                .with_all_inputs(InputPlacement::AtUse)
                .evaluate(&rm);
            msgs.push(rep.ledger.onchip_messages);
        }
        // Boundary exchanges only: messages grow with P (more
        // boundaries), not with N — ratio ≈ (P-1)·2… monotone in P.
        assert!(msgs[0] < msgs[1] && msgs[1] < msgs[2], "{msgs:?}");
        // And each step exchanges at most ~3 values per internal
        // boundary (left, right, diagonal), per time step.
        assert!(msgs[2] <= 3 * 7 * t as u64, "{msgs:?}");
    }

    #[test]
    fn simulation_matches_reference() {
        let (t, n) = (5, 16);
        let f = forcing(n, 9);
        let rec = stencil_recurrence(t, n);
        let g = rec.elaborate().unwrap();
        let p = 4i64;
        let machine = MachineConfig::linear(p as u32);
        let rm = blocked_mapping(n, p).resolve(&g, &machine).unwrap();
        let sim = Simulator::new(machine);
        let res = sim
            .run(&g, &rm, &stencil_inputs(&f), &[InputPlacement::AtUse])
            .unwrap();
        let expect = stencil_ref(&f, t);
        for i in 0..n {
            let id = rec.domain.flatten(&[t as i64 - 1, i as i64]).unwrap();
            assert!((res.values[id].re - expect[i]).abs() < 1e-9);
        }
    }
}
