//! Matrix multiplication in three lenses.
//!
//! * **F&M**: `C(i,j) = Σₖ A[i,k]·B[k,j]` as the 3-D recurrence
//!   `S(i,j,k) = S(i,j,k-1) + A[i,k]·B[k,j]`, mapped output-stationary
//!   onto the grid (`PE (j,i)`, `time i+j+k` — the classic systolic
//!   schedule); the paper's "weight-stationary dataflows for DNN
//!   accelerators, systolic arrays" lineage.
//! * **Ideal cache** (experiment E7): address-stream replays of the
//!   naive triple loop, the L1-blocked version, and the cache-oblivious
//!   recursive version through [`fm_workspan::IdealCache`].
//! * **Fork-join**: a real parallel matmul on the work-stealing pool,
//!   with its [`WorkSpan`] cost tracked alongside.

use fm_core::affine::IdxExpr;
use fm_core::dataflow::InputSpec;
use fm_core::expr::{ElemExpr, InputRef};
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::recurrence::{Boundary, Domain, OutputSpec, Recurrence};
use fm_core::value::Value;

use fm_workspan::{par_for, IdealCache, ThreadPool, WorkSpan};

/// The matmul recurrence over `n×n` matrices (domain `n×n×n`).
pub fn matmul_recurrence(n: usize) -> Recurrence {
    // S(i,j,k) = S(i,j,k-1) + A[i,k] * B[k,j]
    let a = ElemExpr::Input(InputRef {
        input: 0,
        index: vec![IdxExpr::i(), IdxExpr::k()],
    });
    let b = ElemExpr::Input(InputRef {
        input: 1,
        index: vec![IdxExpr::k(), IdxExpr::j()],
    });
    Recurrence {
        name: format!("matmul{n}"),
        domain: Domain::d3(n, n, n),
        expr: ElemExpr::SelfRef(vec![0, 0, -1]).add(a.mul(b)),
        inputs: vec![
            InputSpec {
                name: "A".into(),
                dims: vec![n, n],
            },
            InputSpec {
                name: "B".into(),
                dims: vec![n, n],
            },
        ],
        width_bits: 32,
        boundary: Boundary::Zero,
        output: OutputSpec::All, // C(i,j) is S(i,j,n-1); finer selection below
    }
}

/// The output-stationary systolic mapping: `S(i,j,·)` accumulates at
/// PE `(x=j, y=i)`; `time = i + j + k` (the classic wavefront).
pub fn systolic_mapping() -> Mapping {
    Mapping::Affine(AffineMap {
        place: PlaceExpr::Grid {
            x: IdxExpr::j(),
            y: IdxExpr::i(),
        },
        time: IdxExpr::i() + IdxExpr::j() + IdxExpr::k(),
    })
}

/// The **weight-stationary** mapping (the paper names "weight-stationary
/// dataflows for DNN accelerators"): `B[k,j]` stays resident at PE
/// `(x=j, y=k)` and the partial-sum chain `S(i,j,·)` *flows through*
/// the column — every accumulation step crosses one vertical hop, in
/// exchange for never moving the weights. Same wavefront clock
/// `time = i + j + k`.
pub fn weight_stationary_mapping() -> Mapping {
    Mapping::Affine(AffineMap {
        place: PlaceExpr::Grid {
            x: IdxExpr::j(),
            y: IdxExpr::k(),
        },
        time: IdxExpr::i() + IdxExpr::j() + IdxExpr::k(),
    })
}

/// Output-stationary mapping for matrices larger than the grid:
/// `C(i,j)` accumulates at PE `(j mod cols, i mod rows)` and times are
/// re-derived by list scheduling (legal by construction). The
/// accumulation chains stay PE-local; multiple output cells share a PE
/// round-robin.
pub fn tiled_systolic_mapping(
    graph: &fm_core::dataflow::DataflowGraph,
    machine: &fm_core::machine::MachineConfig,
) -> fm_core::mapping::ResolvedMapping {
    let places: Vec<(i64, i64)> = graph
        .nodes
        .iter()
        .map(|node| {
            let (i, j) = (node.index[0], node.index[1]);
            (
                j.rem_euclid(i64::from(machine.cols)),
                i.rem_euclid(i64::from(machine.rows)),
            )
        })
        .collect();
    fm_core::search::retime(graph, &places, machine)
}

/// Serial reference matmul on f64.
pub fn matmul_ref(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Flatten an f64 matrix into input values.
pub fn matrix_values(m: &[f64]) -> Vec<Value> {
    m.iter().map(|&v| Value::real(v)).collect()
}

// ---------------------------------------------------------------------
// Ideal-cache address streams (experiment E7).
//
// Memory layout for the traces: A at 0, B at n², C at 2n², row-major.

/// Replay the naive i-j-k triple loop's address stream.
pub fn trace_matmul_naive(n: usize, cache: &mut IdealCache) {
    let (a0, b0, c0) = (0, n * n, 2 * n * n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                cache.access(a0 + i * n + k);
                cache.access(b0 + k * n + j);
                cache.access(c0 + i * n + j);
            }
        }
    }
}

/// Replay a `t×t`-blocked loop's address stream.
pub fn trace_matmul_blocked(n: usize, t: usize, cache: &mut IdealCache) {
    assert!(t > 0, "tile size must be positive");
    let (a0, b0, c0) = (0, n * n, 2 * n * n);
    for ii in (0..n).step_by(t) {
        for jj in (0..n).step_by(t) {
            for kk in (0..n).step_by(t) {
                for i in ii..(ii + t).min(n) {
                    for j in jj..(jj + t).min(n) {
                        for k in kk..(kk + t).min(n) {
                            cache.access(a0 + i * n + k);
                            cache.access(b0 + k * n + j);
                            cache.access(c0 + i * n + j);
                        }
                    }
                }
            }
        }
    }
}

/// Replay the cache-oblivious (recursive, divide-largest-dimension)
/// address stream.
pub fn trace_matmul_oblivious(n: usize, base: usize, cache: &mut IdealCache) {
    assert!(base > 0, "base case must be positive");
    let (a0, b0, c0) = (0, n * n, 2 * n * n);
    // Multiply A[i0..i1, k0..k1] × B[k0..k1, j0..j1] into C[i0..i1, j0..j1].
    #[allow(clippy::too_many_arguments)]
    fn rec(
        n: usize,
        base: usize,
        i0: usize,
        i1: usize,
        j0: usize,
        j1: usize,
        k0: usize,
        k1: usize,
        bases: (usize, usize, usize),
        cache: &mut IdealCache,
    ) {
        let (di, dj, dk) = (i1 - i0, j1 - j0, k1 - k0);
        if di <= base && dj <= base && dk <= base {
            let (a0, b0, c0) = bases;
            for i in i0..i1 {
                for j in j0..j1 {
                    for k in k0..k1 {
                        cache.access(a0 + i * n + k);
                        cache.access(b0 + k * n + j);
                        cache.access(c0 + i * n + j);
                    }
                }
            }
            return;
        }
        if di >= dj && di >= dk {
            let mid = i0 + di / 2;
            rec(n, base, i0, mid, j0, j1, k0, k1, bases, cache);
            rec(n, base, mid, i1, j0, j1, k0, k1, bases, cache);
        } else if dj >= dk {
            let mid = j0 + dj / 2;
            rec(n, base, i0, i1, j0, mid, k0, k1, bases, cache);
            rec(n, base, i0, i1, mid, j1, k0, k1, bases, cache);
        } else {
            let mid = k0 + dk / 2;
            rec(n, base, i0, i1, j0, j1, k0, mid, bases, cache);
            rec(n, base, i0, i1, j0, j1, mid, k1, bases, cache);
        }
    }
    rec(n, base, 0, n, 0, n, 0, n, (a0, b0, c0), cache);
}

// ---------------------------------------------------------------------
// Fork-join matmul (work-span instrumented).

/// Parallel matmul on the pool: rows split recursively down to `grain`
/// rows per task. Returns `C` and the work-span cost (in multiply-add
/// units).
pub fn matmul_parallel(
    pool: &ThreadPool,
    a: &[f64],
    b: &[f64],
    n: usize,
    grain: usize,
) -> (Vec<f64>, WorkSpan) {
    let mut c = vec![0.0f64; n * n];
    {
        // Row-disjoint writes: hand each row out via raw pointer wrapper.
        struct Rows(*mut f64, usize);
        unsafe impl Sync for Rows {}
        let rows = Rows(c.as_mut_ptr(), n);
        let rows = &rows; // capture the Sync wrapper, not its raw field
        par_for(pool, 0..n, grain.max(1), |i| {
            // Safety: each index i touches only row i.
            let row = unsafe { std::slice::from_raw_parts_mut(rows.0.add(i * rows.1), rows.1) };
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    row[j] += aik * b[k * n + j];
                }
            }
        });
    }
    // Work = n³ MACs; span = chain within one grain of rows (grain·n²)
    // plus the O(log(n/grain)) split overhead (negligible, counted as
    // one unit per level).
    let levels = ((n as f64 / grain.max(1) as f64).log2().ceil()).max(0.0);
    let ws = WorkSpan {
        work: (n * n * n) as f64,
        span: (grain.max(1) * n * n) as f64 + levels,
    };
    (c, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::XorShift;
    use fm_core::cost::Evaluator;
    use fm_core::legality::check;
    use fm_core::machine::MachineConfig;
    use fm_core::mapping::InputPlacement;
    use fm_grid::Simulator;

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = XorShift::new(seed);
        (0..n * n).map(|_| rng.unit_f64() * 2.0 - 1.0).collect()
    }

    #[test]
    fn recurrence_matches_reference() {
        let n = 6;
        let a = random_matrix(n, 1);
        let b = random_matrix(n, 2);
        let rec = matmul_recurrence(n);
        let g = rec.elaborate().unwrap();
        let vals = g.eval(&[matrix_values(&a), matrix_values(&b)]);
        let c = matmul_ref(&a, &b, n);
        for i in 0..n {
            for j in 0..n {
                let id = rec
                    .domain
                    .flatten(&[i as i64, j as i64, n as i64 - 1])
                    .unwrap();
                assert!((vals[id].re - c[i * n + j]).abs() < 1e-9, "C({i},{j})");
            }
        }
    }

    #[test]
    fn systolic_mapping_is_legal_and_simulates() {
        let n = 4;
        let a = random_matrix(n, 3);
        let b = random_matrix(n, 4);
        let rec = matmul_recurrence(n);
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::n5(n as u32, n as u32);
        let rm = systolic_mapping().resolve(&g, &machine).unwrap();
        assert!(check(&g, &rm, &machine).is_legal());
        // Makespan = 3(n-1) + 1: the classic wavefront latency.
        assert_eq!(rm.makespan(), 3 * (n as i64 - 1) + 1);
        let sim = Simulator::new(machine);
        let res = sim
            .run(
                &g,
                &rm,
                &[matrix_values(&a), matrix_values(&b)],
                &[InputPlacement::AtUse, InputPlacement::AtUse],
            )
            .unwrap();
        let c = matmul_ref(&a, &b, n);
        for i in 0..n {
            for j in 0..n {
                let id = rec
                    .domain
                    .flatten(&[i as i64, j as i64, n as i64 - 1])
                    .unwrap();
                assert!((res.values[id].re - c[i * n + j]).abs() < 1e-9);
            }
        }
        assert_eq!(res.cycles_actual, res.cycles_scheduled);
    }

    #[test]
    fn systolic_accumulation_stays_local() {
        // Output-stationary: the S chain never leaves its PE, so the
        // only on-chip messages would come from input distribution (here
        // AtUse = none).
        let n = 4;
        let rec = matmul_recurrence(n);
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::n5(n as u32, n as u32);
        let rm = systolic_mapping().resolve(&g, &machine).unwrap();
        let rep = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        assert_eq!(rep.ledger.onchip_messages, 0);
        assert_eq!(rep.pes_used, n * n);
    }

    #[test]
    fn weight_stationary_flows_partial_sums() {
        let n = 4;
        let a = random_matrix(n, 11);
        let b = random_matrix(n, 12);
        let rec = matmul_recurrence(n);
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::n5(n as u32, n as u32);

        let rm_ws = weight_stationary_mapping().resolve(&g, &machine).unwrap();
        assert!(check(&g, &rm_ws, &machine).is_legal());
        let rep_ws = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_ws);

        let rm_os = systolic_mapping().resolve(&g, &machine).unwrap();
        let rep_os = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_os);

        // The dataflow choice: output-stationary keeps sums local (no
        // messages); weight-stationary moves a partial sum every step.
        assert_eq!(rep_os.ledger.onchip_messages, 0);
        assert_eq!(
            rep_ws.ledger.onchip_messages,
            (n * n * (n - 1)) as u64 // each chain crosses n-1 hops
        );

        // Same values either way.
        let sim = Simulator::new(machine);
        let res = sim
            .run(
                &g,
                &rm_ws,
                &[matrix_values(&a), matrix_values(&b)],
                &[InputPlacement::AtUse, InputPlacement::AtUse],
            )
            .unwrap();
        let c = matmul_ref(&a, &b, n);
        for i in 0..n {
            for j in 0..n {
                let id = rec
                    .domain
                    .flatten(&[i as i64, j as i64, n as i64 - 1])
                    .unwrap();
                assert!((res.values[id].re - c[i * n + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tiled_mapping_handles_matrices_larger_than_grid() {
        // 6×6 matmul on a 3×3 grid: 4 output cells per PE.
        let n = 6;
        let a = random_matrix(n, 8);
        let b = random_matrix(n, 9);
        let rec = matmul_recurrence(n);
        let g = rec.elaborate().unwrap();
        let machine = MachineConfig::n5(3, 3);
        let rm = tiled_systolic_mapping(&g, &machine);
        assert!(check(&g, &rm, &machine).is_legal());
        let sim = Simulator::new(machine);
        let res = sim
            .run(
                &g,
                &rm,
                &[matrix_values(&a), matrix_values(&b)],
                &[InputPlacement::AtUse, InputPlacement::AtUse],
            )
            .unwrap();
        let c = matmul_ref(&a, &b, n);
        for i in 0..n {
            for j in 0..n {
                let id = rec
                    .domain
                    .flatten(&[i as i64, j as i64, n as i64 - 1])
                    .unwrap();
                assert!((res.values[id].re - c[i * n + j]).abs() < 1e-9);
            }
        }
        // Accumulation stays local: zero NoC messages.
        assert_eq!(res.ledger.onchip_messages, 0);
    }

    #[test]
    fn blocked_beats_naive_in_misses() {
        let n = 48;
        // Cache: 2048 words, 16-word lines — far too small for a 48×48
        // row plus column traffic, so naive thrashes on B.
        let mut c1 = IdealCache::new(2048, 16);
        trace_matmul_naive(n, &mut c1);
        let mut c2 = IdealCache::new(2048, 16);
        trace_matmul_blocked(n, 16, &mut c2);
        assert!(
            c2.stats().misses * 2 < c1.stats().misses,
            "blocked {} vs naive {}",
            c2.stats().misses,
            c1.stats().misses
        );
    }

    #[test]
    fn oblivious_tracks_blocked_without_knowing_z() {
        let n = 48;
        let mut cb = IdealCache::new(2048, 16);
        trace_matmul_blocked(n, 16, &mut cb);
        let mut co = IdealCache::new(2048, 16);
        trace_matmul_oblivious(n, 8, &mut co);
        // Cache-oblivious should be within ~2× of the tuned blocked
        // version, far below naive.
        let mut cn = IdealCache::new(2048, 16);
        trace_matmul_naive(n, &mut cn);
        assert!(co.stats().misses < cn.stats().misses / 2);
        assert!(co.stats().misses < cb.stats().misses * 3);
    }

    #[test]
    fn oblivious_improves_across_cache_sizes_without_retuning() {
        // The cache-oblivious property: the same trace (base 8) adapts
        // to any Z; misses drop as Z grows.
        let n = 32;
        let mut last = u64::MAX;
        for z in [256usize, 1024, 4096] {
            let mut c = IdealCache::new(z, 16);
            trace_matmul_oblivious(n, 8, &mut c);
            let misses = c.stats().misses;
            assert!(misses < last, "Z={z}: {misses} !< {last}");
            last = misses;
        }
    }

    #[test]
    fn parallel_matmul_correct() {
        let n = 64;
        let a = random_matrix(n, 5);
        let b = random_matrix(n, 6);
        let pool = ThreadPool::with_threads(4);
        let (c, ws) = matmul_parallel(&pool, &a, &b, n, 4);
        let expect = matmul_ref(&a, &b, n);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-9);
        }
        assert_eq!(ws.work, (n * n * n) as f64);
        assert!(ws.parallelism() > 1.0);
    }

    #[test]
    fn trace_counts_are_deterministic() {
        let n = 24;
        let mut c1 = IdealCache::new(512, 8);
        trace_matmul_naive(n, &mut c1);
        let mut c2 = IdealCache::new(512, 8);
        trace_matmul_naive(n, &mut c2);
        assert_eq!(c1.stats(), c2.stats());
        assert_eq!(c1.stats().accesses, (n * n * n * 3) as u64);
    }
}
