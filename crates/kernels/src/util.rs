//! Deterministic input generators.
//!
//! Benches and tests need reproducible pseudo-random inputs without
//! threading RNG state everywhere; a seeded xorshift64* suffices and
//! keeps the dependency surface small.

/// A tiny deterministic PRNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeded generator. A zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random byte string over a small alphabet (DNA-like by default),
/// for edit-distance inputs.
pub fn random_sequence(len: usize, alphabet: &[u8], seed: u64) -> Vec<u8> {
    assert!(!alphabet.is_empty(), "alphabet must be nonempty");
    let mut rng = XorShift::new(seed);
    (0..len)
        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
        .collect()
}

/// DNA alphabet.
pub const DNA: &[u8] = b"ACGT";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_remapped() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = XorShift::new(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_sequence_uses_alphabet() {
        let s = random_sequence(500, DNA, 11);
        assert_eq!(s.len(), 500);
        assert!(s.iter().all(|c| DNA.contains(c)));
        // Deterministic.
        assert_eq!(s, random_sequence(500, DNA, 11));
    }
}
