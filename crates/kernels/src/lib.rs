#![warn(missing_docs)]

//! # fm-kernels — the kernel suite, expressed in every model
//!
//! The panel paper's argument is comparative: the same algorithm looks
//! different — and costs differently — under the PRAM's unit-cost lens,
//! the work-span lens, and the F&M physical lens. This crate implements
//! the kernels the panelists actually name, in all the forms the
//! experiments need:
//!
//! * [`editdist`] — minimum edit distance, the paper's worked F&M
//!   example, with the paper's *literal* anti-diagonal mapping (which
//!   the legality checker rejects for `P > 1` — see the module docs)
//!   and the corrected skewed family (experiment E3);
//! * [`fft`] — decimation-in-time vs. decimation-in-frequency FFT
//!   dataflow graphs ("there may be several functions that compute the
//!   result"), with block/cyclic mapping families for the search
//!   (experiments E4, E5);
//! * [`matmul`] — matrix multiply as a 3-D recurrence with an
//!   output-stationary systolic mapping, plus naive / blocked /
//!   cache-oblivious address-stream variants for the ideal-cache model
//!   (experiment E7) and a fork-join implementation on the
//!   work-stealing pool;
//! * [`scan`] — prefix sums: the serial recurrence, Blelloch's
//!   work-efficient PRAM scan, and an instrumented fork-join scan
//!   (experiment E6);
//! * [`bfs`] — breadth-first search: the serial FIFO-queue algorithm
//!   the paper calls out as needlessly sequential, vs. the
//!   level-synchronous XMT version built on the prefix-sum primitive
//!   (experiment E10);
//! * [`listrank`] — pointer-jumping list ranking, the canonical
//!   "irregular PRAM algorithm" of the Vishkin school: O(log n) depth
//!   on a structure serial code must walk one link at a time;
//! * [`sortalg`] — instrumented parallel mergesort for the greedy-bound
//!   experiment (E6);
//! * [`stencil`] — a 1-D heat/Jacobi stencil recurrence with a blocked
//!   space-time mapping (used by the scaling sweep, E12);
//! * [`util`] — deterministic input generators (xorshift) shared by
//!   tests, examples, and benches.

pub mod bfs;
pub mod editdist;
pub mod fft;
pub mod listrank;
pub mod matmul;
pub mod scan;
pub mod sortalg;
pub mod stencil;
pub mod util;
