//! Prefix sums (scan) — Blelloch's signature primitive.
//!
//! The paper's biography section credits Blelloch's "implementations
//! and algorithmic applications of the scan (prefix sums) operation";
//! his panel statement holds the work-span model up as the bridge. So
//! scan appears here in every lens:
//!
//! * the **serial recurrence** `S(i) = S(i-1) + X[i]` for the F&M side
//!   (depth `n` — the function itself is sequential; contrast below);
//! * **Blelloch's work-efficient PRAM scan** (up-sweep + down-sweep):
//!   work `O(n)`, depth `O(log n)`, EREW-legal — the simulator enforces
//!   that no step of it needs concurrent access;
//! * a **fork-join scan** on the work-stealing pool (two-pass,
//!   contraction style) with its work-span cost tracked.

use fm_core::affine::IdxExpr;
use fm_core::dataflow::InputSpec;
use fm_core::expr::{ElemExpr, InputRef};
use fm_core::recurrence::{Boundary, Domain, OutputSpec, Recurrence};

use fm_pram::{ConcurrencyModel, Pram, PramError};
use fm_workspan::{ThreadPool, WorkSpan};

/// The serial scan recurrence `S(i) = S(i-1) + X[i]`.
pub fn scan_recurrence(n: usize) -> Recurrence {
    Recurrence {
        name: format!("scan{n}"),
        domain: Domain::d1(n),
        expr: ElemExpr::SelfRef(vec![-1]).add(ElemExpr::Input(InputRef {
            input: 0,
            index: vec![IdxExpr::i()],
        })),
        inputs: vec![InputSpec {
            name: "X".into(),
            dims: vec![n],
        }],
        width_bits: 32,
        boundary: Boundary::Zero,
        output: OutputSpec::All,
    }
}

/// Serial reference: inclusive scan.
pub fn scan_ref(x: &[i64]) -> Vec<i64> {
    let mut acc = 0;
    x.iter()
        .map(|&v| {
            acc += v;
            acc
        })
        .collect()
}

/// Blelloch's work-efficient exclusive scan on an EREW PRAM.
///
/// `n` must be a power of two. Returns the exclusive scan and leaves
/// work/depth readable on the returned machine.
pub fn pram_blelloch_scan(x: &[i64]) -> Result<(Vec<i64>, Pram), PramError> {
    let n = x.len();
    assert!(n.is_power_of_two(), "Blelloch scan wants a power-of-two n");
    let mut pram = Pram::new(ConcurrencyModel::Erew, n.max(1));
    pram.load(0, x);

    // Up-sweep: build the reduction tree in place.
    let mut d = 1usize;
    while d < n {
        let stride = 2 * d;
        let active = n / stride;
        let dd = d;
        pram.step(active, move |p, ctx| {
            let right = (p + 1) * stride - 1;
            let left = right - dd;
            let sum = ctx.read(left) + ctx.read(right);
            ctx.write(right, sum);
        })?;
        d = stride;
    }

    // Clear the root.
    pram.step(1, move |_p, ctx| ctx.write(n - 1, 0))?;

    // Down-sweep.
    let mut d = n / 2;
    while d >= 1 {
        let stride = 2 * d;
        let active = n / stride;
        let dd = d;
        pram.step(active, move |p, ctx| {
            let right = (p + 1) * stride - 1;
            let left = right - dd;
            let t = ctx.read(left);
            let r = ctx.read(right);
            ctx.write(left, r);
            ctx.write(right, t + r);
        })?;
        d /= 2;
    }

    let out = pram.peek_slice(0..n).to_vec();
    Ok((out, pram))
}

/// Fork-join inclusive scan: recursive contraction. Returns the scan
/// and its work-span cost (in add units).
pub fn par_scan(pool: &ThreadPool, x: &[i64], grain: usize) -> (Vec<i64>, WorkSpan) {
    let n = x.len();
    let grain = grain.max(1);
    if n == 0 {
        return (Vec::new(), WorkSpan::ZERO);
    }
    // Pass 1: per-chunk sums.
    let chunks: Vec<&[i64]> = x.chunks(grain).collect();
    let k = chunks.len();
    let mut sums = vec![0i64; k];
    {
        struct Cell(*mut i64);
        unsafe impl Sync for Cell {}
        let out = Cell(sums.as_mut_ptr());
        let out = &out; // capture the Sync wrapper, not its raw field
        fm_workspan::par_for(pool, 0..k, 1, |c| {
            let s: i64 = chunks[c].iter().sum();
            // Safety: each c writes only sums[c].
            unsafe { *out.0.add(c) = s };
        });
    }
    // Serial scan of the k chunk sums (k = n/grain, cheap).
    let offsets: Vec<i64> = {
        let mut acc = 0;
        let mut o = Vec::with_capacity(k);
        for &s in &sums {
            o.push(acc);
            acc += s;
        }
        o
    };
    // Pass 2: per-chunk local scans with offsets.
    let mut result = vec![0i64; n];
    {
        struct Cell(*mut i64);
        unsafe impl Sync for Cell {}
        let out = Cell(result.as_mut_ptr());
        let out = &out; // capture the Sync wrapper, not its raw field
        fm_workspan::par_for(pool, 0..k, 1, |c| {
            let mut acc = offsets[c];
            let base = c * grain;
            for (i, &v) in chunks[c].iter().enumerate() {
                acc += v;
                // Safety: chunk c owns result[base..base+len].
                unsafe { *out.0.add(base + i) = acc };
            }
        });
    }
    // Work: 2n adds (+k for the middle scan); span: two grain-sized
    // chunk passes plus the serial k-scan.
    let ws = WorkSpan {
        work: (2 * n + k) as f64,
        span: (2 * grain + k) as f64,
    };
    (result, ws)
}

/// Parallel pack (stream compaction): keep the elements satisfying
/// `keep`, preserving order — the canonical *application* of scan
/// (Blelloch's "algorithmic applications of the scan operation"):
/// flags → exclusive scan → scatter to scanned offsets.
pub fn par_pack<T, F>(pool: &ThreadPool, x: &[T], grain: usize, keep: F) -> (Vec<T>, WorkSpan)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = x.len();
    if n == 0 {
        return (Vec::new(), WorkSpan::ZERO);
    }
    // Flags as 0/1.
    let flags: Vec<i64> = x.iter().map(|v| i64::from(keep(v))).collect();
    let (inclusive, ws_scan) = par_scan(pool, &flags, grain);
    let total = *inclusive.last().unwrap() as usize;
    let mut out = vec![None; total];
    {
        struct Cell<T>(*mut Option<T>);
        unsafe impl<T> Sync for Cell<T> {}
        let dst = Cell(out.as_mut_ptr());
        let dst = &dst;
        fm_workspan::par_for(pool, 0..n, grain.max(1), |i| {
            if flags[i] == 1 {
                // Exclusive offset = inclusive - 1 for kept elements;
                // distinct kept elements get distinct slots.
                let slot = (inclusive[i] - 1) as usize;
                // Safety: slots are unique per kept element.
                unsafe { *dst.0.add(slot) = Some(x[i]) };
            }
        });
    }
    let packed: Vec<T> = out.into_iter().map(|v| v.expect("slot filled")).collect();
    // Pack = scan + one elementwise pass.
    let ws = ws_scan.seq(WorkSpan {
        work: n as f64,
        span: grain.max(1) as f64,
    });
    (packed, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::XorShift;
    use fm_core::pramcost::PramCost;

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = XorShift::new(seed);
        (0..n).map(|_| rng.below(1000) as i64 - 500).collect()
    }

    #[test]
    fn serial_recurrence_depth_is_n() {
        let g = scan_recurrence(32).elaborate().unwrap();
        let c = PramCost::of(&g);
        assert_eq!(c.work, 32);
        assert_eq!(c.depth, 32); // the *function* is a chain
    }

    #[test]
    fn blelloch_scan_matches_reference() {
        let x = random_vec(64, 9);
        let (exclusive, _) = pram_blelloch_scan(&x).unwrap();
        let inclusive = scan_ref(&x);
        // exclusive[i] = inclusive[i] - x[i]
        for i in 0..x.len() {
            assert_eq!(exclusive[i], inclusive[i] - x[i], "at {i}");
        }
    }

    #[test]
    fn blelloch_scan_is_erew_legal() {
        // The whole point: the work-efficient scan never needs
        // concurrent access, so it runs on the strictest model without
        // error.
        let x = random_vec(128, 10);
        assert!(pram_blelloch_scan(&x).is_ok());
    }

    #[test]
    fn blelloch_scan_work_depth() {
        let n = 256;
        let x = random_vec(n, 11);
        let (_, pram) = pram_blelloch_scan(&x).unwrap();
        // Depth: log n (up) + 1 (clear) + log n (down) = 17 for n=256.
        assert_eq!(pram.depth(), 2 * 8 + 1);
        // Work: (n-1) up + 1 + (n-1) down = O(n), well under n log n.
        assert!(pram.work() < 3 * n as u64);
    }

    #[test]
    fn par_scan_matches_reference() {
        let pool = ThreadPool::with_threads(4);
        for n in [0usize, 1, 7, 64, 1000, 4097] {
            let x = random_vec(n, n as u64 + 1);
            let (got, _) = par_scan(&pool, &x, 64);
            assert_eq!(got, scan_ref(&x), "n={n}");
        }
    }

    #[test]
    fn par_scan_workspan_sensible() {
        let pool = ThreadPool::with_threads(2);
        let x = random_vec(4096, 13);
        let (_, ws) = par_scan(&pool, &x, 64);
        assert!(ws.work >= 8192.0);
        assert!(ws.span < ws.work / 8.0); // real parallelism
    }

    #[test]
    fn par_pack_matches_serial_filter() {
        let pool = ThreadPool::with_threads(4);
        for n in [0usize, 1, 17, 1000, 4096] {
            let x = random_vec(n, n as u64 + 5);
            let (got, _) = par_pack(&pool, &x, 64, |&v| v % 3 == 0);
            let expect: Vec<i64> = x.iter().copied().filter(|&v| v % 3 == 0).collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn par_pack_keep_all_and_none() {
        let pool = ThreadPool::with_threads(2);
        let x = random_vec(100, 3);
        let (all, _) = par_pack(&pool, &x, 16, |_| true);
        assert_eq!(all, x);
        let (none, _) = par_pack(&pool, &x, 16, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn par_pack_preserves_order() {
        let pool = ThreadPool::with_threads(4);
        let x: Vec<i64> = (0..1000).collect();
        let (got, _) = par_pack(&pool, &x, 32, |&v| v % 7 == 0);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted); // already in order
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn blelloch_scan_rejects_odd_sizes() {
        let _ = pram_blelloch_scan(&[1, 2, 3]);
    }
}
