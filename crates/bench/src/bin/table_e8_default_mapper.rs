//! Regenerates the E8 table (default mapper vs serial vs expert).
//!
//! `--quick` shrinks the machine to 4×1 for a fast smoke run, e.g.
//! from `ci.sh`. `--cache DIR` persists the tuner's results so a
//! re-run replays the ranked outcomes without re-evaluating.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cache = args
        .iter()
        .position(|a| a == "--cache")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let (cols, rows_m) = if quick { (4, 1) } else { (8, 1) };
    let rows = fm_bench::e08_default_mapper::run_with_cache(cols, rows_m, cache.as_deref());
    print!("{}", fm_bench::e08_default_mapper::print(&rows));
}
