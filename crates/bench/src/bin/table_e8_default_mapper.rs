//! Regenerates the E8 table (default mapper vs serial vs expert).
//!
//! `--quick` shrinks the machine to 4×1 for a fast smoke run, e.g.
//! from `ci.sh`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cols, rows_m) = if quick { (4, 1) } else { (8, 1) };
    let rows = fm_bench::e08_default_mapper::run(cols, rows_m);
    print!("{}", fm_bench::e08_default_mapper::print(&rows));
}
