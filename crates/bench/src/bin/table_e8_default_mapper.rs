//! Regenerates the E8 table (default mapper vs serial vs expert).
fn main() {
    let rows = fm_bench::e08_default_mapper::run(8, 1);
    print!("{}", fm_bench::e08_default_mapper::print(&rows));
}
