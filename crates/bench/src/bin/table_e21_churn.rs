//! Regenerates the E21 table (elastic fleet under churn: throughput
//! cliff, wire join/leave, mid-suite ledger restart) and writes
//! `BENCH_e21.json` with the raw rows.
//!
//! Validates the experiment's acceptance criteria and exits non-zero
//! if any fails: bit-identical winner in every tune of both arms, zero
//! discarded sealed parts, the cliff detector actually fired, the
//! restarted coordinator came back with *persisted* weights, and the
//! adaptive arm beat the static arm on wall-clock (≥ 1.3× on full
//! runs; the bar relaxes to 1.1× under `--quick` — short runs are
//! noisier).
//!
//! `--quick` shrinks the tune count and collapse factor for a fast
//! smoke run, e.g. from `ci.sh`. `--json PATH` overrides the JSON
//! output path; `--no-json` suppresses it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e21.json".to_string());
    let rows = fm_bench::e21_churn::run(quick);
    print!("{}", fm_bench::e21_churn::print(&rows));

    let mut failures = Vec::new();
    for r in &rows {
        if !r.winner_bit_identical {
            failures.push(format!(
                "{}: winner diverged from single-machine tune",
                r.scenario
            ));
        }
        if r.parts_discarded != 0 {
            failures.push(format!(
                "{}: {} sealed parts discarded (must be 0)",
                r.scenario, r.parts_discarded
            ));
        }
    }
    if let Some(adaptive) = rows.iter().find(|r| r.scenario == "adaptive") {
        if adaptive.cliff_redispatches == 0 {
            failures.push("adaptive: cliff detector never fired".to_string());
        }
        if adaptive.joins == 0 || adaptive.leaves == 0 {
            failures.push("adaptive: membership never churned".to_string());
        }
        if adaptive.weight_source_after_restart != "persisted" {
            failures.push(format!(
                "adaptive: restarted coordinator weights were {:?}, not persisted",
                adaptive.weight_source_after_restart
            ));
        }
        let bar = if quick { 1.1 } else { 1.3 };
        if adaptive.speedup_vs_static < bar {
            failures.push(format!(
                "adaptive: speedup {:.2}x under the {bar}x bar",
                adaptive.speedup_vs_static
            ));
        }
    } else {
        failures.push("missing adaptive row".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("table_e21_churn: FAIL: {f}");
        }
        std::process::exit(1);
    }

    if !no_json {
        let doc = fm_bench::e21_churn::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e21_churn: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
