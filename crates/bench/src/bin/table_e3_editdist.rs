//! Regenerates the E3 table (edit-distance mapping sweep).
fn main() {
    let n = 128;
    let rows = fm_bench::e03_editdist::run(n, &[1, 2, 4, 8, 16, 32, 64, 128], 16);
    print!("{}", fm_bench::e03_editdist::print(n, &rows));
}
