//! Regenerates the E10 table (queue BFS vs XMT BFS).
fn main() {
    let rows = fm_bench::e10_bfs::run(&[(1_000, 4), (10_000, 4), (10_000, 16), (100_000, 8)], 7);
    print!("{}", fm_bench::e10_bfs::print(&rows));
}
