//! Regenerates the E5 table (unit-cost vs physical ranking).
fn main() {
    let rows = fm_bench::e05_inversion::run(256, 16);
    print!("{}", fm_bench::e05_inversion::print(&rows));
}
