//! Regenerates the E18 table (session warm re-tune vs cold re-tune on
//! a growing graph) and writes `BENCH_e18.json` with the raw rows.
//!
//! Validates the experiment's acceptance criteria and exits non-zero
//! if any fails: bit-identical winner in every row (the experiment
//! itself also panics on the first divergence), and — on full runs —
//! warm ≥ 3× cold wall-clock per edit at 1k+ nodes.
//!
//! `--quick` shrinks the graph sizes and edit count for a fast smoke
//! run, e.g. from `ci.sh` (the speedup bar relaxes to 1.5×; small
//! graphs flatter the cold path). `--json PATH` overrides the JSON
//! output path; `--no-json` suppresses it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e18.json".to_string());
    let rows = fm_bench::e18_session::run(quick);
    print!("{}", fm_bench::e18_session::print(&rows));

    let mut failures = Vec::new();
    for r in &rows {
        if !r.bit_identical {
            failures.push(format!(
                "{} nodes: warm winner diverged from cold tune",
                r.nodes
            ));
        }
        let bar = if quick { 1.5 } else { 3.0 };
        let gated = quick || r.nodes >= 1000;
        if gated && r.speedup < bar {
            failures.push(format!(
                "{} nodes: warm only {:.2}x cold, under the {bar}x bar",
                r.nodes, r.speedup
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("table_e18_session: FAIL: {f}");
        }
        std::process::exit(1);
    }

    if !no_json {
        let doc = fm_bench::e18_session::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e18_session: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
