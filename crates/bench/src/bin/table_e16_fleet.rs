//! Regenerates the E16 table (fault-tolerant fleet tuning: winner
//! parity and recovery counters across healthy, faulted, and dead
//! fleets) and writes `BENCH_e16.json` with the raw rows.
//!
//! `--quick` shrinks the tune count for a fast smoke run, e.g. from
//! `ci.sh`. `--json PATH` overrides the JSON output path; `--no-json`
//! suppresses it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e16.json".to_string());
    let rows = fm_bench::e16_fleet::run(quick);
    print!("{}", fm_bench::e16_fleet::print(&rows));
    if !no_json {
        let doc = fm_bench::e16_fleet::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e16_fleet: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
