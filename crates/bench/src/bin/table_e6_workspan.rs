//! Regenerates the E6 table (greedy bound on the work-stealing pool).
fn main() {
    let rows = fm_bench::e06_workspan::run(2_000_000, &[1, 2, 4, 8, 16], 3);
    print!("{}", fm_bench::e06_workspan::print(&rows));
}
