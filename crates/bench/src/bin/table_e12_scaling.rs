//! Regenerates the E12 table (many-core scaling).
fn main() {
    let n = 128;
    let rows = fm_bench::e12_scaling::run(n, &[1, 2, 4, 8, 16, 32, 64, 128]);
    print!("{}", fm_bench::e12_scaling::print(n, &rows));
    println!();
    let rows = fm_bench::e12_scaling::run_stencil(16, n, &[1, 2, 4, 8, 16, 32, 64, 128]);
    println!("(stencil 16x{n} series — boundary-only communication)\n");
    print!("{}", fm_bench::e12_scaling::print(n, &rows));
}
