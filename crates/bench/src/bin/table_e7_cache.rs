//! Regenerates the E7 table (ideal-cache matmul misses).
fn main() {
    let (n, l, tile) = (64, 16, 16);
    let rows = fm_bench::e07_cache::run(n, &[512, 2048, 8192, 32768], l, tile);
    print!("{}", fm_bench::e07_cache::print(n, l, tile, &rows));
}
