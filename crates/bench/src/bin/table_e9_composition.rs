//! Regenerates the E9 table (composition and remapping).
fn main() {
    let (n, p) = (256, 16);
    let rows = fm_bench::e09_composition::run(n, p);
    print!("{}", fm_bench::e09_composition::print(n, p, &rows));
}
