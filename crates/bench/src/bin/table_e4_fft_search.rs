//! Regenerates the E4 table (FFT mapping search).
//!
//! `--quick` shrinks the problem (FFT-64, fewer P values) for a
//! fast smoke run, e.g. from `ci.sh`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, p_values, machine_p) = if quick {
        (64, vec![4, 8], 8)
    } else {
        (256, vec![4, 8, 16], 16)
    };
    let rows = fm_bench::e04_fft_search::run(n, &p_values, machine_p);
    print!("{}", fm_bench::e04_fft_search::print(n, &rows));
}
