//! Regenerates the E4 table (FFT mapping search).
fn main() {
    let n = 256;
    let rows = fm_bench::e04_fft_search::run(n, &[4, 8, 16], 16);
    print!("{}", fm_bench::e04_fft_search::print(n, &rows));
}
