//! Regenerates the E4 table (FFT mapping search).
//!
//! `--quick` shrinks the problem (FFT-64, fewer P values) for a
//! fast smoke run, e.g. from `ci.sh`. `--cache DIR` persists tuning
//! results so a re-run replays every ranked table with zero candidate
//! re-evaluation.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cache = args
        .iter()
        .position(|a| a == "--cache")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let (n, p_values, machine_p) = if quick {
        (64, vec![4, 8], 8)
    } else {
        (256, vec![4, 8, 16], 16)
    };
    let rows = fm_bench::e04_fft_search::run_with_cache(n, &p_values, machine_p, cache.as_deref());
    print!("{}", fm_bench::e04_fft_search::print(n, &rows));
}
