//! Regenerates the E13 ablation table (recompute vs communicate).
fn main() {
    let rows = fm_bench::e13_recompute::run(6, &[1, 10, 100, 1000, 20_000], 8);
    print!("{}", fm_bench::e13_recompute::print(&rows));
}
