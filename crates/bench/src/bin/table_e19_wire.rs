//! Regenerates the E19 tables (blocking JSON vs. pipelined binary
//! transport, and dedup-batched admission under a duplicate-heavy
//! trace) and writes `BENCH_e19.json` with the raw rows.
//!
//! `--quick` shrinks request counts and the duplicate trace for a fast
//! smoke run, e.g. from `ci.sh`. `--json PATH` overrides the JSON
//! output path; `--no-json` suppresses it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e19.json".to_string());
    let results = fm_bench::e19_wire::run(quick);
    print!("{}", fm_bench::e19_wire::print(&results));
    if !no_json {
        let doc = fm_bench::e19_wire::to_json(&results);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e19_wire: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
