//! Regenerates every experiment table in one run (used to produce
//! EXPERIMENTS.md's measured sections).
fn main() {
    print!(
        "{}\n\n",
        fm_bench::e01_ratios::print(&fm_bench::e01_ratios::run())
    );
    let rows = fm_bench::e03_editdist::run(128, &[1, 2, 4, 8, 16, 32, 64, 128], 16);
    print!("{}\n\n", fm_bench::e03_editdist::print(128, &rows));
    let rows = fm_bench::e04_fft_search::run(256, &[4, 8, 16], 16);
    print!("{}\n\n", fm_bench::e04_fft_search::print(256, &rows));
    print!(
        "{}\n\n",
        fm_bench::e05_inversion::print(&fm_bench::e05_inversion::run(256, 16))
    );
    let rows = fm_bench::e06_workspan::run(2_000_000, &[1, 2, 4, 8, 16], 3);
    print!("{}\n\n", fm_bench::e06_workspan::print(&rows));
    let rows = fm_bench::e07_cache::run(64, &[512, 2048, 8192, 32768], 16, 16);
    print!("{}\n\n", fm_bench::e07_cache::print(64, 16, 16, &rows));
    print!(
        "{}\n\n",
        fm_bench::e08_default_mapper::print(&fm_bench::e08_default_mapper::run(8, 1))
    );
    let rows = fm_bench::e09_composition::run(256, 16);
    print!("{}\n\n", fm_bench::e09_composition::print(256, 16, &rows));
    let rows = fm_bench::e10_bfs::run(&[(1_000, 4), (10_000, 4), (10_000, 16), (100_000, 8)], 7);
    print!("{}\n\n", fm_bench::e10_bfs::print(&rows));
    let rows = fm_bench::e11_comm_events::run(&[2, 4, 8, 16]);
    let agg = fm_bench::e11_comm_events::run_aggregation(64, &[1, 2, 4, 8, 16]);
    print!("{}\n\n", fm_bench::e11_comm_events::print(&rows, &agg));
    let rows = fm_bench::e12_scaling::run(128, &[1, 2, 4, 8, 16, 32, 64, 128]);
    print!("{}\n\n", fm_bench::e12_scaling::print(128, &rows));
    let rows = fm_bench::e13_recompute::run(6, &[1, 10, 100, 1000, 20_000], 8);
    print!("{}\n\n", fm_bench::e13_recompute::print(&rows));
    let rows = fm_bench::e14_anneal::run(false);
    print!("{}\n\n", fm_bench::e14_anneal::print(&rows));
    let rows = fm_bench::e15_serve::run(false);
    print!("{}\n\n", fm_bench::e15_serve::print(&rows));
    let rows = fm_bench::e16_fleet::run(false);
    print!("{}\n\n", fm_bench::e16_fleet::print(&rows));
    let rows = fm_bench::e18_session::run(false);
    print!("{}\n\n", fm_bench::e18_session::print(&rows));
    let rows = fm_bench::e20_costmodels::run(false);
    println!("{}", fm_bench::e20_costmodels::print(&rows));
}
