//! Regenerates the E22 table (flat evaluation engine: evals/sec and
//! moves/sec vs the reference path) and writes `BENCH_e22.json`.
//!
//! This binary installs a counting global allocator so the timed flat
//! loop can be audited allocation-free (the `allocs/eval` column; the
//! bar is 0 and is asserted inside the measurement). `--quick` shrinks
//! timed rounds for a fast smoke run, e.g. from `ci.sh`. `--json PATH`
//! overrides the JSON output path; `--no-json` suppresses it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation so the
/// bench can prove the flat engine's steady state never touches the
/// heap.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e22.json".to_string());
    let rows = fm_bench::e22_evalperf::run_with_counter(quick, Some(alloc_count));
    print!("{}", fm_bench::e22_evalperf::print(&rows));
    // The headline acceptance bar: ≥2× single-thread evals/sec on the
    // E4 FFT workload. Only meaningful in release builds — debug
    // parity asserts make the flat full path intentionally slower.
    if cfg!(not(debug_assertions)) && !quick {
        for r in rows.iter().filter(|r| r.kind == "evals") {
            assert!(
                r.speedup >= 2.0,
                "{}: flat engine speedup {:.2}x below the 2x bar",
                r.workload,
                r.speedup
            );
        }
    }
    if !no_json {
        let doc = fm_bench::e22_evalperf::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e22_evalperf: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
