//! Regenerates the E11 tables (communication volume and events).
fn main() {
    let rows = fm_bench::e11_comm_events::run(&[2, 4, 8, 16]);
    let agg = fm_bench::e11_comm_events::run_aggregation(64, &[1, 2, 4, 8, 16]);
    print!("{}", fm_bench::e11_comm_events::print(&rows, &agg));
}
