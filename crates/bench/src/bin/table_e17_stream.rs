//! Regenerates the E17 table (streaming shard replies +
//! latency-weighted partitioning on a scripted-straggler topology) and
//! writes `BENCH_e17.json` with the raw rows.
//!
//! Validates the experiment's acceptance criteria and exits non-zero
//! if any fails: bit-identical winner in every row, zero discarded
//! streamed parts, streamed parts actually merged, and — on full runs
//! — a ≥ 1.5× wall-clock win for streaming + weighted over blocking.
//!
//! `--quick` shrinks the tune count for a fast smoke run, e.g. from
//! `ci.sh` (the speedup bar relaxes to 1.2×; short runs are noisier).
//! `--json PATH` overrides the JSON output path; `--no-json`
//! suppresses it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e17.json".to_string());
    let rows = fm_bench::e17_stream::run(quick);
    print!("{}", fm_bench::e17_stream::print(&rows));

    let mut failures = Vec::new();
    for r in &rows {
        if !r.winner_bit_identical {
            failures.push(format!(
                "{}: winner diverged from single-machine tune",
                r.scenario
            ));
        }
        if r.parts_discarded != 0 {
            failures.push(format!(
                "{}: {} streamed parts discarded (must be 0)",
                r.scenario, r.parts_discarded
            ));
        }
    }
    if let Some(streaming) = rows.iter().find(|r| r.scenario == "streaming+weighted") {
        if streaming.parts_merged == 0 {
            failures.push("streaming+weighted: no parts merged".to_string());
        }
        let bar = if quick { 1.2 } else { 1.5 };
        if streaming.speedup_vs_blocking < bar {
            failures.push(format!(
                "streaming+weighted: speedup {:.2}x under the {bar}x bar",
                streaming.speedup_vs_blocking
            ));
        }
    } else {
        failures.push("missing streaming+weighted row".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("table_e17_stream: FAIL: {f}");
        }
        std::process::exit(1);
    }

    if !no_json {
        let doc = fm_bench::e17_stream::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e17_stream: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
