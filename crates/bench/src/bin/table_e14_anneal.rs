//! Regenerates the E14 table (anneal throughput, full vs incremental
//! evaluation) and writes `BENCH_e14.json` with the raw rows.
//!
//! `--quick` shrinks the timed iteration count (not the graphs) for a
//! fast smoke run, e.g. from `ci.sh`. `--json PATH` overrides the JSON
//! output path; `--no-json` suppresses it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e14.json".to_string());
    let rows = fm_bench::e14_anneal::run(quick);
    print!("{}", fm_bench::e14_anneal::print(&rows));
    if !no_json {
        let doc = fm_bench::e14_anneal::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e14_anneal: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
