//! Regenerates the E20 table (winners under the analytic, roofline and
//! spatial cost backends) and writes `BENCH_e20.json` with the raw rows.
//!
//! `--quick` shrinks the kernel sizes for a fast smoke run, e.g. from
//! `ci.sh`. `--json PATH` overrides the JSON output path; `--no-json`
//! suppresses it.
//!
//! This driver is also the determinism and flip-shape gate: it runs the
//! whole sweep **twice** and exits non-zero if any winner or score bit
//! differs between the runs, if an analytic row claims to flip, or if
//! no backend flips any winner at all (the experiment's whole claim).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e20.json".to_string());

    use fm_bench::e20_costmodels as e20;
    let rows = e20::run(quick);
    let replay = e20::run(quick);
    if e20::fingerprint(&rows) != e20::fingerprint(&replay) {
        eprintln!("table_e20_costmodels: winner determinism broke — two runs disagree");
        eprintln!("run 1:\n{}", e20::winner_matrix(&rows));
        eprintln!("run 2:\n{}", e20::winner_matrix(&replay));
        std::process::exit(1);
    }
    if rows.iter().any(|r| r.model == "analytic" && r.flipped) {
        eprintln!("table_e20_costmodels: an analytic row flipped against itself");
        std::process::exit(1);
    }
    if !rows.iter().any(|r| r.flipped) {
        eprintln!(
            "table_e20_costmodels: no backend changed any winner — E20's claim is gone\n{}",
            e20::winner_matrix(&rows)
        );
        std::process::exit(1);
    }

    print!("{}", e20::print(&rows));
    if !no_json {
        let doc = e20::to_json(&rows);
        match std::fs::write(&json_path, doc) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("table_e20_costmodels: cannot write {json_path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
