//! Regenerates the E1/E2 table (technology cost ratios).
fn main() {
    let rows = fm_bench::e01_ratios::run();
    print!("{}", fm_bench::e01_ratios::print(&rows));
}
