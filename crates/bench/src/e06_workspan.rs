//! **E6 — the greedy-scheduler bound on real hardware** (§2).
//!
//! Blelloch: the fork-join work-span model "support[s] cost mappings
//! down to the machine level that reasonably capture real performance".
//! We measure `T_P` for instrumented kernels on the from-scratch
//! work-stealing pool and compare against `W/P + S` (calibrated in
//! seconds-per-unit from the P = 1 run).

use std::time::Instant;

use fm_kernels::scan::par_scan;
use fm_kernels::sortalg::{par_mergesort, par_samplesort};
use fm_kernels::util::XorShift;
use fm_workspan::{ThreadPool, WorkSpan};

use crate::table;

/// One measured point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub kernel: String,
    /// Worker threads.
    pub p: usize,
    /// Measured time (seconds, best of reps).
    pub t_seconds: f64,
    /// `W/P + S` in calibrated seconds.
    pub bound_seconds: f64,
    /// Speedup over P = 1.
    pub speedup: f64,
    /// Bound held (with a 2× grace factor for calibration noise)?
    pub held: bool,
}

fn time_best<F: FnMut()>(mut f: F, reps: u32) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Run the measurement. `p_values` are filtered to the host's
/// parallelism (Brent's bound presumes real processors).
pub fn run(n: usize, p_values: &[usize], reps: u32) -> Vec<Row> {
    let hw = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut rng = XorShift::new(2024);
    let sort_data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let scan_data: Vec<i64> = (0..n).map(|_| rng.below(1000) as i64).collect();

    type Runner<'a> = Box<dyn Fn(&ThreadPool) + 'a>;
    let kernels: Vec<(&str, WorkSpan, Runner<'_>)> = vec![
        (
            "mergesort",
            {
                let pool = ThreadPool::with_threads(1);
                par_mergesort(&pool, &sort_data, 8192).1
            },
            Box::new(|pool: &ThreadPool| {
                std::hint::black_box(par_mergesort(pool, &sort_data, 8192).0);
            }),
        ),
        (
            "samplesort",
            {
                let pool = ThreadPool::with_threads(1);
                par_samplesort(&pool, &sort_data, 64).1
            },
            Box::new(|pool: &ThreadPool| {
                std::hint::black_box(par_samplesort(pool, &sort_data, 64).0);
            }),
        ),
        (
            "scan",
            {
                let pool = ThreadPool::with_threads(1);
                par_scan(&pool, &scan_data, 8192).1
            },
            Box::new(|pool: &ThreadPool| {
                std::hint::black_box(par_scan(pool, &scan_data, 8192).0);
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, ws, runner) in &kernels {
        let pool1 = ThreadPool::with_threads(1);
        let t1 = time_best(|| runner(&pool1), reps);
        drop(pool1);
        let sec_per_unit = t1 / ws.work;
        for &p in p_values.iter().filter(|&&p| p <= hw) {
            let pool = ThreadPool::with_threads(p);
            let tp = time_best(|| runner(&pool), reps);
            let bound = ws.greedy_bound(p as u64) * sec_per_unit;
            rows.push(Row {
                kernel: name.to_string(),
                p,
                t_seconds: tp,
                bound_seconds: bound,
                speedup: t1 / tp,
                held: tp <= 2.0 * bound,
            });
        }
    }
    rows
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out =
        String::from("E6 — greedy bound T_P <= W/P + S on the work-stealing pool (2x grace)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.p.to_string(),
                format!("{:.2}", r.t_seconds * 1e3),
                format!("{:.2}", r.bound_seconds * 1e3),
                format!("{:.2}x", r.speedup),
                if r.held { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["kernel", "P", "T_P ms", "bound ms", "speedup", "held"],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_on_this_host() {
        // Small n to keep the test fast; the bound must hold at P=1 and
        // P=2 (if the host has 2 cores).
        let rows = run(200_000, &[1, 2], 2);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.held,
                "{} P={} : {} vs bound {}",
                r.kernel, r.p, r.t_seconds, r.bound_seconds
            );
        }
    }

    #[test]
    fn speedup_at_p1_is_about_one() {
        let rows = run(100_000, &[1], 2);
        for r in &rows {
            assert!(r.speedup > 0.5 && r.speedup < 2.0);
        }
    }
}
