//! **E9 — modular composition and remapping cost** (§3).
//!
//! "The output of module A must have the same mapping as the input of
//! module B for the two to be composed in series, or a remapping module
//! must be inserted between the two to shuffle the data."
//!
//! We compose map-stage pipelines with aligned and misaligned layouts,
//! measure the inserted remap's cost, and sweep the shuffle idiom's
//! cost with permutation distance.

use fm_core::compose::{idiom_map, remap_cost, shuffle_cost, DataLayout, Module, Pipeline};
use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;

use crate::table;

/// One pipeline configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration name.
    pub config: String,
    /// Remaps inserted.
    pub remaps: u32,
    /// Total cycles.
    pub cycles: i64,
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// On-chip messages.
    pub messages: u64,
}

/// Build two-stage pipelines over `n` elements on `p` PEs: aligned
/// (cyclic→cyclic), misaligned (cyclic→block), and a shuffle (reversal).
pub fn run(n: usize, p: i64) -> Vec<Row> {
    let machine = MachineConfig::linear(p as u32);
    let (g, rm) = idiom_map(n, p, 32);
    let report = Evaluator::new(&g, &machine)
        .with_all_inputs(InputPlacement::AtUse)
        .evaluate(&rm);

    let cyclic = DataLayout::cyclic(n, p);
    let block = DataLayout::block(n, p);

    let stage = |name: &str, input: &DataLayout, output: &DataLayout| Module {
        name: name.to_string(),
        report: report.clone(),
        input_layout: input.clone(),
        output_layout: output.clone(),
    };

    let mut rows = Vec::new();

    let mut aligned = Pipeline::new();
    aligned.push(&stage("map-a", &cyclic, &cyclic), &machine, 32);
    aligned.push(&stage("map-b", &cyclic, &cyclic), &machine, 32);
    rows.push(Row {
        config: "aligned (cyclic→cyclic)".into(),
        remaps: aligned.remaps_inserted,
        cycles: aligned.cycles,
        energy_pj: aligned.energy().raw() / 1e3,
        messages: aligned.ledger.onchip_messages,
    });

    let mut misaligned = Pipeline::new();
    misaligned.push(&stage("map-a", &cyclic, &cyclic), &machine, 32);
    misaligned.push(&stage("map-b", &block, &block), &machine, 32);
    rows.push(Row {
        config: "misaligned (cyclic→block)".into(),
        remaps: misaligned.remaps_inserted,
        cycles: misaligned.cycles,
        energy_pj: misaligned.energy().raw() / 1e3,
        messages: misaligned.ledger.onchip_messages,
    });

    // Pure movement idioms for scale.
    let remap = remap_cost(&cyclic, &block, 32, &machine);
    rows.push(Row {
        config: "remap alone (cyclic→block)".into(),
        remaps: 1,
        cycles: remap.cycles,
        energy_pj: remap.energy().raw() / 1e3,
        messages: remap.ledger.onchip_messages,
    });

    let perm: Vec<usize> = (0..n).rev().collect();
    let rev = shuffle_cost(&cyclic, &cyclic, &perm, 32, &machine);
    rows.push(Row {
        config: "shuffle (full reversal)".into(),
        remaps: 1,
        cycles: rev.cycles,
        energy_pj: rev.energy().raw() / 1e3,
        messages: rev.ledger.onchip_messages,
    });

    rows
}

/// Render.
pub fn print(n: usize, p: i64, rows: &[Row]) -> String {
    let mut out = format!("E9 — composition and remapping, n = {n}, P = {p}\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.remaps.to_string(),
                r.cycles.to_string(),
                table::f(r.energy_pj),
                r.messages.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["pipeline", "remaps", "cycles", "energy pJ", "messages"],
        &table_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misalignment_costs_a_remap() {
        let rows = run(64, 8);
        let aligned = &rows[0];
        let misaligned = &rows[1];
        assert_eq!(aligned.remaps, 0);
        assert_eq!(misaligned.remaps, 1);
        assert!(misaligned.energy_pj > aligned.energy_pj);
        assert!(misaligned.cycles > aligned.cycles);
    }

    #[test]
    fn pipeline_overhead_equals_standalone_remap() {
        let rows = run(64, 8);
        let delta = rows[1].energy_pj - rows[0].energy_pj;
        assert!((delta - rows[2].energy_pj).abs() < 1e-9);
    }

    #[test]
    fn reversal_shuffle_moves_everything() {
        let n = 64;
        let rows = run(n, 8);
        let rev = &rows[3];
        // Cyclic layout: element i and its reversed partner share a PE
        // only when i % p == (n-1-i) % p; for n=64, p=8 that never
        // happens (i + (63-i) = 63 ≡ 7 mod 8 ≠ 2i mod 8 ⇒ moved = all).
        assert_eq!(rev.messages, n as u64);
    }
}
