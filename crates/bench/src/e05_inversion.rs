//! **E5 — the unit-cost ranking failure** (§3).
//!
//! "In these [RAM/PRAM] models, everything is unit cost. … When
//! comparing two FFT algorithms that are both O(N log N), the one that
//! is 50,000× more efficient is preferred."
//!
//! We rank algorithm pairs under the PRAM's unit cost and under the
//! physical (F&M) cost, and report where the two lenses disagree —
//! including the headline case where the physical gap comes from
//! off-chip traffic, which unit cost prices at 1.

use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_core::pramcost::PramCost;
use fm_kernels::fft::{fft_graph, fft_mapping, FftVariant, LanePlacement};

use crate::table;

/// One compared pair.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pair description.
    pub pair: String,
    /// Unit-cost (PRAM) work ratio B/A.
    pub pram_ratio: f64,
    /// Physical energy ratio B/A.
    pub physical_ratio: f64,
    /// Do the two lenses rank the pair differently (or does unit cost
    /// call "tie" what physics separates)?
    pub lenses_disagree: bool,
}

/// Compare algorithm pairs at size `n` on `p` PEs.
pub fn run(n: usize, p: u32) -> Vec<Row> {
    let machine = MachineConfig::linear(p);
    let mut rows = Vec::new();

    // Pair 1: DIT vs DIF FFT, on-chip inputs — same O(N log N) math,
    // different movement.
    {
        let a = fft_graph(n, FftVariant::Dit);
        let b = fft_graph(n, FftVariant::Dif);
        let pram = PramCost::of(&b).work as f64 / PramCost::of(&a).work as f64;
        let rm_a = fft_mapping(&a, n, p, LanePlacement::Block, &machine);
        let rm_b = fft_mapping(&b, n, p, LanePlacement::Block, &machine);
        let ea = Evaluator::new(&a, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_a)
            .energy()
            .raw();
        let eb = Evaluator::new(&b, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_b)
            .energy()
            .raw();
        let phys = eb / ea;
        rows.push(Row {
            pair: format!("fft{n}: dif vs dit (on-chip)"),
            pram_ratio: pram,
            physical_ratio: phys,
            lenses_disagree: (pram - 1.0).abs() < 0.15 && phys > 1.15,
        });
    }

    // Pair 2: the same function with on-chip inputs vs DRAM-resident
    // inputs. Unit cost: identical (reads are unit ops either way).
    // Physical: every input element pays the ~45,000× off-chip charge.
    {
        let g = fft_graph(n, FftVariant::Dit);
        let rm = fft_mapping(&g, n, p, LanePlacement::Block, &machine);
        let onchip = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm)
            .energy()
            .raw();
        let dram = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::Dram)
            .evaluate(&rm)
            .energy()
            .raw();
        rows.push(Row {
            pair: format!("fft{n}: DRAM inputs vs on-chip inputs"),
            pram_ratio: 1.0, // unit cost cannot see placement at all
            physical_ratio: dram / onchip,
            lenses_disagree: dram / onchip > 1.15,
        });
    }

    // Pair 3: cyclic vs block lanes at the same P (same function, same
    // unit cost, different distances) — here the two placements happen
    // to tie in total bit·mm for radix-2 FFT, a *negative* control: the
    // lenses agree.
    {
        let g = fft_graph(n, FftVariant::Dit);
        let rm_blk = fft_mapping(&g, n, p, LanePlacement::Block, &machine);
        let rm_cyc = fft_mapping(&g, n, p, LanePlacement::Cyclic, &machine);
        let eb = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_blk)
            .energy()
            .raw();
        let ec = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm_cyc)
            .energy()
            .raw();
        rows.push(Row {
            pair: format!("fft{n}: cyclic vs block lanes (control)"),
            pram_ratio: 1.0,
            physical_ratio: ec / eb,
            lenses_disagree: (ec / eb - 1.0).abs() > 0.15,
        });
    }

    rows
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from("E5 — rankings: unit-cost (PRAM) lens vs physical (F&M) lens\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pair.clone(),
                format!("{:.2}x", r.pram_ratio),
                format!("{:.2}x", r.physical_ratio),
                if r.lenses_disagree { "YES" } else { "no" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "pair",
            "unit-cost ratio",
            "physical ratio",
            "lenses disagree",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nunit cost calls a tie wherever the math matches; the physical lens\n\
         separates by data movement — the paper's 50,000x point.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dif_vs_dit_inversion_detected() {
        let rows = run(128, 8);
        assert!(rows[0].lenses_disagree, "{:?}", rows[0]);
    }

    #[test]
    fn dram_placement_is_a_large_physical_factor() {
        let rows = run(128, 8);
        assert!(rows[1].physical_ratio > 3.0, "{:?}", rows[1]);
        assert!(rows[1].lenses_disagree);
    }

    #[test]
    fn control_pair_agrees() {
        let rows = run(128, 8);
        assert!(!rows[2].lenses_disagree, "{:?}", rows[2]);
    }
}
