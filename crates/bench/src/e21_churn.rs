//! **E21 — elastic fleet under churn** (`fm-serve --fleet
//! --fleet-ledger … --cliff-fraction …` + wire `ShardJoin`/`ShardLeave`).
//!
//! The adaptive fleet's three robustness legs, raced against a static
//! fleet on the same scripted misfortune: shard B's throughput
//! collapses mid-stream on every connection (a deterministic
//! `ThroughputCliff` fault proxy — healthy connection, crawling
//! watermark). The **static** arm keeps its founding roster and has
//! cliff detection disabled: every tune re-pays B's collapse. The
//! **adaptive** arm (same shards, same faults) lets the cliff detector
//! re-dispatch B's unfinished suffix, then *retires* B over the wire
//! (`ShardLeave`), *admits* a healthy replacement (`ShardJoin`), and —
//! mid-suite — the coordinator is killed and restarted against its
//! weight ledger, so the second life starts with persisted EWMA
//! weights instead of a cold uniform split.
//!
//! The invariant is unchanged and checked per tune in both arms:
//! bit-identical winner to a single-machine `Tuner::tune`, and zero
//! discarded sealed parts. The wall-clock gap is the headline; the
//! parity bit is the contract.

use std::time::{Duration, Instant};

use fm_autotune::{TunedMapping, Tuner};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::client::Client;
use fm_serve::fault::{FaultAction, FaultPlan, FaultProxy};
use fm_serve::fleet::FleetConfig;
use fm_serve::metrics::FleetStatsReply;
use fm_serve::protocol::{TuneRequest, WireCandidate};
use fm_serve::server::{Server, ServerConfig, ServerHandle};
use serde::Serialize;

use crate::table;

/// One arm's view of the churn schedule.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Arm (`static` / `adaptive`).
    pub scenario: String,
    /// Tunes issued sequentially (all completed).
    pub tunes: u64,
    /// Sum of per-tune latencies, milliseconds (excludes the scripted
    /// coordinator restart itself — the race is about serving time).
    pub total_wall_ms: f64,
    /// Median per-tune latency, milliseconds.
    pub p50_ms: f64,
    /// Maximum per-tune latency, milliseconds.
    pub max_ms: f64,
    /// Suffix re-dispatches fired by the throughput-cliff detector.
    pub cliff_redispatches: u64,
    /// Suffix re-dispatches fired by mid-range shard departure.
    pub departed_redispatches: u64,
    /// Effective wire admissions across both coordinator lives.
    pub joins: u64,
    /// Effective wire retirements across both coordinator lives.
    pub leaves: u64,
    /// Final membership epoch of the churned (first) life.
    pub membership_epoch: u64,
    /// Sealed parts discarded — the acceptance criterion demands zero.
    pub parts_discarded: u64,
    /// Every member's weight source right after the mid-suite restart
    /// (`persisted` proves the ledger worked; `n/a` for the static arm,
    /// which never restarts).
    pub weight_source_after_restart: String,
    /// This arm's speedup over the static arm (static = 1.0).
    pub speedup_vs_static: f64,
    /// Did every tune return the bit-identical single-machine winner?
    pub winner_bit_identical: bool,
}

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("e21-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

/// Legal fold-onto-`w`-PEs candidates (place `i mod w`, time `i div w`).
fn candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn direct_winner(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TunedMapping {
    let evaluator = Evaluator::new(graph, machine);
    let cands: Vec<MappingCandidate> = candidates(ncand, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    Tuner::new(&evaluator, graph, machine, FigureOfMerit::Time)
        .tune(&cands)
        .best
        .expect("direct tuner found a winner")
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One tune through `client`; returns (latency ms, winner parity).
fn one_tune(
    client: &mut Client,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    ncand: usize,
    expected: &TunedMapping,
) -> (f64, bool) {
    let t = Instant::now();
    let reply = client
        .tune(TuneRequest {
            graph: graph.clone(),
            machine: machine.clone(),
            fom: FigureOfMerit::Time,
            candidates: candidates(ncand, machine.cols),
            deadline_ms: None,
            max_candidates: None,
            convergence_window: None,
            refinement: None,
            use_cache: false,
            cost_model: None,
        })
        .expect("tune");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let best = reply.best.expect("a winner");
    let parity = best.label == expected.label
        && best.score.to_bits() == expected.score.to_bits()
        && best.resolved == expected.resolved;
    (ms, parity)
}

fn base_fleet(addrs: Vec<String>) -> FleetConfig {
    let mut f = FleetConfig::new(addrs);
    f.connect_timeout = Duration::from_millis(200);
    f.attempt_timeout = Duration::from_secs(10);
    f.backoff_base = Duration::from_millis(5);
    f.backoff_max = Duration::from_millis(40);
    // No hedging in either arm: the race isolates the elastic
    // machinery (cliff detector, membership, ledger) from the
    // pre-existing straggler hedge.
    f.hedge_after = None;
    f.stream_every = Some(4);
    f
}

fn start_coordinator(fleet: FleetConfig) -> ServerHandle {
    let config = ServerConfig {
        fleet: Some(fleet),
        ..ServerConfig::default()
    };
    Server::start("127.0.0.1:0", config).expect("bind coordinator")
}

/// Race the static and adaptive arms over the scripted churn. `quick`
/// shrinks the tune count and the collapse factor, not the shape.
pub fn run(quick: bool) -> Vec<Row> {
    let tunes = if quick { 4 } else { 6 };
    // Per-part stall = stream_every × this; it must comfortably exceed
    // `cliff_stall` (60 ms) or the detector's stall window never fills
    // between part arrivals.
    let ms_per_candidate = if quick { 40 } else { 50 };
    let restart_after = 2; // adaptive arm: restart before this tune index
    let ncand = 48;
    let graph = wide(20);
    let machine = MachineConfig::linear(8);
    let expected = direct_winner(&graph, &machine, ncand);
    let cliff_plan = || {
        FaultPlan::script(vec![
            FaultAction::ThroughputCliff {
                after_frame: 1,
                ms_per_candidate,
            };
            32
        ])
    };

    let mut rows = Vec::new();
    for adaptive in [false, true] {
        // Fresh topology per arm: healthy shard A, shard B collapsing
        // behind its proxy on every connection, and (for the adaptive
        // arm) a healthy replacement C waiting outside the roster.
        let shards: Vec<ServerHandle> = (0..3)
            .map(|_| Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind shard"))
            .collect();
        let proxy = FaultProxy::start(shards[1].local_addr(), cliff_plan()).expect("proxy");
        let healthy = shards[0].local_addr().to_string();
        let collapsed = proxy.local_addr().to_string();
        let replacement = shards[2].local_addr().to_string();
        let ledger = std::env::temp_dir().join(format!(
            "fm-e21-ledger-{}-{}.json",
            std::process::id(),
            adaptive
        ));
        let _ = std::fs::remove_file(&ledger);

        let mut fleet = base_fleet(vec![healthy.clone(), collapsed.clone()]);
        if adaptive {
            fleet.cliff_fraction = 0.5;
            fleet.cliff_stall = Duration::from_millis(60);
            fleet.weight_ledger = Some(ledger.clone());
        } else {
            fleet.cliff_fraction = 0.0;
        }
        let mut coord = start_coordinator(fleet);
        let mut client = Client::connect(coord.local_addr()).expect("connect");

        let mut lat = Vec::with_capacity(tunes);
        let mut identical = true;
        let mut churned_epoch = 0;
        let mut joins = 0;
        let mut leaves = 0;
        let mut weight_source_after_restart = "n/a".to_string();
        let mut first_life: Option<FleetStatsReply> = None;
        for round in 0..tunes {
            if adaptive && round == 1 {
                // The scripted churn: retire the collapsed shard over
                // the wire, admit the healthy replacement.
                assert!(client.shard_leave(&collapsed).expect("leave").changed);
                assert!(client.shard_join(&replacement).expect("join").changed);
            }
            if adaptive && round == restart_after {
                // Kill the coordinator mid-suite and restart it against
                // the ledger, with the post-churn roster. The second
                // life must come up *weighted*, not cold.
                let stats = coord.shutdown_and_join();
                let fleet_stats = stats.fleet.expect("fleet stats");
                churned_epoch = fleet_stats.membership_epoch;
                joins += fleet_stats.joins;
                leaves += fleet_stats.leaves;
                first_life = Some(fleet_stats);
                let mut fleet = base_fleet(vec![healthy.clone(), replacement.clone()]);
                fleet.cliff_fraction = 0.5;
                fleet.cliff_stall = Duration::from_millis(60);
                fleet.weight_ledger = Some(ledger.clone());
                coord = start_coordinator(fleet);
                client = Client::connect(coord.local_addr()).expect("reconnect");
                let reborn = coord.stats().fleet.expect("fleet stats");
                let mut sources: Vec<&str> = reborn
                    .shards
                    .iter()
                    .map(|s| s.weight_source.as_str())
                    .collect();
                sources.dedup();
                weight_source_after_restart = sources.join("+");
            }
            let (ms, parity) = one_tune(&mut client, &graph, &machine, ncand, &expected);
            lat.push(ms);
            identical &= parity;
        }

        let stats = coord.shutdown_and_join();
        let last_life = stats.fleet.expect("fleet stats");
        joins += last_life.joins;
        leaves += last_life.leaves;
        if churned_epoch == 0 {
            churned_epoch = last_life.membership_epoch;
        }
        let total: f64 = lat.iter().sum();
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let sum_u64 =
            |f: fn(&FleetStatsReply) -> u64| f(&last_life) + first_life.as_ref().map_or(0, f);
        rows.push(Row {
            scenario: if adaptive { "adaptive" } else { "static" }.to_string(),
            tunes: tunes as u64,
            total_wall_ms: total,
            p50_ms: quantile_ms(&sorted, 0.50),
            max_ms: sorted.last().copied().unwrap_or(0.0),
            cliff_redispatches: sum_u64(|f| f.cliff_redispatches),
            departed_redispatches: sum_u64(|f| f.departed_redispatches),
            joins,
            leaves,
            membership_epoch: churned_epoch,
            parts_discarded: sum_u64(|f| f.parts_discarded),
            weight_source_after_restart,
            speedup_vs_static: 1.0,
            winner_bit_identical: identical,
        });

        let _ = std::fs::remove_file(&ledger);
        proxy.stop();
        for s in shards {
            s.shutdown_and_join();
        }
    }

    let static_wall = rows[0].total_wall_ms;
    for r in &mut rows {
        r.speedup_vs_static = static_wall / r.total_wall_ms.max(1e-9);
    }
    rows
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from(
        "E21 — elastic fleet under churn (throughput cliff + join/leave + ledger restart)\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.tunes.to_string(),
                table::f(r.total_wall_ms),
                table::f(r.p50_ms),
                table::f(r.max_ms),
                r.cliff_redispatches.to_string(),
                r.departed_redispatches.to_string(),
                format!("{}/{}", r.joins, r.leaves),
                r.parts_discarded.to_string(),
                r.weight_source_after_restart.clone(),
                format!("{:.2}x", r.speedup_vs_static),
                if r.winner_bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "scenario",
            "tunes",
            "total ms",
            "p50 ms",
            "max ms",
            "cliff",
            "departed",
            "join/leave",
            "discard",
            "restart weights",
            "speedup",
            "bit-identical",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nthe static roster re-pays shard B's throughput collapse on every tune; the\n\
         adaptive fleet re-dispatches the stalled suffix, retires B over the wire,\n\
         admits a healthy replacement, and restarts mid-suite from its weight ledger.\n\
         the winner is bit-identical to a single-machine tune in every row.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e21.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_adapts_and_keeps_winner_parity() {
        let rows = run(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.winner_bit_identical, "{}: winner diverged", r.scenario);
            assert_eq!(r.parts_discarded, 0, "{}: discarded parts", r.scenario);
            assert!(r.p50_ms <= r.max_ms, "{}", r.scenario);
        }
        let stat = &rows[0];
        let adaptive = &rows[1];
        assert_eq!(stat.cliff_redispatches, 0, "static arm has no detector");
        assert_eq!(stat.joins + stat.leaves, 0, "static roster never churns");
        assert!(adaptive.cliff_redispatches >= 1, "cliff never fired");
        assert_eq!(adaptive.joins, 1);
        assert_eq!(adaptive.leaves, 1);
        assert_eq!(adaptive.membership_epoch, 3, "leave + join bump twice");
        assert_eq!(
            adaptive.weight_source_after_restart, "persisted",
            "the reborn coordinator should start from the ledger"
        );
        assert!(
            adaptive.speedup_vs_static >= 1.1,
            "adaptive speedup {:.2}x under 1.1x",
            adaptive.speedup_vs_static
        );
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            scenario: "adaptive".into(),
            tunes: 6,
            total_wall_ms: 900.0,
            p50_ms: 90.0,
            max_ms: 300.0,
            cliff_redispatches: 2,
            departed_redispatches: 1,
            joins: 1,
            leaves: 1,
            membership_epoch: 3,
            parts_discarded: 0,
            weight_source_after_restart: "persisted".into(),
            speedup_vs_static: 2.4,
            winner_bit_identical: true,
        }];
        let j = to_json(&rows);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"scenario\": \"adaptive\""), "{j}");
        assert!(
            j.contains("\"weight_source_after_restart\": \"persisted\""),
            "{j}"
        );
    }
}
