//! **E22 — flat evaluation engine throughput** (§3).
//!
//! The tuner's hot path is candidate evaluation: resolve a mapping,
//! check legality, fold per-node costs. The flat engine
//! ([`fm_core::BatchEvaluator`]) interns PE coordinates to dense ids,
//! folds costs through an SoA tree, and reuses one
//! [`fm_core::EvalScratch`] arena so the steady state allocates
//! nothing. This experiment times the reference path
//! (`evaluate_candidate_ref`, the pre-flat engine) against the flat
//! path on the E4 FFT search workload — single-threaded, identical
//! candidate lists — and asserts the two paths agree to the bit on
//! every candidate *and* on the winner before any throughput number is
//! reported. A second set of rows re-times the E14 anneal workloads
//! (moves/sec, full vs incremental backend) on the flattened
//! [`fm_core::delta::DeltaEvaluator`].
//!
//! When the caller installs an allocation counter (the
//! `table_e22_evalperf` binary does, via a counting global allocator)
//! the steady-state flat loop is also audited: after one warm-up pass
//! the timed loop must perform **zero** heap allocations.

use std::time::Instant;

use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_core::search::{
    anneal_with, default_mapper, evaluate_candidate_ref, AnnealBackend, CandidateEval,
    FigureOfMerit, MappingCandidate,
};
use fm_core::{BatchEvaluator, EvalScratch, RawEval};
use fm_kernels::editdist::{edit_recurrence, Scoring};
use fm_kernels::fft::{fft_graph, FftFamily, FftVariant};
use serde::Serialize;

use crate::table;

/// One workload measurement (either evaluations/sec or moves/sec).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// `"evals"` (candidate evaluation) or `"moves"` (anneal moves).
    pub kind: String,
    /// Node count of the graph.
    pub nodes: usize,
    /// Candidate count (evals rows) or anneal iterations (moves rows).
    pub units: u64,
    /// Reference-path throughput (evals/sec or moves/sec).
    pub ref_per_sec: f64,
    /// Flat-path throughput (evals/sec or moves/sec).
    pub flat_per_sec: f64,
    /// `flat_per_sec / ref_per_sec`.
    pub speedup: f64,
    /// Heap allocations per evaluation in the timed flat loop, if an
    /// allocation counter was installed (`None` otherwise). The
    /// acceptance bar is exactly `Some(0.0)`.
    pub steady_allocs_per_eval: Option<f64>,
}

/// Winner under a figure of merit: index and score bits of the best
/// legal candidate (lower score wins, first wins ties). `None` when no
/// candidate is legal.
fn winner_of(scores: &[Option<f64>]) -> Option<(usize, u64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, s) in scores.iter().enumerate() {
        if let Some(s) = s {
            if best.is_none_or(|(_, b)| *s < b) {
                best = Some((i, *s));
            }
        }
    }
    best.map(|(i, s)| (i, s.to_bits()))
}

fn ref_score(e: &CandidateEval) -> Option<f64> {
    match e {
        CandidateEval::Legal { score, .. } => Some(*score),
        _ => None,
    }
}

fn raw_score(e: &RawEval) -> Option<f64> {
    match e {
        RawEval::Legal { score, .. } => Some(*score),
        _ => None,
    }
}

/// Time single-threaded candidate evaluation over an E4-style FFT
/// candidate list: reference path vs flat path, with bit parity and
/// winner parity asserted, and (optionally) the flat loop's heap
/// allocations counted.
fn measure_evals(
    name: &str,
    n: usize,
    machine_p: u32,
    rounds: u32,
    alloc_count: Option<fn() -> u64>,
) -> Row {
    let machine = MachineConfig::linear(machine_p);
    let graph = fft_graph(n, FftVariant::Dit);
    let family = FftFamily {
        n,
        p_values: vec![2, 4, 8],
    };
    let candidates: Vec<MappingCandidate> = family.candidates_for(&graph, &machine);
    assert!(!candidates.is_empty(), "{name}: empty candidate family");
    let ev = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
    let fom = FigureOfMerit::Edp;

    // Parity gate: every candidate must agree to the bit between the
    // two paths before either is timed, and both must crown the same
    // winner with the same score bits.
    let batch = BatchEvaluator::new(&ev, &graph, &machine, fom);
    let mut scratch = EvalScratch::new();
    let ref_evals: Vec<CandidateEval> = candidates
        .iter()
        .map(|c| evaluate_candidate_ref(&ev, &graph, &machine, c, fom))
        .collect();
    let flat_raw: Vec<RawEval> = candidates
        .iter()
        .map(|c| batch.evaluate_raw_in(c, &mut scratch))
        .collect();
    for (i, (r, f)) in ref_evals.iter().zip(&flat_raw).enumerate() {
        let (rs, fs) = (ref_score(r), raw_score(f));
        assert_eq!(
            rs.map(f64::to_bits),
            fs.map(f64::to_bits),
            "{name}: candidate {i} ({}) score bits diverged",
            candidates[i].label
        );
        // The full (report-materializing) flat path must agree too.
        assert_eq!(
            *r,
            batch.evaluate_candidate_in(&candidates[i], &mut scratch),
            "{name}: candidate {i} full evaluation diverged"
        );
    }
    let ref_scores: Vec<Option<f64>> = ref_evals.iter().map(ref_score).collect();
    let flat_scores: Vec<Option<f64>> = flat_raw.iter().map(raw_score).collect();
    let win = winner_of(&ref_scores);
    assert_eq!(win, winner_of(&flat_scores), "{name}: winner diverged");
    assert!(win.is_some(), "{name}: no legal candidate");

    // Reference arm. One warm-up pass, then `rounds` timed passes.
    for c in &candidates {
        std::hint::black_box(evaluate_candidate_ref(&ev, &graph, &machine, c, fom));
    }
    let t0 = Instant::now();
    for _ in 0..rounds {
        for c in &candidates {
            std::hint::black_box(evaluate_candidate_ref(&ev, &graph, &machine, c, fom));
        }
    }
    let ref_wall = t0.elapsed().as_secs_f64().max(1e-9);

    // Flat arm: same candidates, same order, one scratch arena. The
    // warm-up pass above already sized every buffer, so the timed loop
    // must not allocate at all.
    let before = alloc_count.map(|f| f());
    let t1 = Instant::now();
    for _ in 0..rounds {
        for c in &candidates {
            std::hint::black_box(batch.evaluate_raw_in(c, &mut scratch));
        }
    }
    let flat_wall = t1.elapsed().as_secs_f64().max(1e-9);
    let timed_evals = u64::from(rounds) * candidates.len() as u64;
    let steady_allocs_per_eval = before.map(|b| {
        let allocs = alloc_count.expect("sampled above")() - b;
        assert_eq!(
            allocs, 0,
            "{name}: flat steady state allocated {allocs} times over {timed_evals} evals"
        );
        allocs as f64 / timed_evals as f64
    });

    let ref_ps = timed_evals as f64 / ref_wall;
    let flat_ps = timed_evals as f64 / flat_wall;
    Row {
        workload: name.to_string(),
        kind: "evals".to_string(),
        nodes: graph.nodes.len(),
        units: candidates.len() as u64,
        ref_per_sec: ref_ps,
        flat_per_sec: flat_ps,
        speedup: flat_ps / ref_ps,
        steady_allocs_per_eval,
    }
}

/// Time the E14 anneal workload (full vs incremental backend) on the
/// flattened delta engine. Mapping/report parity is asserted exactly
/// as in E14: same RNG stream, same finish.
fn measure_moves(name: &str, graph: &fm_core::dataflow::DataflowGraph, iters: u32) -> Row {
    let machine = MachineConfig::n5(8, 8);
    let ev = Evaluator::new(graph, &machine).with_all_inputs(InputPlacement::AtUse);
    let init = default_mapper(graph, &machine);
    let fom = FigureOfMerit::Edp;

    let t0 = Instant::now();
    let full = anneal_with(
        &ev,
        graph,
        &machine,
        &init,
        fom,
        iters,
        43,
        AnnealBackend::Full,
    );
    let full_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let t1 = Instant::now();
    let inc = anneal_with(
        &ev,
        graph,
        &machine,
        &init,
        fom,
        iters,
        43,
        AnnealBackend::Incremental,
    );
    let inc_wall = t1.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(full, inc, "{name}: backends diverged");

    let ref_ps = f64::from(iters) / full_wall;
    let flat_ps = f64::from(iters) / inc_wall;
    Row {
        workload: name.to_string(),
        kind: "moves".to_string(),
        nodes: graph.nodes.len(),
        units: u64::from(iters),
        ref_per_sec: ref_ps,
        flat_per_sec: flat_ps,
        speedup: flat_ps / ref_ps,
        steady_allocs_per_eval: None,
    }
}

/// Run the experiment. `quick` shrinks timed rounds/iterations, not
/// the graphs — the parity gates always see real problem sizes.
pub fn run(quick: bool) -> Vec<Row> {
    run_with_counter(quick, None)
}

/// [`run`] with an optional allocation counter: a function returning
/// the process-wide heap allocation count so far (installed by the
/// bench binary's counting global allocator). When present, the timed
/// flat loops are asserted allocation-free.
pub fn run_with_counter(quick: bool, alloc_count: Option<fn() -> u64>) -> Vec<Row> {
    let rounds = if quick { 20 } else { 200 };
    let iters = if quick { 200 } else { 2_000 };
    let ed = edit_recurrence(32, 32, Scoring::paper_local())
        .elaborate()
        .expect("well-founded");
    let fft = fft_graph(256, FftVariant::Dit);
    vec![
        measure_evals("fft64-e4", 64, 8, rounds, alloc_count),
        measure_evals("fft256-e4", 256, 8, rounds, alloc_count),
        measure_moves("editdist32x32", &ed, iters),
        measure_moves("fft256-dit", &fft, iters),
    ]
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from("E22 — flat evaluation engine: evals/sec and moves/sec\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.kind.clone(),
                r.nodes.to_string(),
                r.units.to_string(),
                table::f(r.ref_per_sec),
                table::f(r.flat_per_sec),
                format!("{:.1}x", r.speedup),
                match r.steady_allocs_per_eval {
                    Some(a) => format!("{a:.0}"),
                    None => "-".to_string(),
                },
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "workload",
            "kind",
            "nodes",
            "units",
            "ref /s",
            "flat /s",
            "speedup",
            "allocs/eval",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nevals rows: reference candidate path vs flat engine, single\n\
         thread, bit-identical scores and winner asserted. moves rows:\n\
         E14 anneal, full vs incremental backend on the flattened delta\n\
         engine. allocs/eval is audited only when the binary installs a\n\
         counting allocator; the bar is 0.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e22.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wall-clock timing tests must not run concurrently.
    static TIMING: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn parity_gates_pass_on_all_workloads() {
        let _serial = TIMING.lock().unwrap();
        // `measure_evals` asserts per-candidate and winner bit parity;
        // `measure_moves` asserts backend parity. A quick run is the
        // test.
        let rows = run(true);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.flat_per_sec > 0.0));
        assert_eq!(
            rows.iter().filter(|r| r.kind == "evals").count(),
            2,
            "two evals rows expected"
        );
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            workload: "w".into(),
            kind: "evals".into(),
            nodes: 512,
            units: 6,
            ref_per_sec: 100.0,
            flat_per_sec: 400.0,
            speedup: 4.0,
            steady_allocs_per_eval: Some(0.0),
        }];
        let j = to_json(&rows);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"nodes\": 512"), "{j}");
        assert!(j.contains("\"speedup\": 4.0"), "{j}");
    }

    // The acceptance criterion: the flat engine evaluates candidates
    // ≥2× faster than the reference path, single-threaded, on the E4
    // FFT workload. Release-only: under debug-assertions the flat
    // full path re-runs the reference evaluator for parity, which is
    // deliberately slower. Best-of-3 against a loaded host.
    #[cfg(not(debug_assertions))]
    #[test]
    fn flat_at_least_2x_faster_in_release() {
        let _serial = TIMING.lock().unwrap();
        let mut worst_by_attempt = Vec::new();
        for _ in 0..3 {
            let rows = run(false);
            let worst = rows
                .iter()
                .filter(|r| r.kind == "evals")
                .map(|r| r.speedup)
                .fold(f64::INFINITY, f64::min);
            if worst >= 2.0 {
                return;
            }
            worst_by_attempt.push(worst);
        }
        panic!("flat engine never reached 2x; worst speedup per attempt: {worst_by_attempt:?}");
    }
}
