//! **E10 — BFS without the queue** (§5).
//!
//! Vishkin: BFS "had been tied to a first-in first-out queue for no
//! good reason other than enforcing serialization, even where
//! parallelism exists." The level-synchronous XMT BFS (prefix-sum
//! frontier compaction) exposes that parallelism: work stays linear,
//! depth drops from Θ(V) queue operations to Θ(diameter) spawn blocks.

use fm_kernels::bfs::{bfs_serial, bfs_xmt, random_graph};

use crate::table;

/// One graph instance.
#[derive(Debug, Clone)]
pub struct Row {
    /// Vertices.
    pub v: usize,
    /// Edges.
    pub e: usize,
    /// Serial queue operations (the serialized chain).
    pub serial_ops: u64,
    /// XMT work (thread activations).
    pub xmt_work: u64,
    /// XMT depth (spawn blocks).
    pub xmt_depth: u64,
    /// BFS levels (graph eccentricity from the source).
    pub levels: i64,
    /// Available parallelism (work / depth).
    pub parallelism: f64,
    /// Brent time on 64 TCUs.
    pub t64: u64,
}

/// Sweep graph sizes/densities.
pub fn run(configs: &[(usize, usize)], seed: u64) -> Vec<Row> {
    configs
        .iter()
        .map(|&(v, deg)| {
            let g = random_graph(v, deg, seed);
            let (d1, serial_ops) = bfs_serial(&g, 0);
            let (d2, work, depth) = bfs_xmt(&g, 0).expect("XMT BFS runs");
            assert_eq!(d1, d2, "V={v} deg={deg}");
            let levels = d1.iter().max().copied().unwrap_or(0);
            Row {
                v,
                e: g.edge_count(),
                serial_ops,
                xmt_work: work,
                xmt_depth: depth,
                levels,
                parallelism: work as f64 / depth as f64,
                t64: {
                    // Brent bound with the measured work/depth.
                    work.div_ceil(64) + depth
                },
            }
        })
        .collect()
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from("E10 — serial queue BFS vs level-synchronous XMT BFS\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.v.to_string(),
                r.e.to_string(),
                r.serial_ops.to_string(),
                r.xmt_work.to_string(),
                r.xmt_depth.to_string(),
                r.levels.to_string(),
                table::f(r.parallelism),
                r.t64.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "V",
            "E",
            "serial ops",
            "XMT work",
            "XMT depth",
            "levels",
            "par",
            "T(64)",
        ],
        &table_rows,
    ));
    out.push_str("\nserial ops form a chain; XMT work is the same order but its depth\nis two spawn blocks per BFS level — the queue was the only obstacle.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmt_depth_scales_with_levels_not_vertices() {
        let rows = run(&[(500, 8), (5000, 8)], 9);
        for r in &rows {
            // Two spawn blocks per nonempty frontier; frontiers exist at
            // distances 0..=levels.
            assert_eq!(r.xmt_depth, 2 * (r.levels as u64 + 1), "{r:?}");
            assert!(r.xmt_depth < r.v as u64 / 10);
        }
    }

    #[test]
    fn work_within_constant_of_serial() {
        let rows = run(&[(1000, 4)], 11);
        let r = &rows[0];
        assert!(r.xmt_work <= 2 * r.serial_ops);
    }

    #[test]
    fn denser_graphs_have_more_parallelism() {
        let rows = run(&[(2000, 2), (2000, 16)], 13);
        assert!(rows[1].parallelism > rows[0].parallelism);
    }

    #[test]
    fn brent_time_beats_serial_chain() {
        let rows = run(&[(5000, 8)], 17);
        let r = &rows[0];
        assert!(r.t64 < r.serial_ops / 8);
    }
}
