//! **E11 — communication as volume AND events** (§6).
//!
//! Yelick: "Algorithms must also treat communication avoidance as a
//! first-class optimization target, reducing both data movement volume
//! and number of distinct events." — and heavyweight mechanisms
//! "require more data aggregation to amortize overhead [and] can
//! consume precious fast memory resources."
//!
//! The ledger counts both. We report, per kernel and P: message events,
//! bits moved, distance-weighted volume (bit·mm), and the mean message
//! size; then an aggregation sweep shows the volume/event trade: batch
//! `k` stencil steps per exchange and events drop by `k` while volume
//! grows with the halo width (and the tile footprint grows with the
//! batch).

use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_kernels::editdist::{edit_recurrence, paper_input_placements, skewed_mapping, Scoring};
use fm_kernels::stencil::{blocked_mapping, stencil_recurrence};

use crate::table;

/// Measured traffic for one configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration name.
    pub config: String,
    /// On-chip message events.
    pub messages: u64,
    /// Bits moved.
    pub bits: u64,
    /// Distance-weighted volume.
    pub bit_mm: f64,
    /// Mean bits per message.
    pub mean_message_bits: f64,
    /// Peak tile bits (the "precious fast memory" cost of aggregation).
    pub peak_tile_bits: u64,
}

/// Measure traffic for edit distance and the stencil across P values.
pub fn run(p_values: &[i64]) -> Vec<Row> {
    let mut rows = Vec::new();

    let n = 48;
    let rec = edit_recurrence(n, n, Scoring::paper_local());
    let g = rec.elaborate().unwrap();
    for &p in p_values {
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, n).resolve(&g, &machine).unwrap();
        let mut ev = Evaluator::new(&g, &machine);
        for (i, pl) in paper_input_placements(p).into_iter().enumerate() {
            ev = ev.with_input_placement(i, pl);
        }
        let rep = ev.evaluate(&rm);
        rows.push(Row {
            config: format!("editdist{n} P={p}"),
            messages: rep.ledger.onchip_messages,
            bits: rep.ledger.onchip_bits,
            bit_mm: rep.ledger.onchip_bit_mm,
            mean_message_bits: rep.ledger.mean_message_bits(),
            peak_tile_bits: rep.peak_tile_bits,
        });
    }

    let (t, ns) = (16, 64);
    let sg = stencil_recurrence(t, ns).elaborate().unwrap();
    for &p in p_values {
        let machine = MachineConfig::linear(p as u32);
        let rm = blocked_mapping(ns, p).resolve(&sg, &machine).unwrap();
        let rep = Evaluator::new(&sg, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        rows.push(Row {
            config: format!("stencil{t}x{ns} P={p}"),
            messages: rep.ledger.onchip_messages,
            bits: rep.ledger.onchip_bits,
            bit_mm: rep.ledger.onchip_bit_mm,
            mean_message_bits: rep.ledger.mean_message_bits(),
            peak_tile_bits: rep.peak_tile_bits,
        });
    }

    rows
}

/// Aggregation sweep row: batching `k` stencil steps per exchange.
#[derive(Debug, Clone)]
pub struct AggRow {
    /// Steps batched per exchange.
    pub k: usize,
    /// Message events per PE boundary over the whole run (analytic).
    pub events: u64,
    /// Words exchanged per boundary over the whole run (halo width = k).
    pub words: u64,
    /// Extra halo words buffered per tile (the fast-memory cost).
    pub halo_tile_words: u64,
}

/// Analytic aggregation model for a `t_steps`-step stencil: exchanging
/// every `k` steps needs a `k`-deep halo, so events fall as `t/k` while
/// words per exchange grow as `k` (volume stays ~constant, plus
/// redundant halo recompute) and the tile must buffer `k` halo words.
pub fn run_aggregation(t_steps: usize, ks: &[usize]) -> Vec<AggRow> {
    ks.iter()
        .map(|&k| {
            let exchanges = t_steps.div_ceil(k) as u64;
            AggRow {
                k,
                events: exchanges,
                words: exchanges * k as u64,
                halo_tile_words: k as u64,
            }
        })
        .collect()
}

/// Render both tables.
pub fn print(rows: &[Row], agg: &[AggRow]) -> String {
    let mut out = String::from("E11 — communication volume and events\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.messages.to_string(),
                r.bits.to_string(),
                table::f(r.bit_mm),
                table::f(r.mean_message_bits),
                r.peak_tile_bits.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "config",
            "events",
            "bits",
            "bit·mm",
            "bits/msg",
            "peak tile",
        ],
        &table_rows,
    ));
    out.push_str("\naggregation sweep (stencil halo batching, per boundary):\n\n");
    let agg_rows: Vec<Vec<String>> = agg
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                r.events.to_string(),
                r.words.to_string(),
                r.halo_tile_words.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["batch k", "events", "words", "halo words/tile"],
        &agg_rows,
    ));
    out.push_str("\nevents fall as t/k; the price is halo buffering in the tile —\nYelick's 'consume precious fast memory resources' trade, quantified.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_volume_both_reported() {
        let rows = run(&[2, 8]);
        for r in &rows {
            assert!(r.messages > 0);
            assert!(r.bits >= r.messages * 32);
            assert!(r.mean_message_bits >= 32.0);
        }
    }

    #[test]
    fn stencil_events_grow_with_p_but_slower_than_editdist() {
        let rows = run(&[2, 8]);
        let get = |pfx: &str, p: i64| {
            rows.iter()
                .find(|r| r.config.starts_with(pfx) && r.config.ends_with(&format!("P={p}")))
                .unwrap()
                .messages
        };
        // Stencil: boundary-only communication — events scale with P.
        assert!(get("stencil", 8) > get("stencil", 2));
        // Edit distance communicates every cell: far more events.
        assert!(get("editdist", 8) > 4 * get("stencil", 8));
    }

    #[test]
    fn aggregation_trades_events_for_tile_space() {
        let agg = run_aggregation(64, &[1, 4, 16]);
        assert_eq!(agg[0].events, 64);
        assert_eq!(agg[1].events, 16);
        assert_eq!(agg[2].events, 4);
        // Tile cost grows with the batch.
        assert!(agg[2].halo_tile_words > agg[0].halo_tile_words);
        // Total words stay constant here (halo of k covers k steps).
        assert_eq!(agg[0].words, agg[2].words);
    }
}
