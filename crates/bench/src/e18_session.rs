//! **E18 — session warm re-tune vs cold re-tune on a growing graph**
//! (`fm-serve` sessions: `SessionEdit` + `SessionTune`).
//!
//! The session subsystem's bet, measured: a client growing a function
//! graph one small edit at a time re-tunes after every edit. The cold
//! path re-evaluates every candidate against the whole graph each time
//! — O(V) per candidate per edit, the price a sessionless `Tune`
//! request pays. The warm path (what `SessionTune` runs) repairs each
//! candidate's cached cost tree over the edit's dirty cone and re-ranks
//! — O(cone) per candidate, with the cone a handful of nodes for a
//! small edit regardless of graph size. The gap should therefore *grow*
//! with the graph: the acceptance bar is warm ≥ 3× cold at 1k+ nodes.
//!
//! The invariant is checked on every single row, same discipline as
//! the fleet experiments: the warm winner must be bit-identical
//! (label, score bits, resolved tables) to a cold `Tuner::tune` of the
//! current graph with the candidate set frozen at session open. The
//! speedup is the headline; the parity bit is the contract.

use std::time::Instant;

use fm_autotune::{Tuner, WarmCache};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::mutate::{apply_edit, GraphEdit};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use serde::Serialize;

use crate::table;

/// One growing-graph scenario: a starting size, a stream of small
/// edits, warm-vs-cold re-tune latency after each.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Nodes in the graph when the session opened.
    pub nodes: u64,
    /// Candidates frozen at session open.
    pub candidates: u64,
    /// Small edits applied (one re-tune after each).
    pub edits: u64,
    /// Mean warm re-tune latency per edit (repair + re-rank), ms.
    pub warm_ms_per_edit: f64,
    /// Mean cold re-tune latency per edit (full re-evaluation), ms.
    pub cold_ms_per_edit: f64,
    /// cold / warm — the headline.
    pub speedup: f64,
    /// Mean dirty-cone size per edit (what the warm path repairs).
    pub mean_cone: f64,
    /// Candidates cold-rebuilt across the whole stream (invalidation,
    /// not repair — the warm path's honest escape hatch).
    pub rebuilds: u64,
    /// Was every warm winner bit-identical to its cold reference?
    pub bit_identical: bool,
}

fn chain(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("e18-chain", 32);
    g.add_node(CExpr::konst(Value::ZERO), vec![], vec![0]);
    for i in 1..n {
        g.add_node(
            CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            vec![(i - 1) as u32],
            vec![i as i64],
        );
    }
    g
}

/// The frozen candidate set: `stretch-w` schedules (place `i mod w`,
/// time `i·w` — the stretch covers the NoC wrap gap, so every one is
/// legal on a chain of any length) plus a serial table mapping, which
/// the first length-changing edit makes unresolvable — exactly what
/// happens to table mappings in a live session.
fn frozen_candidates(g: &DataflowGraph, widths: u32) -> Vec<MappingCandidate> {
    let mut cands: Vec<MappingCandidate> = (1..=widths as i64)
        .map(|w| {
            MappingCandidate::new(
                format!("stretch-{w}"),
                Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::MulC(Box::new(IdxExpr::i()), w),
                }),
            )
        })
        .collect();
    cands.push(MappingCandidate::new("serial", Mapping::serial(g)));
    cands
}

/// Grow a chain by `edits` appended nodes, re-tuning warm and cold
/// after every edit; panics on any parity violation (the bench *is*
/// the check).
fn grow(start_nodes: usize, edits: usize) -> Row {
    const FOM: FigureOfMerit = FigureOfMerit::Time;
    let mut g = chain(start_nodes);
    let mut m = MachineConfig::linear(8);
    let frozen = frozen_candidates(&g, 8);

    let mut warm = {
        let ev = Evaluator::new(&g, &m);
        WarmCache::new(&ev, frozen.clone())
    };
    let rebuilds_at_open = warm.rebuilds();
    let mut warm_ms = 0.0;
    let mut cold_ms = 0.0;
    let mut cone_total = 0u64;
    let mut bit_identical = true;

    for _ in 0..edits {
        let last = (g.nodes.len() - 1) as u32;
        let edit = GraphEdit::AddNode {
            expr: CExpr::dep(0).add(CExpr::konst(Value::real(1.0))),
            deps: vec![last],
            index: vec![i64::from(last) + 1],
            output: false,
        };

        // Warm path: apply the edit, repair the dirty cone, re-rank.
        let t0 = Instant::now();
        let receipt = apply_edit(&mut g, &mut m, &edit).expect("edit applies");
        let warm_report = {
            let ev = Evaluator::new(&g, &m);
            cone_total += warm.apply_edit(&ev, &receipt);
            Tuner::new(&ev, &g, &m, FOM).tune_warm(&mut warm)
        };
        warm_ms += t0.elapsed().as_secs_f64() * 1e3;

        // Cold path: the sessionless re-tune of the same graph.
        let t1 = Instant::now();
        let cold_report = {
            let ev = Evaluator::new(&g, &m);
            Tuner::new(&ev, &g, &m, FOM).tune(&frozen)
        };
        cold_ms += t1.elapsed().as_secs_f64() * 1e3;

        let w = warm_report.best.as_ref().expect("warm winner");
        let c = cold_report.best.as_ref().expect("cold winner");
        bit_identical &= w.label == c.label
            && w.score.to_bits() == c.score.to_bits()
            && w.resolved == c.resolved
            && warm_report.best_index == cold_report.best_index;
        assert!(
            bit_identical,
            "parity violated at {} nodes: warm {} ({}) vs cold {} ({})",
            g.nodes.len(),
            w.label,
            w.score,
            c.label,
            c.score
        );
    }

    Row {
        nodes: start_nodes as u64,
        candidates: frozen.len() as u64,
        edits: edits as u64,
        warm_ms_per_edit: warm_ms / edits as f64,
        cold_ms_per_edit: cold_ms / edits as f64,
        speedup: cold_ms / warm_ms.max(1e-9),
        mean_cone: cone_total as f64 / edits as f64,
        rebuilds: warm.rebuilds() - rebuilds_at_open,
        bit_identical,
    }
}

/// Run the growing-graph scenarios. `quick` shrinks the sizes and the
/// edit count, not the shape.
pub fn run(quick: bool) -> Vec<Row> {
    let (sizes, edits): (&[usize], usize) = if quick {
        (&[96, 192], 8)
    } else {
        (&[128, 512, 1024, 2048], 16)
    };
    sizes.iter().map(|&n| grow(n, edits)).collect()
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from("E18 — session warm re-tune vs cold re-tune on a growing graph\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.candidates.to_string(),
                r.edits.to_string(),
                table::f(r.warm_ms_per_edit),
                table::f(r.cold_ms_per_edit),
                format!("{:.1}x", r.speedup),
                format!("{:.1}", r.mean_cone),
                r.rebuilds.to_string(),
                if r.bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "nodes",
            "cands",
            "edits",
            "warm ms",
            "cold ms",
            "speedup",
            "cone",
            "rebuilds",
            "bit-identical",
        ],
        &table_rows,
    ));
    out.push_str(
        "\ncold re-pays O(V) per candidate per edit; warm repairs the edit's dirty\n\
         cone — a handful of nodes however large the graph — so the gap grows\n\
         with V. the winner is bit-identical to a cold tune in every row.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e18.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_keeps_parity_and_warm_wins() {
        let rows = run(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.bit_identical, "{} nodes: winner diverged", r.nodes);
            assert!(r.mean_cone > 0.0, "{} nodes: no cone repaired", r.nodes);
            // Only the serial table candidate invalidates, on the first
            // length change; it never rebuilds because the length never
            // returns.
            assert_eq!(r.rebuilds, 0, "{} nodes", r.nodes);
            // Even the quick sizes clear a comfortable margin under the
            // full run's 3x-at-1k-nodes acceptance bar.
            assert!(
                r.speedup >= 1.5,
                "{} nodes: warm only {:.2}x cold",
                r.nodes,
                r.speedup
            );
        }
        // The gap grows with the graph.
        assert!(
            rows[1].speedup >= rows[0].speedup * 0.8,
            "speedup collapsed with size: {:.2}x then {:.2}x",
            rows[0].speedup,
            rows[1].speedup
        );
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            nodes: 1024,
            candidates: 9,
            edits: 16,
            warm_ms_per_edit: 0.05,
            cold_ms_per_edit: 2.4,
            speedup: 48.0,
            mean_cone: 2.0,
            rebuilds: 0,
            bit_identical: true,
        }];
        let j = to_json(&rows);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"nodes\": 1024"), "{j}");
        assert!(j.contains("\"bit_identical\": true"), "{j}");
    }
}
