//! **E7 — cache-oblivious algorithms on the one-level ideal cache** (§2).
//!
//! "It is easy to add a one level cache to the RAM model … When
//! algorithms developed in this model satisfy a property of being cache
//! oblivious, they will also work effectively on a multilevel cache."
//!
//! We replay naive / blocked / cache-oblivious matmul address streams
//! through the ideal cache across cache sizes. The blocked version is
//! tuned for exactly one Z; the oblivious version adapts to every Z —
//! the transfer property, measured. The last column checks the
//! `Θ(n³/(L·√Z))` miss bound for the oblivious trace.

use fm_kernels::matmul::{trace_matmul_blocked, trace_matmul_naive, trace_matmul_oblivious};
use fm_workspan::IdealCache;

use crate::table;

/// One (variant, cache size) point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Trace variant.
    pub variant: String,
    /// Cache capacity in words.
    pub z_words: usize,
    /// Misses.
    pub misses: u64,
    /// Miss rate.
    pub miss_rate: f64,
    /// misses / (n³/(L·√Z)) — should be Θ(1) for the oblivious trace.
    pub normalized: f64,
}

/// Run matmul traces for several cache sizes. `blocked_tile` is tuned
/// for the middle Z.
pub fn run(n: usize, z_values: &[usize], l_words: usize, blocked_tile: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &z in z_values {
        let bound = (n as f64).powi(3) / (l_words as f64 * (z as f64).sqrt());
        for (name, trace) in [("naive", 0u8), ("blocked", 1), ("oblivious", 2)] {
            let mut cache = IdealCache::new(z, l_words);
            match trace {
                0 => trace_matmul_naive(n, &mut cache),
                1 => trace_matmul_blocked(n, blocked_tile, &mut cache),
                _ => trace_matmul_oblivious(n, 8, &mut cache),
            }
            let s = cache.stats();
            rows.push(Row {
                variant: name.to_string(),
                z_words: z,
                misses: s.misses,
                miss_rate: s.miss_rate(),
                normalized: s.misses as f64 / bound,
            });
        }
    }
    rows
}

/// Render.
pub fn print(n: usize, l: usize, tile: usize, rows: &[Row]) -> String {
    let mut out = format!(
        "E7 — ideal-cache misses: {n}x{n} matmul, L = {l} words, blocked tile = {tile}\n\n"
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                r.z_words.to_string(),
                r.misses.to_string(),
                format!("{:.1}%", r.miss_rate * 100.0),
                format!("{:.2}", r.normalized),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "variant",
            "Z words",
            "misses",
            "miss rate",
            "misses/(n³/L√Z)",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nthe oblivious trace's normalized column stays Θ(1) across Z with no\n\
         retuning — the transfer property the paper invokes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(z: usize) -> (u64, u64, u64) {
        let rows = run(48, &[z], 16, 16);
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().misses;
        (get("naive"), get("blocked"), get("oblivious"))
    }

    #[test]
    fn oblivious_beats_naive_when_problem_exceeds_cache() {
        // The 48x48 working set is 3·48² = 6912 words; test the Z range
        // where the problem does not fit (beyond that everything is a
        // cold miss for every variant).
        for z in [512usize, 2048] {
            let (naive, _, obl) = rows_for(z);
            assert!(obl * 2 < naive, "Z={z}: oblivious {obl} vs naive {naive}");
        }
        // When the problem fits, all variants converge to cold misses.
        let (naive, _, obl) = rows_for(8192);
        assert_eq!(obl, naive);
    }

    #[test]
    fn blocked_wins_only_near_its_tuning_point() {
        // At the tuned Z blocked ≈ oblivious; at a much smaller Z the
        // tuned tile no longer fits and blocked degrades toward naive
        // while oblivious keeps adapting.
        let (_, blocked_small, obl_small) = rows_for(256);
        assert!(
            obl_small < blocked_small,
            "small cache: oblivious {obl_small} !< blocked {blocked_small}"
        );
    }

    #[test]
    fn oblivious_normalized_miss_count_is_bounded() {
        // In the capacity-limited regime the oblivious trace's misses
        // stay within a constant factor of n³/(L·√Z); the constant
        // reflects the base-case size (8 < L = 16 wastes part of each
        // line) — what matters is that it does not grow with Z. The
        // classic bound also assumes a *tall* cache (Z ≫ L²), so the
        // sweep starts at 2L².
        let rows = run(48, &[512, 1024, 2048], 16, 16);
        for r in rows.iter().filter(|r| r.variant == "oblivious") {
            assert!(
                r.normalized < 32.0,
                "Z={}: normalized {}",
                r.z_words,
                r.normalized
            );
        }
    }

    #[test]
    fn misses_monotone_in_cache_size() {
        let rows = run(32, &[256, 1024, 4096], 16, 8);
        for v in ["naive", "blocked", "oblivious"] {
            let series: Vec<u64> = rows
                .iter()
                .filter(|r| r.variant == v)
                .map(|r| r.misses)
                .collect();
            for w in series.windows(2) {
                assert!(w[1] <= w[0], "{v}: {series:?}");
            }
        }
    }
}
