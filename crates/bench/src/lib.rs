#![warn(missing_docs)]

//! # fm-bench — the experiment harness
//!
//! The panel paper has no tables or figures, so the reproduction target
//! is the set of *quantitative claims* in the text (see `DESIGN.md` for
//! the index). Each `eXX_*` module turns one claim into a reproducible
//! experiment: a `run(…)` function that returns structured rows, a
//! `print` that renders the table the paper never drew, and unit tests
//! that assert the claim's *shape* (who wins, by roughly what factor,
//! where the crossover falls).
//!
//! Regenerate any table with its binary, e.g.:
//!
//! ```text
//! cargo run --release -p fm-bench --bin table_e1_ratios
//! cargo run --release -p fm-bench --bin table_e3_editdist
//! …
//! ```
//!
//! Criterion micro-benchmarks for the heavy machinery (elaboration,
//! evaluation, simulation, search, the thread pool, the cache model)
//! live in `benches/`.

pub mod table;

pub mod e01_ratios;
pub mod e03_editdist;
pub mod e04_fft_search;
pub mod e05_inversion;
pub mod e06_workspan;
pub mod e07_cache;
pub mod e08_default_mapper;
pub mod e09_composition;
pub mod e10_bfs;
pub mod e11_comm_events;
pub mod e12_scaling;
pub mod e13_recompute;
pub mod e14_anneal;
pub mod e15_serve;
pub mod e16_fleet;
pub mod e17_stream;
pub mod e18_session;
pub mod e19_wire;
pub mod e20_costmodels;
pub mod e21_churn;
pub mod e22_evalperf;
