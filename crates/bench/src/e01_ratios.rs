//! **E1/E2 — the technology cost ratios** (paper §3).
//!
//! Claims: transporting an add result 1 mm costs 160× the add; across
//! the span of an 800 mm² GPU ≈ 4500×; off-chip ≈ 50,000×; the
//! instruction-processing overhead of an OoO core is 10,000×; fetching
//! two distant operands costs 1,000×+ the add.

use fm_costmodel::{ClaimedRatios, Technology};

use crate::table;

/// One table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Claim id.
    pub id: String,
    /// Abridged claim text.
    pub claim: String,
    /// The paper's number.
    pub claimed: f64,
    /// The model's number.
    pub derived: f64,
    /// Relative error.
    pub rel_err: f64,
}

/// Derive every ratio from the 5 nm model.
pub fn run() -> Vec<Row> {
    let tech = Technology::n5();
    ClaimedRatios::derive(&tech)
        .claims
        .iter()
        .map(|c| Row {
            id: c.id.to_string(),
            claim: c.claim.to_string(),
            claimed: c.claimed,
            derived: c.derived,
            rel_err: c.relative_error(),
        })
        .collect()
}

/// A scaling-trend row: how the 1 mm transport-vs-add ratio moves as
/// compute keeps scaling and wires do not.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Node label.
    pub node: String,
    /// Compute energy relative to 5 nm.
    pub compute_scale: f64,
    /// Wire energy relative to 5 nm.
    pub wire_scale: f64,
    /// Transport-1mm-vs-add ratio at this node.
    pub transport_ratio: f64,
}

/// Synthetic scaling trend: the 5 nm point is the paper's; the later
/// nodes assume compute halves per generation while wire energy/mm
/// improves only ~10% ("wires don't scale").
pub fn run_trend() -> Vec<TrendRow> {
    let n5 = Technology::n5();
    let points = [
        ("5nm (paper)", 1.0, 1.0),
        ("3nm-ish", 0.5, 0.9),
        ("2nm-ish", 0.25, 0.81),
    ];
    points
        .iter()
        .map(|&(node, cs, ws)| {
            let t = n5.scaled(node, cs, ws);
            let ratio = t
                .wire_energy(32, fm_costmodel::Millimeters::new(1.0))
                .ratio(t.add32_energy());
            TrendRow {
                node: node.to_string(),
                compute_scale: cs,
                wire_scale: ws,
                transport_ratio: ratio,
            }
        })
        .collect()
}

/// Render the table plus the derived auxiliary quantities.
pub fn print(rows: &[Row]) -> String {
    let tech = Technology::n5();
    let mut out = String::from("E1/E2 — technology cost ratios, paper vs. 5 nm model\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                table::f(r.claimed),
                table::f(r.derived),
                format!("{:.1}%", r.rel_err * 100.0),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["claim", "paper", "model", "rel err"],
        &table_rows,
    ));
    let d = ClaimedRatios::remote_claim_min_distance(&tech, 2, 32, 1000.0);
    out.push_str(&format!(
        "\nminimum distance for the 1,000x remote-operand claim: {:.2} mm\n",
        d.raw()
    ));
    out.push_str(&format!(
        "clock-relevant constants: add32 = {} / {}, wire = {} fJ/bit-mm, {} ps/mm\n",
        tech.add32_energy(),
        tech.op_latency(fm_costmodel::OpKind::add32()),
        tech.wire_energy_fj_per_bit_mm,
        tech.wire_delay_ps_per_mm
    ));
    out.push_str(
        "\nscaling trend (synthetic beyond 5 nm: compute halves, wires \u{2212}10%/gen):\n\n",
    );
    let trend_rows: Vec<Vec<String>> = run_trend()
        .iter()
        .map(|r| {
            vec![
                r.node.clone(),
                format!("{:.2}", r.compute_scale),
                format!("{:.2}", r.wire_scale),
                format!("{:.0}x", r.transport_ratio),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["node", "compute", "wire", "1mm transport vs add"],
        &trend_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_claims_present() {
        let rows = run();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn every_claim_reproduced_within_paper_rounding() {
        for r in run() {
            if r.id == "remote_operands_10mm" {
                assert!(r.derived >= r.claimed, "{}", r.id);
            } else {
                assert!(r.rel_err <= 0.15, "{}: rel err {}", r.id, r.rel_err);
            }
        }
    }

    #[test]
    fn trend_ratio_grows_every_generation() {
        let rows = run_trend();
        assert_eq!(rows[0].transport_ratio.round(), 160.0);
        for w in rows.windows(2) {
            assert!(w[1].transport_ratio > w[0].transport_ratio);
        }
    }

    #[test]
    fn print_contains_all_ids() {
        let rows = run();
        let s = print(&rows);
        for r in &rows {
            assert!(s.contains(&r.id));
        }
    }
}
