//! **E4 — systematic mapping search over FFT functions** (§3).
//!
//! "For a given problem there may be several functions … For each
//! function there are many possible mappings … One can systematically
//! search the space of possible mappings to optimize a given figure of
//! merit."

use std::path::Path;

use fm_autotune::{Tuner, TuningCache};
use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_core::search::FigureOfMerit;
use fm_kernels::fft::{fft_graph, fft_radix4_graph, FftFamily, FftVariant};
use fm_workspan::ThreadPool;

use crate::table;

/// One evaluated (function, mapping) point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Candidate label (function + placement + P).
    pub label: String,
    /// Cycles.
    pub cycles: i64,
    /// Energy in pJ.
    pub energy_pj: f64,
    /// Energy-delay product (fJ·ps).
    pub edp: f64,
    /// On-chip traffic in bit·mm.
    pub bit_mm: f64,
    /// Which roofline roof binds this mapping: `"compute"`,
    /// `"onchip-bw"`, or `"offchip-bw"`.
    pub bound: String,
    /// On the global time/energy Pareto front?
    pub pareto: bool,
}

/// Search both FFT functions over the placement×P family.
pub fn run(n: usize, p_values: &[u32], machine_p: u32) -> Vec<Row> {
    run_with_cache(n, p_values, machine_p, None)
}

/// [`run`] with an optional persistent tuning cache: a warm run replays
/// every ranked table from the cache with zero candidate re-evaluation
/// (the cache stores the full outcome, not just the winner).
pub fn run_with_cache(
    n: usize,
    p_values: &[u32],
    machine_p: u32,
    cache_dir: Option<&Path>,
) -> Vec<Row> {
    let machine = MachineConfig::linear(machine_p);
    let family = FftFamily {
        n,
        p_values: p_values.to_vec(),
    };
    let mut rows = Vec::new();
    let mut graphs = vec![fft_graph(n, FftVariant::Dit), fft_graph(n, FftVariant::Dif)];
    // "different radix FFT" — a third function when n is a power of 4.
    if n.trailing_zeros().is_multiple_of(2) {
        graphs.push(fft_radix4_graph(n));
    }
    // Candidate evaluation fans out across the pool via the tuner; the
    // assembled outcome is identical to the serial `search()` by the
    // tuner's determinism guarantee.
    let pool = ThreadPool::with_threads(
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2),
    );
    for graph in graphs {
        let cands = family.candidates_for(&graph, &machine);
        let ev = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
        let mut tuner = Tuner::new(&ev, &graph, &machine, FigureOfMerit::Edp).with_pool(&pool);
        if let Some(cache) = cache_dir.and_then(TuningCache::open) {
            tuner = tuner.with_cache(cache);
        }
        let outcome = tuner.tune(&cands).outcome;
        assert_eq!(
            outcome.legal,
            cands.len(),
            "family must be legal by construction"
        );
        let _ = &graph;
        for r in &outcome.results {
            rows.push(Row {
                label: r.label.clone(),
                cycles: r.report.cycles,
                energy_pj: r.report.energy().raw() / 1e3,
                edp: r.report.edp(),
                bit_mm: r.report.ledger.onchip_bit_mm,
                bound: ev.roofline(&r.report).bound,
                pareto: false,
            });
        }
    }
    // Global Pareto marking over (cycles, energy).
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| rows[a].cycles.cmp(&rows[b].cycles));
    let mut best = f64::INFINITY;
    for i in order {
        if rows[i].energy_pj < best {
            best = rows[i].energy_pj;
            rows[i].pareto = true;
        }
    }
    rows.sort_by(|a, b| a.edp.total_cmp(&b.edp));
    rows
}

/// Render.
pub fn print(n: usize, rows: &[Row]) -> String {
    let mut out =
        format!("E4 — mapping search over FFT{n} functions and mappings (ranked by EDP)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.cycles.to_string(),
                table::f(r.energy_pj),
                table::f(r.edp),
                table::f(r.bit_mm),
                r.bound.clone(),
                if r.pareto { "*" } else { "" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "candidate",
            "cycles",
            "energy pJ",
            "EDP",
            "bit·mm",
            "bound",
            "pareto",
        ],
        &table_rows,
    ));
    out.push_str("\n'*' marks the global time/energy Pareto front across both functions.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_covers_full_family() {
        let rows = run(64, &[2, 4, 8], 8);
        // 3 functions (dit, dif, radix4 since 64 = 4³) × 2 placements × 3 P.
        assert_eq!(rows.len(), 3 * 2 * 3);
    }

    #[test]
    fn radix4_included_and_fastest_in_cycles() {
        let rows = run(64, &[8], 8);
        let cycles = |label: &str| {
            rows.iter()
                .find(|r| r.label.contains(label))
                .unwrap()
                .cycles
        };
        assert!(cycles("radix4 Block P=8") < cycles("dit Block P=8"));
    }

    #[test]
    fn dit_dominates_dif_at_equal_p() {
        // DIF pays the explicit gather; at the same P and placement its
        // energy must exceed DIT's.
        let rows = run(64, &[8], 8);
        let energy = |label: &str| {
            rows.iter()
                .find(|r| r.label.contains(label))
                .unwrap()
                .energy_pj
        };
        assert!(energy("dif Block P=8") > energy("dit Block P=8"));
    }

    #[test]
    fn pareto_front_excludes_dif() {
        let rows = run(64, &[2, 4, 8], 8);
        let front: Vec<&Row> = rows.iter().filter(|r| r.pareto).collect();
        assert!(!front.is_empty());
        // DIF pays the gather on top of DIT's movement: always dominated.
        assert!(front.iter().all(|r| !r.label.contains("dif")));
        // Radix-4 owns the fast end of the front (fewest rounds).
        let fastest = front.iter().min_by_key(|r| r.cycles).unwrap();
        assert!(fastest.label.contains("radix4"), "{}", fastest.label);
    }

    #[test]
    fn warm_cache_run_reproduces_cold_tables() {
        let dir = std::env::temp_dir().join(format!("fm-bench-e4-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = run_with_cache(64, &[4, 8], 8, Some(&dir));
        let warm = run_with_cache(64, &[4, 8], 8, Some(&dir));
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.label, w.label);
            assert_eq!(c.cycles, w.cycles);
            assert_eq!(c.energy_pj, w.energy_pj);
            assert_eq!(c.pareto, w.pareto);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn more_processors_fewer_cycles() {
        let rows = run(64, &[2, 8], 8);
        let cycles = |label: &str| {
            rows.iter()
                .find(|r| r.label.contains(label))
                .unwrap()
                .cycles
        };
        assert!(cycles("dit Block P=8") < cycles("dit Block P=2"));
    }
}
