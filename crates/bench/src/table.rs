//! Minimal fixed-width table rendering for the experiment binaries.

/// Render a table: a header row and data rows, each column padded to
/// its widest cell, right-aligned except the first column.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Format a float with engineering-friendly precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["name", "x"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "123".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("123"));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(1234.5), "1234"); // round-half-to-even
        assert!(f(1.0e7).contains('e'));
    }
}
