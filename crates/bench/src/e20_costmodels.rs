//! **E20 — pluggable cost backends: who wins under which model** (§3, §6).
//!
//! The same candidate list, tuned under all three cost backends
//! ([`CostModelKind`]): the analytic N5 default, the roofline
//! observatory (bandwidth-bounded time), and the spatial-computer
//! energy model (free local access, distance-charged off-chip). Each
//! row records one `(kernel, objective, backend)` tune: the winner, its
//! score, and where that winner lands on the machine roofline.
//!
//! The experiment's claim is the **winner-change matrix**: the backend
//! is not a cosmetic reweighting — for at least one kernel/objective
//! the roofline or spatial backend crowns a *different mapping* than
//! the analytic default (the stencil's roofline tie is the canonical
//! case: planned compute volume is placement-blind, so the roofline
//! clock cannot see blocking and falls back to candidate order). And
//! backends must be *deterministic*: the driver binary runs the whole
//! sweep twice and exits non-zero on any bit-level divergence.

use fm_autotune::Tuner;
use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::Mapping;
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_costmodel::CostModelKind;
use fm_kernels::fft::{fft_graph, FftFamily, FftVariant};
use fm_kernels::stencil::{blocked_mapping, stencil_recurrence};
use serde::Serialize;

use crate::table;

/// One `(kernel, objective, backend)` tune.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Kernel name.
    pub kernel: String,
    /// Tuning objective.
    pub fom: String,
    /// Cost backend that scored the search.
    pub model: String,
    /// Winning candidate's label.
    pub winner: String,
    /// Winning score under this backend (lower is better).
    pub score: f64,
    /// Which roof the winner sits under (`compute`, `onchip-bw`,
    /// `offchip-bw`).
    pub bound: String,
    /// Winner's off-chip operational intensity in ops/bit.
    pub intensity_offchip: f64,
    /// Did this backend crown a different mapping than the analytic
    /// default did (same kernel, same objective)?
    pub flipped: bool,
}

/// One kernel's tuning workload.
struct Workload {
    name: String,
    graph: fm_core::dataflow::DataflowGraph,
    machine: MachineConfig,
    candidates: Vec<MappingCandidate>,
}

fn fft_workload(n: usize) -> Workload {
    let machine = MachineConfig::linear(8);
    let graph = fft_graph(n, FftVariant::Dit);
    let family = FftFamily {
        n,
        p_values: vec![1, 2, 4, 8],
    };
    let candidates = family.candidates_for(&graph, &machine);
    Workload {
        name: format!("fft{n}-dit"),
        graph,
        machine,
        candidates,
    }
}

fn stencil_workload(t_steps: usize, n: usize) -> Workload {
    let machine = MachineConfig::linear(8);
    let graph = stencil_recurrence(t_steps, n)
        .elaborate()
        .expect("stencil elaborates");
    // Serial first: when a backend's score ties every blocking (the
    // roofline clock on a compute-bound stencil), the tuner keeps the
    // earliest index and the tie becomes a visible winner flip.
    let mut candidates = vec![MappingCandidate::new("serial", Mapping::serial(&graph))];
    for p in [1i64, 2, 4, 8] {
        candidates.push(MappingCandidate::new(
            format!("blocked P={p}"),
            blocked_mapping(n, p),
        ));
    }
    Workload {
        name: format!("stencil{t_steps}x{n}"),
        graph,
        machine,
        candidates,
    }
}

/// Tune every workload under every backend and objective.
pub fn run(quick: bool) -> Vec<Row> {
    let workloads = if quick {
        vec![fft_workload(32), stencil_workload(4, 16)]
    } else {
        vec![fft_workload(128), stencil_workload(12, 64)]
    };
    let foms = [FigureOfMerit::Time, FigureOfMerit::Edp];
    let mut rows = Vec::new();
    for w in &workloads {
        for fom in foms {
            let mut analytic_winner: Option<String> = None;
            for kind in CostModelKind::ALL {
                let ev = Evaluator::new(&w.graph, &w.machine).with_cost_model(kind);
                let report = Tuner::new(&ev, &w.graph, &w.machine, fom).tune(&w.candidates);
                let best = report
                    .best
                    .expect("every E20 workload has a legal candidate");
                let point = ev.roofline(&best.report);
                if kind == CostModelKind::Analytic {
                    analytic_winner = Some(best.label.clone());
                }
                let flipped = analytic_winner.as_ref().is_some_and(|a| *a != best.label)
                    && kind != CostModelKind::Analytic;
                rows.push(Row {
                    kernel: w.name.clone(),
                    fom: format!("{fom:?}"),
                    model: kind.name().to_string(),
                    winner: best.label.clone(),
                    score: best.score,
                    bound: point.bound,
                    intensity_offchip: point.intensity_offchip,
                    flipped,
                });
            }
        }
    }
    rows
}

/// The winner-change matrix: one line per `(kernel, objective)`,
/// `✱` marking backends that crowned a different mapping than analytic.
pub fn winner_matrix(rows: &[Row]) -> String {
    let mut out = String::from("winner-change matrix (✱ = differs from analytic):\n");
    let mut keys: Vec<(String, String)> = Vec::new();
    for r in rows {
        let k = (r.kernel.clone(), r.fom.clone());
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for (kernel, fom) in keys {
        let mut line = format!("  {kernel:<14} {fom:<5}");
        for r in rows.iter().filter(|r| r.kernel == kernel && r.fom == fom) {
            let mark = if r.flipped { "✱" } else { " " };
            line.push_str(&format!("  {}: {}{}", r.model, r.winner, mark));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out =
        String::from("E20 — cost backends: winners under analytic, roofline, spatial\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.fom.clone(),
                r.model.clone(),
                r.winner.clone(),
                table::f(r.score),
                r.bound.clone(),
                table::f(r.intensity_offchip),
                if r.flipped { "✱" } else { "" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "kernel",
            "objective",
            "backend",
            "winner",
            "score",
            "bound",
            "I_offchip",
            "flip",
        ],
        &table_rows,
    ));
    out.push('\n');
    out.push_str(&winner_matrix(rows));
    out.push_str(
        "\nsame candidates, three charging rules: a flip means the backend\n\
         choice changes which mapping ships, not just its reported cost.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e20.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

/// Bit-level fingerprint of a sweep, for the driver's determinism
/// check: every label and every score bit folds in.
pub fn fingerprint(rows: &[Row]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for r in rows {
        fold(r.kernel.as_bytes());
        fold(r.fom.as_bytes());
        fold(r.model.as_bytes());
        fold(r.winner.as_bytes());
        fold(&r.score.to_bits().to_le_bytes());
        fold(r.bound.as_bytes());
        fold(&r.intensity_offchip.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_a_row_per_kernel_fom_backend() {
        let rows = run(true);
        assert_eq!(rows.len(), 2 * 2 * 3);
        for r in &rows {
            assert!(r.score.is_finite());
            assert!(!r.winner.is_empty());
        }
    }

    #[test]
    fn analytic_rows_never_flip_and_some_backend_does() {
        let rows = run(true);
        assert!(
            rows.iter()
                .filter(|r| r.model == "analytic")
                .all(|r| !r.flipped),
            "analytic is its own baseline"
        );
        assert!(
            rows.iter().any(|r| r.flipped),
            "at least one backend must crown a different winner:\n{}",
            winner_matrix(&rows)
        );
        // The canonical flip: the roofline clock is placement-blind on
        // the compute-bound stencil, so under Time it keeps the first
        // tying candidate (serial) where analytic picks a blocking.
        let stencil_roofline_time = rows
            .iter()
            .find(|r| r.kernel.starts_with("stencil") && r.fom == "Time" && r.model == "roofline")
            .expect("stencil roofline Time row");
        assert!(
            stencil_roofline_time.flipped,
            "roofline must flip the stencil Time winner:\n{}",
            winner_matrix(&rows)
        );
    }

    #[test]
    fn the_sweep_is_deterministic() {
        assert_eq!(fingerprint(&run(true)), fingerprint(&run(true)));
    }
}
