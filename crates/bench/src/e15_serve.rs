//! **E15 — serving throughput and tail latency** (`fm-serve`).
//!
//! The daemon's pitch is that one resident server amortises the tuner
//! pool and cache across many callers *without* melting down under
//! load: bounded admission, explicit `Busy` backpressure, and metrics
//! that stay readable while saturated. This experiment stands up an
//! in-process server on an ephemeral port, drives it with a
//! multi-threaded closed-loop client fleet issuing a mixed
//! Tune/Evaluate workload (retrying on `Busy`), and reports sustained
//! throughput plus client-observed p50/p95/p99 tail latency per
//! endpoint. The server's own `Stats` counters are fetched at the end
//! and must reconcile *exactly* with the client-side counts — nothing
//! lost, nothing double-counted.

use std::time::Instant;

use fm_core::affine::IdxExpr;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::FigureOfMerit;
use fm_core::value::Value;
use fm_serve::client::{Client, ClientError};
use fm_serve::protocol::{EvaluateRequest, TuneRequest, WireCandidate};
use fm_serve::server::{Server, ServerConfig};
use serde::Serialize;

use crate::table;

/// One endpoint's view of the load run: client-side counts and tail
/// latency next to the server's own counters for the same endpoint.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Endpoint name (`tune` / `evaluate` / `all`).
    pub endpoint: String,
    /// Requests completed successfully (client view).
    pub requests: u64,
    /// `Busy` refusals absorbed by retry (client view).
    pub busy_retries: u64,
    /// Completed requests per second over the load phase.
    pub throughput_rps: f64,
    /// Client-observed median latency, milliseconds.
    pub p50_ms: f64,
    /// Client-observed 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// Client-observed 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Client-observed maximum latency, milliseconds.
    pub max_ms: f64,
    /// The server's `received` counter for this endpoint (includes
    /// `Busy` refusals — every send the clients made).
    pub server_received: u64,
    /// The server's `completed` counter for this endpoint.
    pub server_completed: u64,
}

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("e15-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

/// Legal fold-onto-`w`-PEs candidates (place `i mod w`, time `i div w`).
fn candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ThreadOutcome {
    tune_lat_ms: Vec<f64>,
    eval_lat_ms: Vec<f64>,
    busy_tune: u64,
    busy_eval: u64,
}

/// Drive the server and measure. `quick` shrinks the fleet and the
/// per-thread request count, not the workload shape.
pub fn run(quick: bool) -> Vec<Row> {
    let threads = if quick { 2 } else { 6 };
    let per_thread = if quick { 24 } else { 200 };

    let graph = wide(24);
    let machine = MachineConfig::linear(8);
    let handle = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = handle.local_addr();

    let t0 = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|_| {
            let graph = graph.clone();
            let machine = machine.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let resolved = Mapping::serial(&graph).resolve(&graph, &machine).unwrap();
                let mut out = ThreadOutcome {
                    tune_lat_ms: Vec::new(),
                    eval_lat_ms: Vec::new(),
                    busy_tune: 0,
                    busy_eval: 0,
                };
                // 1 tune per 3 evaluates: tunes are the heavy tail,
                // evaluates the high-rate floor — a serving mix, not a
                // batch queue.
                for i in 0..per_thread {
                    let is_tune = i % 4 == 0;
                    loop {
                        let t = Instant::now();
                        let result: Result<(), ClientError> = if is_tune {
                            client
                                .tune(TuneRequest {
                                    graph: graph.clone(),
                                    machine: machine.clone(),
                                    fom: FigureOfMerit::Time,
                                    candidates: candidates(24, machine.cols),
                                    deadline_ms: None,
                                    max_candidates: None,
                                    convergence_window: None,
                                    refinement: None,
                                    use_cache: false,
                                    cost_model: None,
                                })
                                .map(|r| assert!(r.best.is_some()))
                        } else {
                            client
                                .evaluate(EvaluateRequest {
                                    graph: graph.clone(),
                                    machine: machine.clone(),
                                    mapping: resolved.clone(),
                                    deadline_ms: None,
                                })
                                .map(|r| assert!(r.legal))
                        };
                        let ms = t.elapsed().as_secs_f64() * 1e3;
                        match result {
                            Ok(()) => {
                                if is_tune {
                                    out.tune_lat_ms.push(ms);
                                } else {
                                    out.eval_lat_ms.push(ms);
                                }
                                break;
                            }
                            Err(e) if e.is_busy() => {
                                if is_tune {
                                    out.busy_tune += 1;
                                } else {
                                    out.busy_eval += 1;
                                }
                                std::thread::sleep(std::time::Duration::from_millis(2));
                            }
                            Err(other) => panic!("E15 client failed: {other}"),
                        }
                    }
                }
                out
            })
        })
        .collect();

    let mut tune_lat: Vec<f64> = Vec::new();
    let mut eval_lat: Vec<f64> = Vec::new();
    let (mut busy_tune, mut busy_eval) = (0u64, 0u64);
    for j in joins {
        let o = j.join().expect("client thread");
        tune_lat.extend(o.tune_lat_ms);
        eval_lat.extend(o.eval_lat_ms);
        busy_tune += o.busy_tune;
        busy_eval += o.busy_eval;
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    let stats = handle.shutdown_and_join();

    tune_lat.sort_by(|a, b| a.total_cmp(b));
    eval_lat.sort_by(|a, b| a.total_cmp(b));
    let row = |endpoint: &str, lat: &[f64], busy: u64, received: u64, completed: u64| Row {
        endpoint: endpoint.to_string(),
        requests: lat.len() as u64,
        busy_retries: busy,
        throughput_rps: lat.len() as f64 / wall,
        p50_ms: quantile_ms(lat, 0.50),
        p95_ms: quantile_ms(lat, 0.95),
        p99_ms: quantile_ms(lat, 0.99),
        max_ms: lat.last().copied().unwrap_or(0.0),
        server_received: received,
        server_completed: completed,
    };
    let mut all = [tune_lat.as_slice(), eval_lat.as_slice()].concat();
    all.sort_by(|a, b| a.total_cmp(b));
    vec![
        row(
            "tune",
            &tune_lat,
            busy_tune,
            stats.tune.received,
            stats.tune.completed,
        ),
        row(
            "evaluate",
            &eval_lat,
            busy_eval,
            stats.evaluate.received,
            stats.evaluate.completed,
        ),
        row(
            "all",
            &all,
            busy_tune + busy_eval,
            stats.tune.received + stats.evaluate.received,
            stats.tune.completed + stats.evaluate.completed,
        ),
    ]
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out =
        String::from("E15 — fm-serve throughput and tail latency (mixed closed-loop load)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.endpoint.clone(),
                r.requests.to_string(),
                r.busy_retries.to_string(),
                table::f(r.throughput_rps),
                table::f(r.p50_ms),
                table::f(r.p95_ms),
                table::f(r.p99_ms),
                table::f(r.max_ms),
                r.server_received.to_string(),
                r.server_completed.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "endpoint", "ok", "busy", "req/s", "p50 ms", "p95 ms", "p99 ms", "max ms", "srv recv",
            "srv done",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nserver counters reconcile with the client fleet exactly:\n\
         recv = ok + busy (every send accounted), done = ok (nothing lost).\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e15.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_run_reconciles_with_server_stats() {
        let rows = run(true);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // Exact reconciliation, the experiment's headline claim.
            assert_eq!(
                r.server_completed, r.requests,
                "{}: served != succeeded",
                r.endpoint
            );
            assert_eq!(
                r.server_received,
                r.requests + r.busy_retries,
                "{}: received != sends",
                r.endpoint
            );
            assert!(r.requests > 0, "{}: no traffic", r.endpoint);
            assert!(r.throughput_rps > 0.0);
            // Quantiles are monotone by construction.
            assert!(r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms && r.p99_ms <= r.max_ms);
        }
        // The mix is 1 tune : 3 evaluates.
        assert!(rows[1].requests >= rows[0].requests);
    }

    #[test]
    fn quantile_picks_sorted_ranks() {
        let lat = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_ms(&lat, 0.50), 2.0);
        assert_eq!(quantile_ms(&lat, 0.99), 4.0);
        assert_eq!(quantile_ms(&lat, 1.0), 4.0);
        assert_eq!(quantile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            endpoint: "tune".into(),
            requests: 10,
            busy_retries: 2,
            throughput_rps: 100.0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            max_ms: 4.0,
            server_received: 12,
            server_completed: 10,
        }];
        let j = to_json(&rows);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"endpoint\": \"tune\""), "{j}");
        assert!(j.contains("\"server_received\": 12"), "{j}");
    }
}
