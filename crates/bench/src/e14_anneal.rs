//! **E14 — anneal throughput: full vs incremental evaluation** (§3).
//!
//! The annealer proposes single-node placement moves; re-timing and
//! re-costing the whole graph per move is O(V + E) while the touched
//! cone is O(Δ). This experiment times both backends of
//! [`anneal_with`] on ≥1k-node graphs with the same seed and asserts
//! the (mapping, report) pair is bit-identical, so the speedup column
//! measures pure engine overhead, not a different search.

use std::time::Instant;

use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_core::search::{anneal_with, default_mapper, AnnealBackend, FigureOfMerit};
use fm_kernels::editdist::{edit_recurrence, Scoring};
use fm_kernels::fft::{fft_graph, FftVariant};
use serde::Serialize;

use crate::table;

/// One (graph, backend pair) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Graph name.
    pub graph: String,
    /// Node count.
    pub nodes: usize,
    /// Annealing iterations timed.
    pub iters: u32,
    /// Full-re-evaluation throughput in proposed moves per second.
    pub full_moves_per_sec: f64,
    /// Incremental (delta-engine) throughput in moves per second.
    pub inc_moves_per_sec: f64,
    /// `inc_moves_per_sec / full_moves_per_sec`.
    pub speedup: f64,
    /// Final score (same for both backends by construction).
    pub final_score: f64,
    /// Final makespan in cycles.
    pub cycles: i64,
}

fn measure(name: &str, graph: &fm_core::dataflow::DataflowGraph, iters: u32, seed: u64) -> Row {
    let machine = MachineConfig::n5(8, 8);
    let ev = Evaluator::new(graph, &machine).with_all_inputs(InputPlacement::AtUse);
    let init = default_mapper(graph, &machine);
    let fom = FigureOfMerit::Edp;

    let t0 = Instant::now();
    let (full_rm, full_rep) = anneal_with(
        &ev,
        graph,
        &machine,
        &init,
        fom,
        iters,
        seed,
        AnnealBackend::Full,
    );
    let full_wall = t0.elapsed().as_secs_f64().max(1e-9);

    let t1 = Instant::now();
    let (inc_rm, inc_rep) = anneal_with(
        &ev,
        graph,
        &machine,
        &init,
        fom,
        iters,
        seed,
        AnnealBackend::Incremental,
    );
    let inc_wall = t1.elapsed().as_secs_f64().max(1e-9);

    // The whole point: same search, cheaper bookkeeping.
    assert_eq!(full_rm, inc_rm, "{name}: backends diverged in mapping");
    assert_eq!(full_rep, inc_rep, "{name}: backends diverged in report");

    let full_mps = f64::from(iters) / full_wall;
    let inc_mps = f64::from(iters) / inc_wall;
    Row {
        graph: name.to_string(),
        nodes: graph.nodes.len(),
        iters,
        full_moves_per_sec: full_mps,
        inc_moves_per_sec: inc_mps,
        speedup: inc_mps / full_mps,
        final_score: fom.score(&inc_rep),
        cycles: inc_rep.cycles,
    }
}

/// Time both backends on an edit-distance DP and an FFT dataflow
/// graph, both past the 1 000-node mark (`quick` shrinks the iteration
/// count, not the graphs — the parity assertion must still see real
/// problem sizes).
pub fn run(quick: bool) -> Vec<Row> {
    let iters = if quick { 200 } else { 2_000 };
    let ed = edit_recurrence(32, 32, Scoring::paper_local())
        .elaborate()
        .expect("well-founded");
    let fft = fft_graph(256, FftVariant::Dit);
    assert!(ed.nodes.len() >= 1_000, "editdist too small to be E14");
    assert!(fft.nodes.len() >= 1_000, "fft too small to be E14");
    vec![
        measure("editdist32x32", &ed, iters, 41),
        measure("fft256-dit", &fft, iters, 42),
    ]
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from("E14 — anneal throughput, full vs incremental evaluation\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.graph.clone(),
                r.nodes.to_string(),
                r.iters.to_string(),
                table::f(r.full_moves_per_sec),
                table::f(r.inc_moves_per_sec),
                format!("{:.1}x", r.speedup),
                table::f(r.final_score),
                r.cycles.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "graph",
            "nodes",
            "iters",
            "full moves/s",
            "incr moves/s",
            "speedup",
            "final score",
            "cycles",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nboth backends run the identical RNG stream and finish on the same\n\
         (mapping, report) pair — asserted, not assumed.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e14.json`), the seed of the
/// perf-trajectory record.
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests here time wall-clock throughput; letting the harness
    /// run them concurrently on a small machine distorts the ratios.
    static TIMING: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn backends_agree_on_both_graphs() {
        let _serial = TIMING.lock().unwrap();
        // `measure` asserts (mapping, report) equality internally; a
        // quick run exercising both graphs is the test.
        let rows = run(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.nodes >= 1_000, "{}: {} nodes", r.graph, r.nodes);
            assert!(r.final_score.is_finite());
        }
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            graph: "g".into(),
            nodes: 1024,
            iters: 10,
            full_moves_per_sec: 1.0,
            inc_moves_per_sec: 8.0,
            speedup: 8.0,
            final_score: 3.5,
            cycles: 99,
        }];
        let j = to_json(&rows);
        // Parses back as well-formed JSON, with the fields intact.
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"nodes\": 1024"), "{j}");
        assert!(j.contains("\"speedup\": 8.0"), "{j}");
    }

    // The acceptance criterion: ≥5× on the 1k-node graphs. Only
    // meaningful in release builds — under debug-assertions the
    // incremental engine re-verifies full parity after every move,
    // which is deliberately *slower* than the full backend. Uses the
    // full iteration count: at --quick sizes the fixed per-run setup
    // is not yet amortized and the ratio is noisy. Best-of-3 because
    // a loaded host can still starve one timing window.
    #[cfg(not(debug_assertions))]
    #[test]
    fn incremental_at_least_5x_faster_in_release() {
        let _serial = TIMING.lock().unwrap();
        let mut worst_by_attempt = Vec::new();
        for _ in 0..3 {
            let rows = run(false);
            let worst = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
            if worst >= 5.0 {
                return;
            }
            worst_by_attempt.push(worst);
        }
        panic!("incremental never reached 5x; worst speedup per attempt: {worst_by_attempt:?}");
    }
}
