//! **E12 — many-core scaling** (§5).
//!
//! Vishkin: "many-core computing can offer improvement by 4-5 orders of
//! magnitude over single cores." The improvement compounds two factors
//! this workspace can measure:
//!
//! 1. **parallel speedup** — mapped makespan vs. the serial mapping,
//!    swept over grid sizes (bounded by the function's parallelism);
//! 2. **energy efficiency** — mapped spatial execution vs. a
//!    conventional OoO core's 10,000× instruction overhead (§3).
//!
//! Their product is the headline "orders of magnitude" figure.

use fm_core::cost::{conventional_core_report, Evaluator};
use fm_core::legality::check;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_kernels::editdist::{edit_recurrence, skewed_mapping, Scoring};
use fm_kernels::stencil::{blocked_mapping, stencil_recurrence};

use crate::table;

/// One grid size.
#[derive(Debug, Clone)]
pub struct Row {
    /// PEs.
    pub p: i64,
    /// Mapped cycles.
    pub cycles: i64,
    /// Speedup vs P = 1.
    pub speedup: f64,
    /// Mapped energy (pJ).
    pub energy_pj: f64,
    /// Energy advantage vs the conventional core.
    pub efficiency_x: f64,
    /// Combined improvement (speedup × efficiency), log10.
    pub combined_log10: f64,
}

/// Sweep grid sizes for the stencil (a second kernel with a different
/// communication pattern; same columns as [`run`]).
pub fn run_stencil(t_steps: usize, n: usize, p_values: &[i64]) -> Vec<Row> {
    let rec = stencil_recurrence(t_steps, n);
    let g = rec.elaborate().unwrap();
    let conv = conventional_core_report(&g, &MachineConfig::linear(1));
    let conv_energy = conv.energy().raw();

    let mut rows = Vec::new();
    let mut base: Option<i64> = None;
    for &p in p_values {
        let machine = MachineConfig::linear(p as u32);
        let rm = blocked_mapping(n, p).resolve(&g, &machine).unwrap();
        assert!(check(&g, &rm, &machine).is_legal());
        let rep = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        let base_cycles = *base.get_or_insert(rep.cycles);
        let speedup = base_cycles as f64 / rep.cycles as f64;
        let efficiency = conv_energy / rep.energy().raw();
        rows.push(Row {
            p,
            cycles: rep.cycles,
            speedup,
            energy_pj: rep.energy().raw() / 1e3,
            efficiency_x: efficiency,
            combined_log10: (speedup * efficiency).log10(),
        });
    }
    rows
}

/// Sweep grid sizes on an `n×n` edit distance.
pub fn run(n: usize, p_values: &[i64]) -> Vec<Row> {
    let rec = edit_recurrence(n, n, Scoring::paper_local());
    let g = rec.elaborate().unwrap();
    let conv = conventional_core_report(&g, &MachineConfig::linear(1));
    let conv_energy = conv.energy().raw();

    let mut rows = Vec::new();
    let mut base: Option<i64> = None;
    for &p in p_values {
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, n).resolve(&g, &machine).unwrap();
        assert!(check(&g, &rm, &machine).is_legal());
        let rep = Evaluator::new(&g, &machine)
            .with_all_inputs(InputPlacement::AtUse)
            .evaluate(&rm);
        let base_cycles = *base.get_or_insert(rep.cycles);
        let speedup = base_cycles as f64 / rep.cycles as f64;
        let efficiency = conv_energy / rep.energy().raw();
        rows.push(Row {
            p,
            cycles: rep.cycles,
            speedup,
            energy_pj: rep.energy().raw() / 1e3,
            efficiency_x: efficiency,
            combined_log10: (speedup * efficiency).log10(),
        });
    }
    rows
}

/// Render.
pub fn print(n: usize, rows: &[Row]) -> String {
    let mut out = format!(
        "E12 — many-core scaling, {n}x{n} edit distance (speedup x efficiency vs one OoO core)\n\n"
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.p.to_string(),
                r.cycles.to_string(),
                format!("{:.1}x", r.speedup),
                table::f(r.energy_pj),
                format!("{:.0}x", r.efficiency_x),
                format!("{:.1}", r.combined_log10),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "P",
            "cycles",
            "speedup",
            "energy pJ",
            "efficiency",
            "log10(combined)",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nthe paper's '4-5 orders of magnitude' is the product of parallel\n\
         speedup (bounded by the function's parallelism) and the spatial\n\
         energy advantage over a conventional core.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_series_scales_too() {
        let rows = run_stencil(16, 128, &[1, 4, 16, 64]);
        for w in rows.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
        }
        // Near-perfect scaling: the stencil has no wavefront ramp.
        assert!(rows.last().unwrap().speedup > 40.0);
    }

    #[test]
    fn speedup_scales_to_the_functions_parallelism() {
        let rows = run(64, &[1, 4, 16, 64]);
        // Near-linear early.
        assert!(rows[1].speedup > 3.0);
        // Monotone throughout.
        for w in rows.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
        }
    }

    #[test]
    fn combined_improvement_reaches_4_orders() {
        let rows = run(64, &[1, 64]);
        let last = rows.last().unwrap();
        assert!(
            last.combined_log10 >= 4.0,
            "combined improvement only 10^{:.1}",
            last.combined_log10
        );
    }

    #[test]
    fn efficiency_advantage_is_orders_of_magnitude_even_serial() {
        let rows = run(48, &[1]);
        assert!(rows[0].efficiency_x > 100.0);
    }
}
