//! **E3 — the paper's edit-distance mapping, swept over P** (§3).
//!
//! The paper's one worked example: the DP recurrence mapped onto an
//! array of P processors "as marching anti-diagonals". We sweep P with
//! the corrected skew, validating each point on the cycle-driven
//! simulator, and record the literal mapping's legality verdict.

use fm_core::cost::Evaluator;
use fm_core::legality;
use fm_core::machine::MachineConfig;
use fm_grid::Simulator;
use fm_kernels::editdist::{
    edit_inputs, edit_recurrence, paper_input_placements, paper_literal_mapping, skewed_mapping,
    Scoring,
};
use fm_kernels::util::{random_sequence, DNA};

use crate::table;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Processor count.
    pub p: i64,
    /// Whether the paper's literal time expression is legal at this P.
    pub literal_legal: bool,
    /// Skewed-mapping makespan in cycles.
    pub cycles: i64,
    /// Speedup over P = 1.
    pub speedup: f64,
    /// PE utilization.
    pub utilization: f64,
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// Fraction of energy spent on communication.
    pub comm_fraction: f64,
    /// Simulator cycles (must equal `cycles` — the schedule is
    /// contention-free); `None` for points too large to simulate.
    pub simulated_cycles: Option<i64>,
}

/// Sweep the mapping family for an `n×n` problem.
pub fn run(n: usize, p_values: &[i64], simulate_up_to_p: i64) -> Vec<Row> {
    let rec = edit_recurrence(n, n, Scoring::paper_local());
    let graph = rec.elaborate().expect("well-founded");
    let r = random_sequence(n, DNA, 101);
    let q = random_sequence(n, DNA, 102);

    let mut rows = Vec::new();
    let mut base: Option<i64> = None;
    for &p in p_values {
        let machine = MachineConfig::linear(p as u32);
        let literal_rm = paper_literal_mapping(p, n)
            .resolve(&graph, &machine)
            .unwrap();
        let literal_legal = legality::check(&graph, &literal_rm, &machine).is_legal();

        let rm = skewed_mapping(p, n).resolve(&graph, &machine).unwrap();
        assert!(legality::check(&graph, &rm, &machine).is_legal());
        let mut ev = Evaluator::new(&graph, &machine);
        for (i, pl) in paper_input_placements(p).into_iter().enumerate() {
            ev = ev.with_input_placement(i, pl);
        }
        let rep = ev.evaluate(&rm);
        let base_cycles = *base.get_or_insert(rep.cycles);

        let simulated_cycles = if p <= simulate_up_to_p {
            let sim = Simulator::new(machine);
            let res = sim
                .run(
                    &graph,
                    &rm,
                    &edit_inputs(&r, &q),
                    &paper_input_placements(p),
                )
                .expect("legal mapping simulates");
            Some(res.cycles_actual)
        } else {
            None
        };

        rows.push(Row {
            p,
            literal_legal,
            cycles: rep.cycles,
            speedup: base_cycles as f64 / rep.cycles as f64,
            utilization: rep.utilization,
            energy_pj: rep.energy().raw() / 1e3,
            comm_fraction: rep.ledger.energy.communication_fraction(),
            simulated_cycles,
        });
    }
    rows
}

/// Render.
pub fn print(n: usize, rows: &[Row]) -> String {
    let mut out =
        format!("E3 — anti-diagonal edit-distance mapping sweep ({n}x{n}, corrected skew)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.p.to_string(),
                if r.literal_legal { "legal" } else { "ILLEGAL" }.to_string(),
                r.cycles.to_string(),
                format!("{:.2}x", r.speedup),
                format!("{:.1}%", r.utilization * 100.0),
                table::f(r.energy_pj),
                format!("{:.1}%", r.comm_fraction * 100.0),
                r.simulated_cycles
                    .map_or("-".to_string(), |c| c.to_string()),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "P",
            "paper literal",
            "cycles",
            "speedup",
            "util",
            "energy pJ",
            "comm",
            "sim cycles",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nthe literal mapping 'time = floor(i/P)*N + j' is causal only at P=1;\n\
         the sweep uses the corrected skew 'floor(i/P)*(N+P) + i%P + j'.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_matches_the_papers_story() {
        let rows = run(32, &[1, 2, 4, 8, 16], 8);
        // Literal mapping legal only at P=1.
        assert!(rows[0].literal_legal);
        assert!(rows[1..].iter().all(|r| !r.literal_legal));
        // Speedup monotone, near-linear at small P.
        for w in rows.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
        }
        assert!(rows[1].speedup > 1.8);
        // Simulator confirms the schedule wherever it ran.
        for r in &rows {
            if let Some(sim) = r.simulated_cycles {
                assert_eq!(sim, r.cycles, "P={}", r.p);
            }
        }
    }

    #[test]
    fn communication_fraction_dominates_beyond_p1() {
        let rows = run(32, &[1, 4], 0);
        assert_eq!(rows[0].comm_fraction, 0.0);
        assert!(rows[1].comm_fraction > 0.9);
    }
}
