//! **E13 (ablation) — recompute vs. communicate** (§3).
//!
//! "A mapping may compute the same element at multiple points in time
//! and/or space — rather than storing it or communicating it between
//! those points."
//!
//! We sweep a broadcast workload — one producer feeding `k` consumers
//! on distinct PEs — over the producer's expression cost, comparing the
//! communicate mapping (one message per remote PE) against the
//! recompute transform (one replica per remote PE, zero messages). The
//! crossover locates where the paper's option pays.

use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::legality::check;
use fm_core::machine::MachineConfig;
use fm_core::mapping::{InputPlacement, ResolvedMapping};
use fm_core::transform::recompute_at_consumers;
use fm_core::value::Value;

use crate::table;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Ops in the producer expression.
    pub expr_ops: usize,
    /// Consumers (each on its own PE).
    pub consumers: usize,
    /// Unicast-communicate energy (pJ).
    pub communicate_pj: f64,
    /// Multicast-communicate energy (pJ): one tree, shared prefixes.
    pub multicast_pj: f64,
    /// Recompute-mapping energy (pJ).
    pub recompute_pj: f64,
    /// Which strategy wins on energy.
    pub winner: &'static str,
}

fn broadcast(k: usize, expr_ops: usize) -> (DataflowGraph, ResolvedMapping) {
    let mut g = DataflowGraph::new("broadcast", 32);
    let x = g.add_input("X", vec![1]);
    // `expr_ops` additions arranged as a balanced tree (a chain this
    // long would overflow the stack in recursive walks).
    let mut terms: Vec<CExpr> = Vec::with_capacity(expr_ops + 1);
    terms.push(CExpr::input(x, 0));
    for _ in 0..expr_ops {
        terms.push(CExpr::konst(Value::real(1.0)));
    }
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a.add(b)),
                None => next.push(a),
            }
        }
        terms = next;
    }
    let e = terms.pop().expect("nonempty");
    let src = g.add_node(e, vec![], vec![0]);
    let mut place = vec![(0i64, 0i64)];
    let mut time = vec![0i64];
    for i in 0..k {
        let id = g.add_node(
            CExpr::dep(0).mul(CExpr::konst(Value::real(2.0))),
            vec![src],
            vec![i as i64 + 1],
        );
        g.mark_output(id);
        place.push((i as i64 + 1, 0));
        time.push(1 + i as i64 + 1);
    }
    (g, ResolvedMapping { place, time })
}

/// Sweep expression cost for a fixed consumer fan-out on a `pes`-wide
/// linear machine.
pub fn run(consumers: usize, expr_ops_sweep: &[usize], pes: u32) -> Vec<Row> {
    let machine = MachineConfig::linear(pes);
    expr_ops_sweep
        .iter()
        .map(|&ops| {
            let (g, rm) = broadcast(consumers, ops);
            assert!(check(&g, &rm, &machine).is_legal());
            let comm = Evaluator::new(&g, &machine)
                .with_all_inputs(InputPlacement::AtUse)
                .evaluate(&rm)
                .energy()
                .raw();
            let multi = Evaluator::new(&g, &machine)
                .with_all_inputs(InputPlacement::AtUse)
                .with_multicast(true)
                .evaluate(&rm)
                .energy()
                .raw();
            let (g2, rm2, _) = recompute_at_consumers(&g, &rm, &[0]);
            assert!(check(&g2, &rm2, &machine).is_legal());
            let rec = Evaluator::new(&g2, &machine)
                .with_all_inputs(InputPlacement::AtUse)
                .evaluate(&rm2)
                .energy()
                .raw();
            let winner = if rec < comm.min(multi) {
                "recompute"
            } else if multi < comm {
                "multicast"
            } else {
                "communicate"
            };
            Row {
                expr_ops: ops,
                consumers,
                communicate_pj: comm / 1e3,
                multicast_pj: multi / 1e3,
                recompute_pj: rec / 1e3,
                winner,
            }
        })
        .collect()
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out =
        String::from("E13 (ablation) — recompute vs communicate: broadcast to k consumers\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.expr_ops.to_string(),
                r.consumers.to_string(),
                table::f(r.communicate_pj),
                table::f(r.multicast_pj),
                table::f(r.recompute_pj),
                r.winner.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "producer ops",
            "consumers",
            "unicast pJ",
            "multicast pJ",
            "recompute pJ",
            "winner",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nat 5 nm a 32-bit message over even one ~3.5 mm hop costs ~9 pJ while an\n\
         add-op costs 16 fJ: recomputation stays ahead until the producer\n\
         expression reaches hundreds of ops per hop of distance saved.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_exists_and_is_monotone() {
        let rows = run(6, &[1, 10, 100, 1000, 20_000], 8);
        assert_eq!(rows[0].winner, "recompute");
        assert_eq!(rows.last().unwrap().winner, "multicast");
        // Once communication wins it keeps winning (recompute's
        // disadvantage is monotone in expression cost).
        let first_comm = rows.iter().position(|r| r.winner != "recompute").unwrap();
        assert!(rows[first_comm..].iter().all(|r| r.winner != "recompute"));
    }

    #[test]
    fn multicast_beats_unicast_on_a_line_broadcast() {
        // Consumers strung down a line share all path prefixes.
        let rows = run(6, &[1], 8);
        assert!(rows[0].multicast_pj < rows[0].communicate_pj / 2.0);
    }

    #[test]
    fn recompute_energy_grows_with_ops_faster() {
        let rows = run(4, &[1, 1000], 8);
        let d_comm = rows[1].communicate_pj - rows[0].communicate_pj;
        let d_rec = rows[1].recompute_pj - rows[0].recompute_pj;
        // The recompute variant pays the expression (k+1)× per op added.
        assert!(d_rec > 3.0 * d_comm);
    }
}
