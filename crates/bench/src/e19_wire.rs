//! **E19 — wire transport and dedup-batched admission** (`fm-serve`).
//!
//! Two claims from the binary-protocol work, measured end to end:
//!
//! 1. **Transport** (part A): for small requests the old
//!    one-JSON-frame-per-round-trip loop is dominated by encode cost
//!    and socket latency, not by the server's actual work. A request
//!    sweep drives the same Evaluate/Simulate bodies through both
//!    arms — sequential blocking JSON vs. negotiated binary frames
//!    with a window of requests in flight — and reports effective
//!    per-request p50 (median inter-completion gap for the pipelined
//!    arm, cross-checked against wall/M).
//! 2. **Dedup** (part B): a duplicate-heavy trace (K identical Tunes
//!    queued behind a filler) collapses into one search under
//!    `dedup_tunes` — the server's books say how many searches really
//!    ran — and every one of the four arms (JSON/binary ×
//!    dedup-on/off) hands back the **bit-identical** winner, asserted
//!    here, not eyeballed.

use std::time::Instant;

use fm_autotune::TunedMapping;
use fm_core::affine::IdxExpr;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::FigureOfMerit;
use fm_core::value::Value;
use fm_serve::client::Client;
use fm_serve::protocol::{
    EvaluateRequest, Request, Response, SimulateRequest, TuneRequest, WireCandidate,
};
use fm_serve::server::{Server, ServerConfig};
use serde::Serialize;

use crate::table;

/// One (endpoint, size) point of the transport sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Endpoint driven (`evaluate` / `simulate`).
    pub endpoint: String,
    /// Graph nodes in the request body (request-size proxy).
    pub nodes: usize,
    /// Requests completed per arm.
    pub requests: usize,
    /// Blocking JSON arm: median per-request latency, ms.
    pub json_p50_ms: f64,
    /// Blocking JSON arm: mean per-request latency, ms.
    pub json_mean_ms: f64,
    /// Pipelined binary arm: median inter-completion gap, ms.
    pub binary_p50_ms: f64,
    /// Pipelined binary arm: wall / M, ms (cross-check on the gaps).
    pub binary_mean_ms: f64,
    /// `json_p50_ms / binary_p50_ms`.
    pub speedup_p50: f64,
    /// `json_mean_ms / binary_mean_ms`.
    pub speedup_mean: f64,
}

/// One arm of the duplicate-heavy trace.
#[derive(Debug, Clone, Serialize)]
pub struct DedupRow {
    /// `json` (one connection per duplicate) or `binary` (one
    /// pipelined connection).
    pub transport: String,
    /// Whether `dedup_tunes` was on for this arm.
    pub dedup: bool,
    /// Identical Tune requests issued.
    pub dupes: u64,
    /// Searches the server actually executed for them
    /// (`completed - waiters_served`, excluding the filler).
    pub searches_executed: u64,
    /// Requests answered from another request's search.
    pub waiters_served: u64,
    /// Dedup batches the server formed.
    pub dedup_batches: u64,
    /// Wall time to answer all duplicates, ms.
    pub wall_ms: f64,
    /// Winning candidate label (identical across every arm).
    pub winner: String,
}

/// Both parts, serialized together as `BENCH_e19.json`.
#[derive(Debug, Clone, Serialize)]
pub struct Results {
    /// Part A: transport sweep.
    pub sweep: Vec<SweepRow>,
    /// Part B: duplicate-heavy trace.
    pub dedup: Vec<DedupRow>,
}

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("e19-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

fn candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn tune_request(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TuneRequest {
    TuneRequest {
        graph: graph.clone(),
        machine: machine.clone(),
        fom: FigureOfMerit::Time,
        candidates: candidates(ncand, machine.cols),
        deadline_ms: None,
        max_candidates: None,
        convergence_window: None,
        refinement: None,
        use_cache: false,
        cost_model: None,
    }
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sequential blocking arm: one JSON round trip per request, the old
/// client's exact behavior. Returns per-request latencies in ms.
fn json_arm(addr: std::net::SocketAddr, request: &Request, m: usize) -> Vec<f64> {
    let mut client = Client::connect_json(addr).expect("connect_json");
    assert!(!client.is_binary() && !client.is_pipelined());
    let mut lat = Vec::with_capacity(m);
    for _ in 0..m {
        let t = Instant::now();
        let corr = client.send_request(request).expect("send");
        let (rcorr, resp) = client.recv_response().expect("recv");
        assert_eq!(corr, rcorr);
        check_work_reply(&resp);
        lat.push(t.elapsed().as_secs_f64() * 1e3);
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    lat
}

/// Pipelined binary arm: keep `window` requests in flight on one
/// negotiated connection. Returns (sorted inter-completion gaps in ms,
/// wall-clock mean per request in ms).
fn binary_arm(
    addr: std::net::SocketAddr,
    request: &Request,
    m: usize,
    window: usize,
) -> (Vec<f64>, f64) {
    let mut client = Client::connect(addr).expect("connect");
    assert!(
        client.is_binary() && client.is_pipelined(),
        "E19 needs a negotiated binary pipelined connection"
    );
    let mut sent = 0usize;
    let mut done = 0usize;
    let t0 = Instant::now();
    let mut stamps = Vec::with_capacity(m);
    while sent < window.min(m) {
        client.send_request(request).expect("send");
        sent += 1;
    }
    while done < m {
        let (_corr, resp) = client.recv_response().expect("recv");
        check_work_reply(&resp);
        stamps.push(t0.elapsed().as_secs_f64() * 1e3);
        done += 1;
        if sent < m {
            client.send_request(request).expect("send");
            sent += 1;
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut gaps: Vec<f64> = stamps
        .iter()
        .zip(std::iter::once(&0.0).chain(stamps.iter()))
        .map(|(now, prev)| now - prev)
        .collect();
    gaps.sort_by(|a, b| a.total_cmp(b));
    (gaps, wall_ms / m as f64)
}

fn check_work_reply(resp: &Response) {
    match resp {
        Response::Evaluated(r) => assert!(r.legal),
        Response::Simulated(_) | Response::Tuned(_) => {}
        Response::Busy(_) => panic!("E19 window exceeded the admission queue"),
        other => panic!("unexpected reply {}", other.kind()),
    }
}

fn sweep_point(
    addr: std::net::SocketAddr,
    endpoint: &str,
    nodes: usize,
    m: usize,
    window: usize,
) -> SweepRow {
    let graph = wide(nodes);
    let machine = MachineConfig::linear(8);
    let resolved = Mapping::serial(&graph).resolve(&graph, &machine).unwrap();
    let request = match endpoint {
        "evaluate" => Request::Evaluate(EvaluateRequest {
            graph,
            machine,
            mapping: resolved,
            deadline_ms: None,
        }),
        "simulate" => Request::Simulate(SimulateRequest {
            graph,
            machine,
            mapping: resolved,
            inputs: Vec::new(),
            contention: false,
            deadline_ms: None,
        }),
        other => panic!("unknown endpoint {other}"),
    };
    let json_lat = json_arm(addr, &request, m);
    let (bin_gaps, bin_mean) = binary_arm(addr, &request, m, window);
    let json_p50 = quantile_ms(&json_lat, 0.50);
    let json_mean = json_lat.iter().sum::<f64>() / m as f64;
    let bin_p50 = quantile_ms(&bin_gaps, 0.50);
    SweepRow {
        endpoint: endpoint.to_string(),
        nodes,
        requests: m,
        json_p50_ms: json_p50,
        json_mean_ms: json_mean,
        binary_p50_ms: bin_p50,
        binary_mean_ms: bin_mean,
        speedup_p50: json_p50 / bin_p50.max(1e-9),
        speedup_mean: json_mean / bin_mean.max(1e-9),
    }
}

fn winner_of(reply_best: Option<TunedMapping>) -> TunedMapping {
    reply_best.expect("every dedup arm finds a winner")
}

fn assert_same_winner(got: &TunedMapping, expected: &TunedMapping, arm: &str) {
    assert_eq!(got.label, expected.label, "{arm}: winner label diverged");
    assert_eq!(
        got.score.to_bits(),
        expected.score.to_bits(),
        "{arm}: winner score diverged bitwise"
    );
    assert_eq!(
        got.resolved, expected.resolved,
        "{arm}: resolved mapping diverged"
    );
}

/// One arm of part B. A non-duplicate filler Tune occupies the single
/// worker first so every duplicate is *queued* when the worker gets to
/// them — the scenario dedup batching exists for.
fn dedup_arm(binary: bool, dedup: bool, dupes: u64, expected: &TunedMapping) -> DedupRow {
    let graph = wide(32);
    let machine = MachineConfig::linear(8);
    let config = ServerConfig {
        workers: 1,
        dedup_tunes: dedup,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let arm = format!(
        "{}/dedup-{}",
        if binary { "binary" } else { "json" },
        if dedup { "on" } else { "off" }
    );

    // Filler: same shape, different candidate count, so it shares no
    // dedup fingerprint with the duplicates.
    let filler = Request::Tune(tune_request(&graph, &machine, 40));
    let dupe = Request::Tune(tune_request(&graph, &machine, 24));

    let t0 = Instant::now();
    let wall_ms;
    if binary {
        let mut client = Client::connect(addr).expect("connect");
        assert!(client.is_pipelined());
        client.send_request(&filler).expect("send filler");
        for _ in 0..dupes {
            client.send_request(&dupe).expect("send dupe");
        }
        for _ in 0..=dupes {
            let (_corr, resp) = client.recv_response().expect("recv");
            match resp {
                Response::Tuned(r) => {
                    assert_same_winner(&winner_of(r.best), expected, &arm);
                }
                other => panic!("{arm}: unexpected reply {}", other.kind()),
            }
        }
        wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    } else {
        // The old client's shape: one JSON connection per duplicate,
        // all released together while the filler holds the worker.
        let mut filler_client = Client::connect_json(addr).expect("connect filler");
        let filler_join = {
            let filler = filler.clone();
            std::thread::spawn(move || {
                let corr = filler_client.send_request(&filler).unwrap();
                let (rcorr, resp) = filler_client.recv_response().unwrap();
                assert_eq!(corr, rcorr);
                assert!(matches!(resp, Response::Tuned(_)));
            })
        };
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(dupes as usize));
        let joins: Vec<_> = (0..dupes)
            .map(|_| {
                let dupe = dupe.clone();
                let barrier = barrier.clone();
                let mut client = Client::connect_json(addr).expect("connect dupe");
                std::thread::spawn(move || {
                    barrier.wait();
                    let corr = client.send_request(&dupe).unwrap();
                    let (rcorr, resp) = client.recv_response().unwrap();
                    assert_eq!(corr, rcorr);
                    match resp {
                        Response::Tuned(r) => winner_of(r.best),
                        other => panic!("unexpected reply {}", other.kind()),
                    }
                })
            })
            .collect();
        for j in joins {
            let winner = j.join().expect("dupe thread");
            assert_same_winner(&winner, expected, &arm);
        }
        wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        filler_join.join().expect("filler thread");
    }

    let stats = server.shutdown_and_join();
    let tunes = stats.tune.completed.saturating_sub(1); // minus the filler
    assert_eq!(tunes, dupes, "{arm}: every duplicate must be answered");
    if !dedup {
        assert_eq!(stats.dedup_batches, 0, "{arm}: dedup was off");
        assert_eq!(stats.dedup_waiters_served, 0, "{arm}: dedup was off");
    }
    DedupRow {
        transport: if binary { "binary" } else { "json" }.to_string(),
        dedup,
        dupes,
        searches_executed: tunes - stats.dedup_waiters_served,
        waiters_served: stats.dedup_waiters_served,
        dedup_batches: stats.dedup_batches,
        wall_ms,
        winner: expected.label.clone(),
    }
}

/// Run both parts. `quick` shrinks request counts and the duplicate
/// trace, not the workload shape or any correctness assertion.
pub fn run(quick: bool) -> Results {
    let m = if quick { 48 } else { 256 };
    let window = if quick { 8 } else { 16 };
    let dupes: u64 = if quick { 4 } else { 16 };

    // Part A: one resident server for the whole sweep, arms run
    // back-to-back against it.
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut sweep = Vec::new();
    for endpoint in ["evaluate", "simulate"] {
        for nodes in [4usize, 16, 64] {
            sweep.push(sweep_point(addr, endpoint, nodes, m, window));
        }
    }
    server.shutdown_and_join();

    // The transport headline: on the smallest requests — where framing
    // overhead dominates real work — pipelined binary must beat
    // blocking JSON by >= 5x at the median. Quick smoke runs on a
    // loaded CI box only get the direction, not the factor.
    if !quick {
        for r in sweep.iter().filter(|r| r.nodes == 4) {
            assert!(
                r.speedup_p50 >= 5.0,
                "{} @ {} nodes: p50 speedup {:.2}x < 5x",
                r.endpoint,
                r.nodes,
                r.speedup_p50
            );
        }
    }

    // Part B: each arm gets a fresh one-worker server so the books
    // (searches executed vs. waiters served) are the arm's alone.
    let graph = wide(32);
    let machine = MachineConfig::linear(8);
    let expected = {
        use fm_core::cost::Evaluator;
        use fm_core::search::MappingCandidate;
        let evaluator = Evaluator::new(&graph, &machine);
        let cands: Vec<MappingCandidate> = candidates(24, machine.cols)
            .into_iter()
            .map(|c| MappingCandidate::new(c.label, c.mapping))
            .collect();
        fm_autotune::Tuner::new(&evaluator, &graph, &machine, FigureOfMerit::Time)
            .tune(&cands)
            .best
            .expect("direct winner")
    };
    let mut dedup = Vec::new();
    for (binary, on) in [(false, true), (false, false), (true, true), (true, false)] {
        dedup.push(dedup_arm(binary, on, dupes, &expected));
    }

    // The headline collapse: with dedup on, duplicates queued behind
    // the filler are answered by far fewer real searches.
    for row in dedup.iter().filter(|r| r.dedup) {
        assert!(
            row.dedup_batches >= 1 && row.waiters_served >= dupes / 2,
            "{}/dedup-on: expected an >= {}-way collapse, got {} waiters in {} batches",
            row.transport,
            dupes / 2,
            row.waiters_served,
            row.dedup_batches
        );
    }

    Results { sweep, dedup }
}

/// Render both tables.
pub fn print(results: &Results) -> String {
    let mut out = String::from(
        "E19 — wire transport and dedup-batched admission\n\n\
         Part A: blocking JSON vs. pipelined binary, per-request p50\n\n",
    );
    let sweep_rows: Vec<Vec<String>> = results
        .sweep
        .iter()
        .map(|r| {
            vec![
                r.endpoint.clone(),
                r.nodes.to_string(),
                r.requests.to_string(),
                table::f(r.json_p50_ms),
                table::f(r.binary_p50_ms),
                table::f(r.speedup_p50),
                table::f(r.json_mean_ms),
                table::f(r.binary_mean_ms),
                table::f(r.speedup_mean),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "endpoint",
            "nodes",
            "reqs",
            "json p50",
            "bin p50",
            "x p50",
            "json mean",
            "bin mean",
            "x mean",
        ],
        &sweep_rows,
    ));
    out.push_str("\nPart B: K identical Tunes queued behind a filler (1 worker)\n\n");
    let dedup_rows: Vec<Vec<String>> = results
        .dedup
        .iter()
        .map(|r| {
            vec![
                r.transport.clone(),
                if r.dedup { "on" } else { "off" }.to_string(),
                r.dupes.to_string(),
                r.searches_executed.to_string(),
                r.waiters_served.to_string(),
                r.dedup_batches.to_string(),
                table::f(r.wall_ms),
                r.winner.clone(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "transport",
            "dedup",
            "dupes",
            "searches",
            "waiters",
            "batches",
            "wall ms",
            "winner",
        ],
        &dedup_rows,
    ));
    out.push_str(
        "\nwinners are bit-identical across all four arms and equal to a\n\
         direct in-process tune — encoding and batching change latency,\n\
         never answers.\n",
    );
    out
}

/// The results as a JSON document (`BENCH_e19.json`).
pub fn to_json(results: &Results) -> String {
    serde_json::to_string_pretty(results).expect("Results serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_collapses_duplicates_and_agrees_on_winners() {
        let results = run(true);
        assert_eq!(results.sweep.len(), 6);
        for r in &results.sweep {
            assert!(r.json_p50_ms > 0.0 && r.binary_p50_ms > 0.0);
            // Pipelined binary must never be slower than blocking
            // JSON at the median (the full run shows >= 5x on small
            // requests; quick runs on loaded CI get a loose floor).
            assert!(
                r.speedup_p50 > 1.0,
                "{} @ {} nodes: pipelined binary slower than blocking JSON ({:.2}x)",
                r.endpoint,
                r.nodes,
                r.speedup_p50
            );
        }
        assert_eq!(results.dedup.len(), 4);
        for r in &results.dedup {
            assert_eq!(r.searches_executed + r.waiters_served, r.dupes);
            if !r.dedup {
                assert_eq!(r.searches_executed, r.dupes);
            }
        }
        // run() already asserted the collapse and winner identity.
    }

    #[test]
    fn quantile_picks_sorted_ranks() {
        let lat = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_ms(&lat, 0.50), 2.0);
        assert_eq!(quantile_ms(&lat, 1.0), 4.0);
        assert_eq!(quantile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn json_round_trips() {
        let results = Results {
            sweep: vec![SweepRow {
                endpoint: "evaluate".into(),
                nodes: 4,
                requests: 10,
                json_p50_ms: 1.0,
                json_mean_ms: 1.1,
                binary_p50_ms: 0.1,
                binary_mean_ms: 0.2,
                speedup_p50: 10.0,
                speedup_mean: 5.5,
            }],
            dedup: vec![DedupRow {
                transport: "binary".into(),
                dedup: true,
                dupes: 8,
                searches_executed: 1,
                waiters_served: 7,
                dedup_batches: 1,
                wall_ms: 12.0,
                winner: "fold-0-w1".into(),
            }],
        };
        let j = to_json(&results);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"speedup_p50\": 10"), "{j}");
        assert!(j.contains("\"waiters_served\": 7"), "{j}");
    }
}
