//! **E8 — the default mapper** (§3).
//!
//! "Programmers that don't want to bother with mapping can use a
//! default mapper — with results no worse than with today's
//! abstractions."
//!
//! For each kernel we compare: the fully serial mapping (one PE, one
//! element per cycle — "today's abstraction" at its simplest), the
//! default mapper (greedy list scheduling, no user input), the
//! fm-autotune tuner picking over {serial, default, expert} with no
//! user input beyond the candidate list, and the kernel's
//! hand-written/searched mapping.

use std::path::Path;

use fm_autotune::{Tuner, TuningCache};
use fm_core::cost::Evaluator;
use fm_core::legality::check;
use fm_core::machine::MachineConfig;
use fm_core::mapping::{InputPlacement, Mapping};
use fm_core::search::{anneal, default_mapper, FigureOfMerit, MappingCandidate};
use fm_kernels::editdist::{edit_recurrence, skewed_mapping, Scoring};
use fm_kernels::fft::{fft_graph, fft_mapping, FftVariant, LanePlacement};
use fm_kernels::stencil::{blocked_mapping, stencil_recurrence};

use crate::table;

/// One (kernel, mapper) point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Kernel name.
    pub kernel: String,
    /// Mapper name.
    pub mapper: String,
    /// Cycles.
    pub cycles: i64,
    /// Energy in pJ.
    pub energy_pj: f64,
    /// Which roofline roof binds this mapping: `"compute"`,
    /// `"onchip-bw"`, or `"offchip-bw"`.
    pub bound: String,
}

/// Run the mappers over three kernels on a `cols×rows` machine.
pub fn run(cols: u32, rows_m: u32) -> Vec<Row> {
    run_with_cache(cols, rows_m, None)
}

/// [`run`] with an optional persistent tuning cache for the "tuned"
/// rows: warm runs replay the tuner's ranked outcome without
/// re-evaluating any candidate.
pub fn run_with_cache(cols: u32, rows_m: u32, cache_dir: Option<&Path>) -> Vec<Row> {
    let machine = MachineConfig::n5(cols, rows_m);
    let p = i64::from(cols * rows_m);

    let mut out = Vec::new();
    let mut push = |kernel: &str,
                    mapper: &str,
                    graph: &fm_core::dataflow::DataflowGraph,
                    rm: fm_core::mapping::ResolvedMapping,
                    machine: &MachineConfig| {
        let rep = check(graph, &rm, machine);
        assert!(rep.is_legal(), "{kernel}/{mapper}");
        let ev = Evaluator::new(graph, machine).with_all_inputs(InputPlacement::AtUse);
        let report = ev.evaluate(&rm);
        out.push(Row {
            kernel: kernel.to_string(),
            mapper: mapper.to_string(),
            cycles: report.cycles,
            energy_pj: report.energy().raw() / 1e3,
            bound: ev.roofline(&report).bound,
        });
    };

    // The "tuned" row: the fm-autotune tuner choosing among the other
    // mappers' mappings with no user input beyond the candidate list.
    // By construction its cycle count is the minimum of the rest.
    let tune_best = |kernel: &str,
                     graph: &fm_core::dataflow::DataflowGraph,
                     machine: &MachineConfig,
                     labeled: &[(&str, fm_core::mapping::ResolvedMapping)]|
     -> fm_core::mapping::ResolvedMapping {
        let cands: Vec<MappingCandidate> = labeled
            .iter()
            .map(|(l, rm)| MappingCandidate::new(*l, Mapping::Table(rm.clone())))
            .collect();
        let ev = Evaluator::new(graph, machine).with_all_inputs(InputPlacement::AtUse);
        let mut tuner = Tuner::new(&ev, graph, machine, FigureOfMerit::Time);
        if let Some(cache) = cache_dir.and_then(TuningCache::open) {
            tuner = tuner.with_cache(cache);
        }
        let report = tuner.tune(&cands);
        report
            .best
            .unwrap_or_else(|| panic!("{kernel}: tuner found no legal mapping"))
            .resolved
    };

    // Edit distance on a linear sub-array.
    {
        let n = 48;
        let g = edit_recurrence(n, n, Scoring::paper_local())
            .elaborate()
            .unwrap();
        let lin = MachineConfig::linear(cols);
        let serial = Mapping::serial(&g).resolve(&g, &lin).unwrap();
        push("editdist48", "serial", &g, serial.clone(), &lin);
        let dflt = default_mapper(&g, &lin);
        push("editdist48", "default", &g, dflt.clone(), &lin);
        let ev = Evaluator::new(&g, &lin).with_all_inputs(InputPlacement::AtUse);
        let (annealed, _) = anneal(&ev, &g, &lin, &dflt, FigureOfMerit::Energy, 400, 11);
        push("editdist48", "annealed", &g, annealed.clone(), &lin);
        let expert = skewed_mapping(i64::from(cols), n)
            .resolve(&g, &lin)
            .unwrap();
        push("editdist48", "expert", &g, expert.clone(), &lin);
        let tuned = tune_best(
            "editdist48",
            &g,
            &lin,
            &[
                ("serial", serial),
                ("default", dflt),
                ("annealed", annealed),
                ("expert", expert),
            ],
        );
        push("editdist48", "tuned", &g, tuned, &lin);
    }

    // FFT.
    {
        let n = 64;
        let g = fft_graph(n, FftVariant::Dit);
        let serial = Mapping::serial(&g).resolve(&g, &machine).unwrap();
        push("fft64-dit", "serial", &g, serial.clone(), &machine);
        let dflt = default_mapper(&g, &machine);
        push("fft64-dit", "default", &g, dflt.clone(), &machine);
        let lin = MachineConfig::linear(cols);
        let expert = fft_mapping(&g, n, cols, LanePlacement::Block, &lin);
        push("fft64-dit", "expert", &g, expert, &lin);
        // Tuned on the grid machine, over the grid-legal candidates.
        let tuned = tune_best(
            "fft64-dit",
            &g,
            &machine,
            &[("serial", serial), ("default", dflt)],
        );
        push("fft64-dit", "tuned", &g, tuned, &machine);
    }

    // Stencil.
    {
        let (t, n) = (8, 64);
        let g = stencil_recurrence(t, n).elaborate().unwrap();
        let lin = MachineConfig::linear(cols);
        let serial = Mapping::serial(&g).resolve(&g, &lin).unwrap();
        push("stencil8x64", "serial", &g, serial.clone(), &lin);
        let dflt = default_mapper(&g, &lin);
        push("stencil8x64", "default", &g, dflt.clone(), &lin);
        let expert = blocked_mapping(n, p.min(i64::from(cols)))
            .resolve(&g, &lin)
            .unwrap();
        push("stencil8x64", "expert", &g, expert.clone(), &lin);
        let tuned = tune_best(
            "stencil8x64",
            &g,
            &lin,
            &[("serial", serial), ("default", dflt), ("expert", expert)],
        );
        push("stencil8x64", "tuned", &g, tuned, &lin);
    }

    out
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from("E8 — default mapper vs serial vs expert mapping\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.mapper.clone(),
                r.cycles.to_string(),
                table::f(r.energy_pj),
                r.bound.clone(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &["kernel", "mapper", "cycles", "energy pJ", "bound"],
        &table_rows,
    ));
    out.push_str("\nthe claim under test: default ≤ serial in time, for every kernel.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annealed_never_worse_than_default_on_energy() {
        let rows = run(8, 1);
        let get = |mapper: &str| {
            rows.iter()
                .find(|r| r.kernel == "editdist48" && r.mapper == mapper)
                .unwrap()
                .energy_pj
        };
        assert!(get("annealed") <= get("default") + 1e-9);
    }

    #[test]
    fn default_never_slower_than_serial() {
        let rows = run(8, 1);
        for kernel in ["editdist48", "fft64-dit", "stencil8x64"] {
            let get = |mapper: &str| {
                rows.iter()
                    .find(|r| r.kernel == kernel && r.mapper == mapper)
                    .unwrap()
                    .cycles
            };
            assert!(
                get("default") <= get("serial"),
                "{kernel}: default {} vs serial {}",
                get("default"),
                get("serial")
            );
        }
    }

    #[test]
    fn tuned_never_slower_than_serial_or_default() {
        // The tuner picks over the other mappers' mappings under the
        // Time objective, so its cycle count is their minimum.
        let rows = run(8, 1);
        for kernel in ["editdist48", "fft64-dit", "stencil8x64"] {
            let get = |mapper: &str| {
                rows.iter()
                    .find(|r| r.kernel == kernel && r.mapper == mapper)
                    .unwrap()
                    .cycles
            };
            assert!(get("tuned") <= get("serial"), "{kernel}");
            assert!(get("tuned") <= get("default"), "{kernel}");
        }
    }

    #[test]
    fn warm_cache_run_reproduces_cold_rows() {
        let dir = std::env::temp_dir().join(format!("fm-bench-e8-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = run_with_cache(4, 1, Some(&dir));
        let warm = run_with_cache(4, 1, Some(&dir));
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!((&c.kernel, &c.mapper), (&w.kernel, &w.mapper));
            assert_eq!(c.cycles, w.cycles);
            assert_eq!(c.energy_pj, w.energy_pj);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expert_beats_default_somewhere() {
        // The default mapper is "no worse than today's abstractions",
        // not optimal: the expert systolic mappings should win on at
        // least one kernel (typically all).
        let rows = run(8, 1);
        let wins = ["editdist48", "fft64-dit", "stencil8x64"]
            .iter()
            .filter(|&&kernel| {
                let get = |mapper: &str| {
                    rows.iter()
                        .find(|r| r.kernel == kernel && r.mapper == mapper)
                        .unwrap()
                        .cycles
                };
                get("expert") <= get("default")
            })
            .count();
        assert!(wins >= 1, "expert mappings should win at least once");
    }
}
