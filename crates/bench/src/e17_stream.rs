//! **E17 — streaming shard replies + latency-weighted partitioning**
//! (`fm-serve --fleet --stream-every K --weighted on`).
//!
//! The fleet's tail-latency fix, measured: a 2-shard topology where
//! shard 0 is a *scripted straggler* (the server's deterministic
//! `straggle_ms_per_candidate` hook slows its per-candidate compute;
//! the slowdown applies identically on the blocking and streaming
//! paths, so the protocols race on even terms). The same sequence of
//! tunes runs through the classic blocking fleet path
//! (`stream_every = None`, equal split) and through streaming +
//! weighted partitioning. Blocking pays the straggler's full range on
//! *every* tune; streaming banks the straggler's finished prefix as
//! sealed `TuneShardPart` frames, hedges only the unfinished suffix,
//! and — because part arrival times feed the per-shard EWMA throughput
//! tracker that persists across requests — every tune after the first
//! hands the straggler a proportionally tiny range to begin with.
//!
//! The invariant is unchanged and checked per tune: bit-identical
//! winner to a single-machine `Tuner::tune`, and zero streamed-prefix
//! candidates discarded. The speedup is the headline; the parity bit
//! is the contract.

use std::time::{Duration, Instant};

use fm_autotune::{TunedMapping, Tuner};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::client::Client;
use fm_serve::fleet::FleetConfig;
use fm_serve::metrics::FleetStatsReply;
use fm_serve::protocol::{TuneRequest, WireCandidate};
use fm_serve::server::{Server, ServerConfig, ServerHandle};
use serde::Serialize;

use crate::table;

/// One protocol's view of the straggler topology.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Protocol (`blocking` / `streaming+weighted`).
    pub scenario: String,
    /// Tunes issued sequentially (all completed).
    pub tunes: u64,
    /// Wall-clock for the whole tune sequence, milliseconds.
    pub total_wall_ms: f64,
    /// Median per-tune latency, milliseconds.
    pub p50_ms: f64,
    /// Maximum per-tune latency, milliseconds.
    pub max_ms: f64,
    /// Verified streamed parts merged into range ledgers.
    pub parts_merged: u64,
    /// Streamed parts discarded by validation — the acceptance
    /// criterion demands exactly zero.
    pub parts_discarded: u64,
    /// Retries/hedges that dispatched only an unfinished suffix.
    pub suffix_redispatches: u64,
    /// Candidates banked from attempts that later died mid-stream.
    pub prefix_candidates_saved: u64,
    /// Hedged duplicate attempts launched.
    pub hedges: u64,
    /// This row's speedup over the blocking row (blocking = 1.0).
    pub speedup_vs_blocking: f64,
    /// Did every tune return the bit-identical single-machine winner?
    pub winner_bit_identical: bool,
}

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("e17-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

/// Legal fold-onto-`w`-PEs candidates (place `i mod w`, time `i div w`).
fn candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn direct_winner(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TunedMapping {
    let evaluator = Evaluator::new(graph, machine);
    let cands: Vec<MappingCandidate> = candidates(ncand, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    Tuner::new(&evaluator, graph, machine, FigureOfMerit::Time)
        .tune(&cands)
        .best
        .expect("direct tuner found a winner")
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Issue `tunes` identical tunes sequentially, checking each winner.
fn drive(
    addr: std::net::SocketAddr,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    ncand: usize,
    tunes: usize,
    expected: &TunedMapping,
) -> (Vec<f64>, f64, bool) {
    let mut client = Client::connect(addr).expect("connect");
    let mut lat = Vec::with_capacity(tunes);
    let mut identical = true;
    let t0 = Instant::now();
    for _ in 0..tunes {
        let t = Instant::now();
        let reply = client
            .tune(TuneRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                fom: FigureOfMerit::Time,
                candidates: candidates(ncand, machine.cols),
                deadline_ms: None,
                max_candidates: None,
                convergence_window: None,
                refinement: None,
                use_cache: false,
                cost_model: None,
            })
            .expect("tune");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
        let best = reply.best.expect("a winner");
        identical &= best.label == expected.label
            && best.score.to_bits() == expected.score.to_bits()
            && best.resolved == expected.resolved;
    }
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    lat.sort_by(|a, b| a.total_cmp(b));
    (lat, wall, identical)
}

fn row(scenario: &str, lat: &[f64], wall_ms: f64, fleet: &FleetStatsReply, ok: bool) -> Row {
    Row {
        scenario: scenario.to_string(),
        tunes: lat.len() as u64,
        total_wall_ms: wall_ms,
        p50_ms: quantile_ms(lat, 0.50),
        max_ms: lat.last().copied().unwrap_or(0.0),
        parts_merged: fleet.parts_merged,
        parts_discarded: fleet.parts_discarded,
        suffix_redispatches: fleet.suffix_redispatches,
        prefix_candidates_saved: fleet.prefix_candidates_saved,
        hedges: fleet.hedges,
        speedup_vs_blocking: 1.0,
        winner_bit_identical: ok,
    }
}

/// Run both protocols over the scripted-straggler topology. `quick`
/// shrinks the tune count and the straggle factor, not the shape.
pub fn run(quick: bool) -> Vec<Row> {
    let tunes = if quick { 3 } else { 8 };
    let straggle_ms = if quick { 10 } else { 15 };
    let ncand = 48;
    let graph = wide(20);
    let machine = MachineConfig::linear(8);
    let expected = direct_winner(&graph, &machine, ncand);

    // Shard 0 is the scripted straggler; shard 1 is healthy. The
    // straggle hook slows *compute*, identically for both protocols.
    let start_shards = || -> Vec<ServerHandle> {
        [Some(straggle_ms), None]
            .into_iter()
            .map(|straggle| {
                let config = ServerConfig {
                    straggle_ms_per_candidate: straggle,
                    ..ServerConfig::default()
                };
                Server::start("127.0.0.1:0", config).expect("bind shard")
            })
            .collect()
    };
    let fleet_config = |addrs: Vec<String>, streaming: bool| -> FleetConfig {
        let mut f = FleetConfig::new(addrs);
        f.connect_timeout = Duration::from_millis(200);
        f.attempt_timeout = Duration::from_secs(5);
        f.backoff_base = Duration::from_millis(5);
        f.backoff_max = Duration::from_millis(40);
        f.hedge_after = Some(Duration::from_millis(250));
        f.stream_every = streaming.then_some(4);
        f.weighted = streaming;
        f
    };

    let mut rows = Vec::new();
    for (scenario, streaming) in [("blocking", false), ("streaming+weighted", true)] {
        let shards = start_shards();
        let addrs = shards.iter().map(|s| s.local_addr().to_string()).collect();
        let config = ServerConfig {
            fleet: Some(fleet_config(addrs, streaming)),
            ..ServerConfig::default()
        };
        let coord = Server::start("127.0.0.1:0", config).expect("bind coordinator");
        let (lat, wall, ok) = drive(
            coord.local_addr(),
            &graph,
            &machine,
            ncand,
            tunes,
            &expected,
        );
        let stats = coord.shutdown_and_join();
        rows.push(row(
            scenario,
            &lat,
            wall,
            stats.fleet.as_ref().expect("coordinator exports fleet"),
            ok,
        ));
        for s in shards {
            s.shutdown_and_join();
        }
    }

    let blocking_wall = rows[0].total_wall_ms;
    for r in &mut rows {
        r.speedup_vs_blocking = blocking_wall / r.total_wall_ms.max(1e-9);
    }
    rows
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out = String::from(
        "E17 — streaming shard replies + latency-weighted partitioning (scripted straggler)\n\n",
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.tunes.to_string(),
                table::f(r.total_wall_ms),
                table::f(r.p50_ms),
                table::f(r.max_ms),
                r.parts_merged.to_string(),
                r.parts_discarded.to_string(),
                r.suffix_redispatches.to_string(),
                r.hedges.to_string(),
                format!("{:.2}x", r.speedup_vs_blocking),
                if r.winner_bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "scenario",
            "tunes",
            "total ms",
            "p50 ms",
            "max ms",
            "parts",
            "discard",
            "suffix",
            "hedge",
            "speedup",
            "bit-identical",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nblocking re-pays the straggler's whole range every tune; streaming banks\n\
         its finished prefix and the EWMA-weighted split stops assigning it one.\n\
         the winner is bit-identical to a single-machine tune in every row.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e17.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_streams_saves_and_keeps_winner_parity() {
        let rows = run(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.winner_bit_identical, "{}: winner diverged", r.scenario);
            assert_eq!(r.parts_discarded, 0, "{}: discarded parts", r.scenario);
            assert!(r.p50_ms <= r.max_ms, "{}", r.scenario);
        }
        let blocking = &rows[0];
        let streaming = &rows[1];
        assert_eq!(blocking.parts_merged, 0, "blocking path must not stream");
        assert!(
            streaming.parts_merged > 0,
            "streaming path produced no parts"
        );
        // The headline: even the quick run clears a comfortable margin
        // under the full run's 1.5x acceptance bar.
        assert!(
            streaming.speedup_vs_blocking >= 1.2,
            "streaming+weighted speedup {:.2}x under 1.2x",
            streaming.speedup_vs_blocking
        );
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            scenario: "streaming+weighted".into(),
            tunes: 8,
            total_wall_ms: 700.0,
            p50_ms: 65.0,
            max_ms: 280.0,
            parts_merged: 40,
            parts_discarded: 0,
            suffix_redispatches: 1,
            prefix_candidates_saved: 0,
            hedges: 1,
            speedup_vs_blocking: 2.9,
            winner_bit_identical: true,
        }];
        let j = to_json(&rows);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"scenario\": \"streaming+weighted\""), "{j}");
        assert!(j.contains("\"parts_discarded\": 0"), "{j}");
    }
}
