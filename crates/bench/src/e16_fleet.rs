//! **E16 — fault-tolerant fleet tuning** (`fm-serve --fleet`).
//!
//! The fleet's pitch is determinism under partial failure: a
//! coordinator partitions each tune across backend shards and merges
//! by `(score, index)`, so the winner is bit-identical to one machine
//! sweeping the whole candidate list — even while shards drop, stall,
//! truncate, corrupt, or die outright. This experiment runs the same
//! tune workload through four topologies — local only, a healthy
//! 3-shard fleet, the same fleet behind deterministic fault-injection
//! proxies, and a fleet whose every shard is dead — and reports
//! latency quantiles next to the recovery counters (retries, hedges,
//! reassignments, discarded replies, local fallbacks). Every row
//! asserts the winner matched the single-machine reference, bit for
//! bit.

use std::time::{Duration, Instant};

use fm_autotune::{TunedMapping, Tuner};
use fm_core::affine::IdxExpr;
use fm_core::cost::Evaluator;
use fm_core::dataflow::{CExpr, DataflowGraph};
use fm_core::machine::MachineConfig;
use fm_core::mapping::{AffineMap, Mapping, PlaceExpr};
use fm_core::search::{FigureOfMerit, MappingCandidate};
use fm_core::value::Value;
use fm_serve::client::Client;
use fm_serve::fault::{FaultPlan, FaultProxy};
use fm_serve::fleet::FleetConfig;
use fm_serve::metrics::FleetStatsReply;
use fm_serve::protocol::{TuneRequest, WireCandidate};
use fm_serve::server::{Server, ServerConfig, ServerHandle};
use serde::Serialize;

use crate::table;

/// One topology's view of the run: latency quantiles plus the fleet's
/// recovery counters, with the determinism check made explicit.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Topology (`local` / `fleet` / `fleet+faults` / `fleet-outage`).
    pub scenario: String,
    /// Tunes issued (all completed).
    pub tunes: u64,
    /// Completed tunes per second.
    pub throughput_rps: f64,
    /// Median tune latency, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile tune latency, milliseconds.
    pub p95_ms: f64,
    /// Maximum tune latency, milliseconds.
    pub max_ms: f64,
    /// Retry waves after failed attempts.
    pub retries: u64,
    /// Hedged duplicate requests launched.
    pub hedges: u64,
    /// Sub-ranges served by a non-first-choice shard.
    pub reassignments: u64,
    /// Replies discarded by validation (corrupt + stale + incomplete).
    pub discarded: u64,
    /// Sub-ranges that fell back to coordinator-local evaluation.
    pub local_fallback_ranges: u64,
    /// Did every tune return the bit-identical single-machine winner?
    pub winner_bit_identical: bool,
}

fn wide(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new("e16-wide", 32);
    for i in 0..n {
        g.add_node(CExpr::konst(Value::real(i as f64)), vec![], vec![i as i64]);
    }
    g
}

/// Legal fold-onto-`w`-PEs candidates (place `i mod w`, time `i div w`).
fn candidates(n: usize, cols: u32) -> Vec<WireCandidate> {
    (0..n)
        .map(|i| {
            let w = (i as i64 % cols as i64) + 1;
            WireCandidate {
                label: format!("fold-{i}-w{w}"),
                mapping: Mapping::Affine(AffineMap {
                    place: PlaceExpr::row0(IdxExpr::ModC(Box::new(IdxExpr::i()), w)),
                    time: IdxExpr::i().div(w),
                }),
            }
        })
        .collect()
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Recovery timeouts tightened so fault handling happens in bench
/// time; the production defaults only stretch the same machinery.
fn fleet_config(shards: Vec<String>) -> FleetConfig {
    let mut f = FleetConfig::new(shards);
    f.connect_timeout = Duration::from_millis(200);
    f.attempt_timeout = Duration::from_secs(3);
    f.backoff_base = Duration::from_millis(5);
    f.backoff_max = Duration::from_millis(40);
    f.hedge_after = Some(Duration::from_millis(60));
    f.breaker_cooldown = Duration::from_millis(400);
    f
}

fn direct_winner(graph: &DataflowGraph, machine: &MachineConfig, ncand: usize) -> TunedMapping {
    let evaluator = Evaluator::new(graph, machine);
    let cands: Vec<MappingCandidate> = candidates(ncand, machine.cols)
        .into_iter()
        .map(|c| MappingCandidate::new(c.label, c.mapping))
        .collect();
    Tuner::new(&evaluator, graph, machine, FigureOfMerit::Time)
        .tune(&cands)
        .best
        .expect("direct tuner found a winner")
}

/// An address that refuses connects (bound once, then released).
fn dead_addr() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    probe.local_addr().unwrap().to_string()
}

/// Issue `tunes` identical tunes at `addr`, checking each winner
/// against `expected`; returns per-tune latencies and the parity bit.
fn drive(
    addr: std::net::SocketAddr,
    graph: &DataflowGraph,
    machine: &MachineConfig,
    ncand: usize,
    tunes: usize,
    expected: &TunedMapping,
) -> (Vec<f64>, bool) {
    let mut client = Client::connect(addr).expect("connect");
    let mut lat = Vec::with_capacity(tunes);
    let mut identical = true;
    for _ in 0..tunes {
        let t = Instant::now();
        let reply = client
            .tune(TuneRequest {
                graph: graph.clone(),
                machine: machine.clone(),
                fom: FigureOfMerit::Time,
                candidates: candidates(ncand, machine.cols),
                deadline_ms: None,
                max_candidates: None,
                convergence_window: None,
                refinement: None,
                use_cache: false,
                cost_model: None,
            })
            .expect("tune");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
        let best = reply.best.expect("a winner");
        identical &= best.label == expected.label
            && best.score.to_bits() == expected.score.to_bits()
            && best.resolved == expected.resolved;
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    (lat, identical)
}

fn row(scenario: &str, lat: &[f64], wall: f64, fleet: Option<&FleetStatsReply>, ok: bool) -> Row {
    Row {
        scenario: scenario.to_string(),
        tunes: lat.len() as u64,
        throughput_rps: lat.len() as f64 / wall.max(1e-9),
        p50_ms: quantile_ms(lat, 0.50),
        p95_ms: quantile_ms(lat, 0.95),
        max_ms: lat.last().copied().unwrap_or(0.0),
        retries: fleet.map_or(0, |f| f.retries),
        hedges: fleet.map_or(0, |f| f.hedges),
        reassignments: fleet.map_or(0, |f| f.reassignments),
        discarded: fleet.map_or(0, |f| {
            f.corrupt_discarded + f.stale_discarded + f.incomplete_discarded
        }),
        local_fallback_ranges: fleet.map_or(0, |f| f.local_fallback_ranges),
        winner_bit_identical: ok,
    }
}

/// Run all four topologies. `quick` shrinks the tune count, not the
/// workload shape or the fault mix.
pub fn run(quick: bool) -> Vec<Row> {
    let tunes = if quick { 3 } else { 12 };
    let ncand = 40;
    let graph = wide(20);
    let machine = MachineConfig::linear(8);
    let expected = direct_winner(&graph, &machine, ncand);
    let mut rows = Vec::new();

    // Local baseline: one server, no fleet.
    {
        let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let t0 = Instant::now();
        let (lat, ok) = drive(
            server.local_addr(),
            &graph,
            &machine,
            ncand,
            tunes,
            &expected,
        );
        let wall = t0.elapsed().as_secs_f64();
        server.shutdown_and_join();
        rows.push(row("local", &lat, wall, None, ok));
    }

    let start_shards = |n: usize| -> Vec<ServerHandle> {
        (0..n)
            .map(|_| Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind shard"))
            .collect()
    };
    let coordinator = |fleet: FleetConfig| -> ServerHandle {
        let config = ServerConfig {
            fleet: Some(fleet),
            ..ServerConfig::default()
        };
        Server::start("127.0.0.1:0", config).expect("bind coordinator")
    };

    // Healthy 3-shard fleet.
    {
        let shards = start_shards(3);
        let addrs = shards.iter().map(|s| s.local_addr().to_string()).collect();
        let coord = coordinator(fleet_config(addrs));
        let t0 = Instant::now();
        let (lat, ok) = drive(
            coord.local_addr(),
            &graph,
            &machine,
            ncand,
            tunes,
            &expected,
        );
        let wall = t0.elapsed().as_secs_f64();
        let stats = coord.shutdown_and_join();
        rows.push(row("fleet", &lat, wall, stats.fleet.as_ref(), ok));
        for s in shards {
            s.shutdown_and_join();
        }
    }

    // Same fleet, every shard behind a seeded fault-injection proxy
    // (drops, delays, truncations, corruptions, mid-reply disconnects
    // — deterministic per seed, clean once the schedule is spent).
    {
        let shards = start_shards(3);
        let proxies: Vec<FaultProxy> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                FaultProxy::start(s.local_addr(), FaultPlan::seeded(0xE16 + i as u64, 4))
                    .expect("proxy")
            })
            .collect();
        let addrs = proxies.iter().map(|p| p.local_addr().to_string()).collect();
        let coord = coordinator(fleet_config(addrs));
        let t0 = Instant::now();
        let (lat, ok) = drive(
            coord.local_addr(),
            &graph,
            &machine,
            ncand,
            tunes,
            &expected,
        );
        let wall = t0.elapsed().as_secs_f64();
        let stats = coord.shutdown_and_join();
        rows.push(row("fleet+faults", &lat, wall, stats.fleet.as_ref(), ok));
        for p in proxies {
            p.stop();
        }
        for s in shards {
            s.shutdown_and_join();
        }
    }

    // Full outage: every shard address refuses connects; the
    // coordinator must degrade to pure-local search, same winner.
    {
        let coord = coordinator(fleet_config(vec![dead_addr(), dead_addr(), dead_addr()]));
        let t0 = Instant::now();
        let (lat, ok) = drive(
            coord.local_addr(),
            &graph,
            &machine,
            ncand,
            tunes,
            &expected,
        );
        let wall = t0.elapsed().as_secs_f64();
        let stats = coord.shutdown_and_join();
        rows.push(row("fleet-outage", &lat, wall, stats.fleet.as_ref(), ok));
    }

    rows
}

/// Render.
pub fn print(rows: &[Row]) -> String {
    let mut out =
        String::from("E16 — fault-tolerant fleet tuning (winner parity under injected faults)\n\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.tunes.to_string(),
                table::f(r.throughput_rps),
                table::f(r.p50_ms),
                table::f(r.p95_ms),
                table::f(r.max_ms),
                r.retries.to_string(),
                r.hedges.to_string(),
                r.reassignments.to_string(),
                r.discarded.to_string(),
                r.local_fallback_ranges.to_string(),
                if r.winner_bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render(
        &[
            "scenario",
            "tunes",
            "tune/s",
            "p50 ms",
            "p95 ms",
            "max ms",
            "retry",
            "hedge",
            "reassign",
            "discard",
            "local",
            "bit-identical",
        ],
        &table_rows,
    ));
    out.push_str(
        "\nevery topology — healthy, faulted, and fully dead — must return the\n\
         single-machine winner bit for bit; the counters show what it cost.\n",
    );
    out
}

/// The rows as a JSON document (`BENCH_e16.json`).
pub fn to_json(rows: &[Row]) -> String {
    serde_json::to_string_pretty(rows).expect("Row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_keeps_every_winner_bit_identical() {
        let rows = run(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.winner_bit_identical, "{}: winner diverged", r.scenario);
            assert!(r.tunes > 0 && r.throughput_rps > 0.0, "{}", r.scenario);
            assert!(
                r.p50_ms <= r.p95_ms && r.p95_ms <= r.max_ms,
                "{}",
                r.scenario
            );
        }
        let outage = rows.iter().find(|r| r.scenario == "fleet-outage").unwrap();
        assert!(
            outage.local_fallback_ranges >= 1,
            "outage must have fallen back locally"
        );
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row {
            scenario: "fleet".into(),
            tunes: 12,
            throughput_rps: 8.0,
            p50_ms: 10.0,
            p95_ms: 20.0,
            max_ms: 30.0,
            retries: 1,
            hedges: 2,
            reassignments: 1,
            discarded: 3,
            local_fallback_ranges: 0,
            winner_bit_identical: true,
        }];
        let j = to_json(&rows);
        serde_json::from_str_value(&j).unwrap();
        assert!(j.contains("\"scenario\": \"fleet\""), "{j}");
        assert!(j.contains("\"winner_bit_identical\": true"), "{j}");
    }
}
