//! Criterion bench for E7: ideal-cache trace replay throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fm_kernels::matmul::{trace_matmul_blocked, trace_matmul_naive, trace_matmul_oblivious};
use fm_workspan::IdealCache;

fn bench(c: &mut Criterion) {
    let n = 48;
    c.bench_function("e7/trace_naive_48", |b| {
        b.iter(|| {
            let mut cache = IdealCache::new(2048, 16);
            trace_matmul_naive(black_box(n), &mut cache);
            cache.stats().misses
        })
    });
    c.bench_function("e7/trace_blocked_48", |b| {
        b.iter(|| {
            let mut cache = IdealCache::new(2048, 16);
            trace_matmul_blocked(black_box(n), 16, &mut cache);
            cache.stats().misses
        })
    });
    c.bench_function("e7/trace_oblivious_48", |b| {
        b.iter(|| {
            let mut cache = IdealCache::new(2048, 16);
            trace_matmul_oblivious(black_box(n), 8, &mut cache);
            cache.stats().misses
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
