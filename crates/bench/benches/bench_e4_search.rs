//! Criterion bench for E4: the mapping search itself (graph build +
//! retime + evaluate across the family).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fm_core::cost::Evaluator;
use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_core::search::{search, FigureOfMerit};
use fm_kernels::fft::{fft_graph, FftFamily, FftVariant};

fn bench(c: &mut Criterion) {
    let n = 128;
    c.bench_function("e4/build_fft128_dit_graph", |b| {
        b.iter(|| fft_graph(black_box(n), FftVariant::Dit))
    });

    let machine = MachineConfig::linear(16);
    let family = FftFamily {
        n,
        p_values: vec![4, 8, 16],
    };
    let graph = fft_graph(n, FftVariant::Dit);
    c.bench_function("e4/enumerate_family", |b| {
        b.iter(|| family.candidates_for(black_box(&graph), &machine))
    });

    let cands = family.candidates_for(&graph, &machine);
    let ev = Evaluator::new(&graph, &machine).with_all_inputs(InputPlacement::AtUse);
    c.bench_function("e4/search_6_candidates", |b| {
        b.iter(|| search(&ev, &graph, &machine, black_box(&cands), FigureOfMerit::Edp))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
