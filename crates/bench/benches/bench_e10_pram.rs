//! Criterion bench for E10: the PRAM/XMT machinery — Blelloch scan
//! steps and XMT BFS spawn blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fm_kernels::bfs::{bfs_serial, bfs_xmt, random_graph};
use fm_kernels::scan::pram_blelloch_scan;
use fm_kernels::util::XorShift;

fn bench(c: &mut Criterion) {
    let mut rng = XorShift::new(8);
    let x: Vec<i64> = (0..4096).map(|_| rng.below(100) as i64).collect();
    c.bench_function("e10/pram_blelloch_scan_4096", |b| {
        b.iter(|| pram_blelloch_scan(black_box(&x)).unwrap().0)
    });

    let g = random_graph(5_000, 8, 5);
    c.bench_function("e10/bfs_serial_5k", |b| {
        b.iter(|| bfs_serial(black_box(&g), 0).0)
    });
    c.bench_function("e10/bfs_xmt_5k", |b| {
        b.iter(|| bfs_xmt(black_box(&g), 0).unwrap().0)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
