//! Criterion bench for E12: grid-simulator throughput on the stencil
//! scaling workload (elements simulated per run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fm_core::machine::MachineConfig;
use fm_core::mapping::InputPlacement;
use fm_grid::Simulator;
use fm_kernels::stencil::{blocked_mapping, stencil_inputs, stencil_recurrence};
use fm_kernels::util::XorShift;

fn bench(c: &mut Criterion) {
    let (t, n) = (16, 128);
    let rec = stencil_recurrence(t, n);
    let graph = rec.elaborate().unwrap();
    let mut rng = XorShift::new(4);
    let f: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
    let inputs = stencil_inputs(&f);

    let mut group = c.benchmark_group("e12");
    for p in [2i64, 8, 32] {
        let machine = MachineConfig::linear(p as u32);
        let rm = blocked_mapping(n, p).resolve(&graph, &machine).unwrap();
        group.bench_with_input(BenchmarkId::new("sim_stencil_16x128", p), &p, |b, _| {
            let sim = Simulator::new(machine.clone());
            b.iter(|| {
                sim.run(black_box(&graph), &rm, &inputs, &[InputPlacement::AtUse])
                    .unwrap()
                    .cycles_actual
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
