//! Criterion bench for E3: elaboration, analytic evaluation, legality
//! checking, and full grid simulation of the paper's edit-distance
//! mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fm_core::cost::Evaluator;
use fm_core::legality;
use fm_core::machine::MachineConfig;
use fm_grid::Simulator;
use fm_kernels::editdist::{
    edit_inputs, edit_recurrence, paper_input_placements, skewed_mapping, Scoring,
};
use fm_kernels::util::{random_sequence, DNA};

fn bench(c: &mut Criterion) {
    let n = 64;
    let rec = edit_recurrence(n, n, Scoring::paper_local());

    c.bench_function("e3/elaborate_64x64", |b| {
        b.iter(|| black_box(&rec).elaborate().unwrap())
    });

    let graph = rec.elaborate().unwrap();
    for p in [4i64, 16] {
        let machine = MachineConfig::linear(p as u32);
        let rm = skewed_mapping(p, n).resolve(&graph, &machine).unwrap();
        c.bench_with_input(BenchmarkId::new("e3/legality_check", p), &p, |b, _| {
            b.iter(|| legality::check(black_box(&graph), black_box(&rm), &machine))
        });
        c.bench_with_input(BenchmarkId::new("e3/analytic_evaluate", p), &p, |b, _| {
            let ev = Evaluator::new(&graph, &machine);
            b.iter(|| ev.evaluate(black_box(&rm)))
        });
    }

    let p = 8i64;
    let machine = MachineConfig::linear(p as u32);
    let rm = skewed_mapping(p, n).resolve(&graph, &machine).unwrap();
    let inputs = edit_inputs(&random_sequence(n, DNA, 1), &random_sequence(n, DNA, 2));
    let placements = paper_input_placements(p);
    c.bench_function("e3/grid_simulate_64x64_p8", |b| {
        let sim = Simulator::new(machine.clone());
        b.iter(|| {
            sim.run(black_box(&graph), &rm, &inputs, &placements)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
