//! Criterion bench for E6: the work-stealing pool on instrumented
//! kernels, across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fm_kernels::scan::par_scan;
use fm_kernels::sortalg::par_mergesort;
use fm_kernels::util::XorShift;
use fm_workspan::ThreadPool;

fn bench(c: &mut Criterion) {
    let n = 500_000;
    let mut rng = XorShift::new(3);
    let sort_data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let scan_data: Vec<i64> = (0..n).map(|_| rng.below(1000) as i64).collect();
    let hw = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("e6");
    for p in [1usize, 2, 4, 8] {
        if p > hw {
            break;
        }
        let pool = ThreadPool::with_threads(p);
        group.bench_with_input(BenchmarkId::new("mergesort_500k", p), &p, |b, _| {
            b.iter(|| black_box(par_mergesort(&pool, &sort_data, 8192).0))
        });
        group.bench_with_input(BenchmarkId::new("scan_500k", p), &p, |b, _| {
            b.iter(|| black_box(par_scan(&pool, &scan_data, 8192).0))
        });
    }
    group.finish();

    // join overhead microbenchmark: a balanced tree of trivial tasks.
    let pool = ThreadPool::with_threads(hw.min(4));
    c.bench_function("e6/join_tree_depth10", |b| {
        fn go(pool: &ThreadPool, d: u32) -> u64 {
            if d == 0 {
                return 1;
            }
            let (a, b) = pool.join(|| go(pool, d - 1), || go(pool, d - 1));
            a + b
        }
        b.iter(|| pool.run(|| go(&pool, black_box(10))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
