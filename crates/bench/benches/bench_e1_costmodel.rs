//! Criterion bench for E1: deriving the technology ratios and the
//! energy primitives they rest on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fm_costmodel::{ClaimedRatios, Millimeters, OpKind, Technology};

fn bench(c: &mut Criterion) {
    let tech = Technology::n5();
    c.bench_function("e1/derive_claimed_ratios", |b| {
        b.iter(|| ClaimedRatios::derive(black_box(&tech)))
    });
    c.bench_function("e1/wire_energy", |b| {
        b.iter(|| tech.wire_energy(black_box(32), Millimeters::new(black_box(3.7))))
    });
    c.bench_function("e1/op_energy_mix", |b| {
        b.iter(|| {
            tech.op_energy(black_box(OpKind::add32()))
                + tech.op_energy(black_box(OpKind::mul(32)))
                + tech.op_energy(black_box(OpKind::sram(32)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
