#![warn(missing_docs)]

//! # fm-repro — reproduction artifact for the SPAA'21 panel paper
//!
//! *"Architecture-Friendly Algorithms versus Algorithm-Friendly
//! Architectures"* (Blelloch, Dally, Martonosi, Vishkin, Yelick —
//! SPAA 2021, DOI 10.1145/3409964.3461780).
//!
//! The panel paper proposes models rather than a system; this workspace
//! builds the system those models imply and turns every quantitative
//! claim in the text into an experiment. See `DESIGN.md` for the
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! short names so examples and downstream users need one dependency.
//!
//! ```
//! use fm_repro::costmodel::Technology;
//! use fm_repro::core::recurrence::{Domain, Recurrence};
//!
//! let tech = Technology::n5();
//! // Transporting a 32-bit add result 1 mm costs 160× the add (§3).
//! let ratio = tech
//!     .wire_energy(32, fm_repro::costmodel::Millimeters::new(1.0))
//!     .ratio(tech.add32_energy());
//! assert!((ratio - 160.0).abs() < 1e-9);
//! # let _ = Domain::d1(1);
//! ```

/// Technology cost model (Dally §3's constants).
pub use fm_costmodel as costmodel;

/// The Function & Mapping model.
pub use fm_core as core;

/// Cycle-driven spatial grid simulator.
pub use fm_grid as grid;

/// Step-synchronous PRAM / XMT simulator.
pub use fm_pram as pram;

/// Work-stealing fork-join runtime + work-span accounting + ideal cache.
pub use fm_workspan as workspan;

/// The kernel suite.
pub use fm_kernels as kernels;

/// Parallel, budgeted, persistently-cached mapping autotuner.
pub use fm_autotune as autotune;

/// Mapping-as-a-service daemon, wire protocol, and client.
pub use fm_serve as serve;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let t = crate::costmodel::Technology::n5();
        assert_eq!(t.add32_energy().raw(), 16.0);
        let pool = crate::workspan::ThreadPool::with_threads(2);
        assert_eq!(pool.run(|| 2 + 2), 4);
    }
}
